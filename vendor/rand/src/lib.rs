//! Offline stand-in for the `rand` crate, 0.8 API subset (see
//! `vendor/README.md`).
//!
//! Provides exactly what the Hippo workloads use: a seedable deterministic
//! generator (`rngs::StdRng`, here xoshiro256++ seeded via SplitMix64) and
//! the `Rng::gen_range` / `Rng::gen_bool` methods. Streams differ from the
//! real `rand::rngs::StdRng` (which is ChaCha12), but every consumer in
//! this repo only relies on *determinism given a seed*, not on specific
//! stream values.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: 64 random bits at a time.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[low, high)`; callers guarantee `low < high`.
    fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample(rng: &mut dyn RngCore, low: $t, high: $t) -> $t {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                debug_assert!(span > 0, "gen_range called with empty range");
                // Lemire's widening-multiply reduction: maps 64 random bits
                // onto [0, span) with negligible bias for the spans used here.
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as $wide).wrapping_add(offset as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleUniform for f64 {
    #[inline]
    fn sample(rng: &mut dyn RngCore, low: f64, high: f64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Range argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range: empty inclusive range");
                if high < <$t>::MAX {
                    <$t>::sample(rng, low, high + 1)
                } else if low > <$t>::MIN {
                    <$t>::sample(rng, low - 1, high) + 1
                } else {
                    // Full domain: raw bits.
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_sample_range_inclusive!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`0..n` or `0..=n` forms).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++ core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let a_vals: Vec<i64> = (0..10).map(|_| a.gen_range(0i64..1000)).collect();
        let c_vals: Vec<i64> = (0..10).map(|_| c.gen_range(0i64..1000)).collect();
        assert_ne!(a_vals, c_vals, "different seeds diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let i = rng.gen_range(5u32..=6);
            assert!((5..=6).contains(&i));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "≈25% of 10k, got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
