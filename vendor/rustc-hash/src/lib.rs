//! Offline stand-in for the `rustc-hash` crate (see `vendor/README.md`).
//!
//! Implements the Fx hash scheme used throughout rustc: a non-cryptographic
//! multiply-rotate hash that is extremely fast on short keys (integers,
//! small tuples, short value vectors) because it does one rotate + xor +
//! multiply per 8-byte word and has no finalization step. This is exactly
//! the profile of the Hippo hot paths (vertex ids, fact rows, join keys),
//! which is why the conflict-hypergraph code asks for `FxHashMap` rather
//! than the DoS-resistant-but-slower SipHash default.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (high-entropy odd constant, `π`-derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(u32, u32), &str> = FxHashMap::default();
        m.insert((1, 2), "a");
        m.insert((3, 4), "b");
        assert_eq!(m.get(&(1, 2)), Some(&"a"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i * 31);
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let hash = |x: u64| b.hash_one(x);
        assert_eq!(hash(42), hash(42));
        let distinct: FxHashSet<u64> = (0..10_000u64).map(hash).collect();
        assert_eq!(distinct.len(), 10_000, "no collisions on small ints");
    }
}
