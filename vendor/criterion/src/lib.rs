//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset of the criterion 0.5 API the Hippo benches use —
//! groups, `sample_size`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, the `criterion_group!` / `criterion_main!` macros and
//! `black_box` — with a plain warmup + sampled timing loop instead of
//! criterion's statistical machinery. Each sample runs the closure enough
//! times to exceed a minimum measurable duration; min / mean / median over
//! samples are printed one line per benchmark:
//!
//! ```text
//! e4_detect/fd_fast_path/1000  min 1.021ms  mean 1.043ms  median 1.038ms  (10 samples)
//! ```
//!
//! Unknown CLI arguments (`--bench`, filters) are accepted and ignored so
//! `cargo bench` invocations behave.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Create an id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// The timing loop driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration durations (seconds).
    results: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, storing per-iteration durations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that runs ≥ ~5ms
        // so timer quantization stays below 1%.
        let mut iters = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 2;
        };
        // Aim each sample at ~10ms of work.
        let iters_per_sample = ((0.010 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.results
                .push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3}µs", secs * 1e6)
    } else {
        format!("{:.1}ns", secs * 1e9)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the stand-in has no global time cap.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        self.criterion.report(&full, &mut b.results);
        self
    }

    /// Run one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Parse CLI args the way `cargo bench` invokes bench binaries: a bare
    /// string argument is a substring filter; flags are ignored.
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--bench" || a == "--test" || a.starts_with("--") {
                // Flags (and possible values for known value-flags) ignored.
                if a == "--sample-size" || a == "--measurement-time" || a == "--warm-up-time" {
                    let _ = args.next();
                }
            } else {
                self.filter = Some(a);
            }
        }
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }

    fn report(&mut self, name: &str, results: &mut [f64]) {
        if results.is_empty() {
            return;
        }
        results.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = results[0];
        let mean = results.iter().sum::<f64>() / results.len() as f64;
        let median = results[results.len() / 2];
        println!(
            "{name}  min {}  mean {}  median {}  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(median),
            results.len(),
        );
    }

    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let name = name.to_string();
        if self.matches(&name) {
            let mut b = Bencher {
                samples: 20,
                results: Vec::new(),
            };
            f(&mut b);
            self.report(&name, &mut b.results);
        }
        self
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("busy", |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        assert!(ran > 0, "closure executed");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).name, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }
}
