//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the generation side of the proptest 1.x API this repo uses:
//! strategies produce random values from a per-test deterministic RNG and
//! the `proptest!` macro runs each property over `ProptestConfig::cases`
//! generated cases. **No shrinking**: a failing case panics with the
//! generated inputs in the assertion message instead of being minimized.
//! Seeds derive from the test function name, so failures reproduce exactly
//! on re-run.

use std::fmt::Debug;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic per-test random source (xoshiro256++ core).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary string (test name); deterministic.
    pub fn from_seed_str(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard values failing a predicate (retry-based; panics if the
    /// predicate rejects 1000 consecutive candidates).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Build a recursive strategy: `self` is the leaf case, `recurse` maps
    /// a strategy for depth `d` to one for depth `d+1`. `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility; only
    /// `depth` bounds the construction here.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let expanded = recurse(cur).boxed();
            cur = Union {
                variants: vec![(1, leaf.clone()), (2, expanded)],
            }
            .boxed();
        }
        cur
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive candidates",
            self.whence
        );
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    /// `(weight, strategy)` variants.
    pub variants: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.variants.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        let mut pick = rng.below(total);
        for (w, s) in &self.variants {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!()
    }
}

// Ranges are strategies.
macro_rules! impl_range_strategy_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// Tuples of strategies are strategies.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix of edge cases and uniform values, like proptest's
                // binary-search-biased integer strategies.
                match rng.below(8) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(8) {
            0 => 0.0,
            1 => -1.0,
            2 => 1.0,
            _ => (rng.next_u64() as i64 as f64) / 1e3,
        }
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Regex-lite string strategies: `"[a-z][a-z0-9_]{0,8}"` etc.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum RegexItem {
    /// One char drawn from a set.
    Class {
        chars: Vec<char>,
        min: u32,
        max: u32,
    },
}

fn parse_regex_lite(pattern: &str) -> Vec<RegexItem> {
    let mut items = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars: Vec<char> = if c == '[' {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                let Some(c) = it.next() else {
                    panic!("unterminated [ in {pattern:?}")
                };
                match c {
                    ']' => break,
                    '-' if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                        let lo = prev.take().unwrap();
                        let hi = it.next().unwrap();
                        for ch in lo..=hi {
                            set.push(ch);
                        }
                    }
                    _ => {
                        if let Some(p) = prev.replace(c) {
                            set.push(p);
                        }
                    }
                }
            }
            if let Some(p) = prev {
                set.push(p);
            }
            set
        } else {
            vec![c]
        };
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let spec: String = std::iter::from_fn(|| it.next().filter(|&c| c != '}')).collect();
            let (lo, hi) = spec
                .split_once(',')
                .unwrap_or((spec.as_str(), spec.as_str()));
            (lo.trim().parse().unwrap(), hi.trim().parse().unwrap())
        } else {
            (1, 1)
        };
        assert!(
            !chars.is_empty() && min <= max,
            "bad regex-lite {pattern:?}"
        );
        items.push(RegexItem::Class { chars, min, max });
    }
    items
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for RegexItem::Class { chars, min, max } in parse_regex_lite(self) {
            let count = min + rng.below((max - min + 1) as u64) as u32;
            for _ in 0..count {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// prop:: namespace (collection, option)
// ---------------------------------------------------------------------------

/// Sub-strategies namespaced like the real crate (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<T>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `Vec` of values from `element`, length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<T>`: ~25% `None`.
        pub struct OptionStrategy<S>(S);

        /// `Some` with values from `inner`, or `None`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Runner configuration; only `cases` is meaningful in the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility (ignored: no persistence).
    pub failure_persistence: Option<()>,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            failure_persistence: None,
        }
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Weighted / unweighted choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union { variants: vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ] }
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union { variants: vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ] }
    };
}

/// Assert inside a property (panics; there is no shrinking phase).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `name(pat in strategy, ...)` body runs for
/// `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    // `#[test]` arrives as one of the matched attributes and is re-emitted
    // with them (matching it literally is ambiguous with `$meta:meta`).
    { ($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block )* } => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_seed_str(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

// Re-export Debug so macro expansions relying on it behave.
#[doc(hidden)]
pub use std::fmt::Debug as __Debug;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_lite_shapes() {
        let mut rng = super::TestRng::from_seed_str("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = Strategy::generate(&"[ a-zA-Z0-9'%_]{0,12}", &mut rng);
            assert!(t.len() <= 12);
        }
    }

    #[test]
    fn union_weights_bias() {
        let mut rng = super::TestRng::from_seed_str("union");
        let s = prop_oneof![9 => Just(1u8), 1 => Just(0u8)];
        let ones: usize = (0..1000).map(|_| s.generate(&mut rng) as usize).sum();
        assert!(ones > 800, "weight-9 arm dominates, got {ones}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(size).sum::<usize>(),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(3, 24, 3, |inner| {
                prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = super::TestRng::from_seed_str("tree");
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(size(&strat.generate(&mut rng)));
        }
        assert!(max > 1, "some recursion happened");
        assert!(max <= 1 + 3 + 9 + 27 + 81, "depth bounded");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_in_range(x in 0i64..100, (a, b) in (0u8..4, 0u8..4)) {
            prop_assert!((0..100).contains(&x));
            prop_assert!(a < 4 && b < 4);
        }

        #[test]
        fn filters_apply(v in prop::collection::vec(0i32..50, 0..6)
            .prop_filter("short", |v| v.len() < 6))
        {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 50));
        }
    }
}
