//! Row storage with stable tuple identifiers and secondary hash indexes.
//!
//! The conflict hypergraph identifies vertices by *physical tuple*, so the
//! store must hand out identifiers that stay valid across deletions of
//! other tuples. Rows live in an append-only slot vector; deletion leaves a
//! tombstone. A [`TupleId`] is the slot index.
//!
//! # Indexes
//!
//! A table carries any number of **hash indexes**, each over a fixed
//! column set: one is built automatically on the primary-key columns at
//! table creation, more come from `CREATE INDEX` (see
//! [`Table::create_named_index`]) or [`Table::create_index`]. Every
//! index is maintained **incrementally** on [`Table::insert`] /
//! [`Table::delete`] / [`Table::update`] — never rebuilt — and its
//! buckets keep tuple ids in ascending (slot) order, so an
//! [`crate::plan::PhysicalPlan::IndexLookup`] yields rows in exactly
//! the order a sequential scan would.
//!
//! # Snapshot sharing
//!
//! `Clone` is what backs the snapshot layer's copy-on-write:
//! [`crate::db::Database`] keeps its catalog (and therefore every
//! table, *including its indexes*) behind an `Arc` that
//! [`crate::db::DbSnapshot`] shares. Taking a snapshot copies nothing;
//! the first mutation after one clones the storage once via
//! `Arc::make_mut`. A frozen table is immutable, so any number of
//! threads may probe its indexes with zero locking — that is what makes
//! the prepared membership probes of the base-mode answer pipeline
//! O(1) *and* lock-free.

use crate::column::ColumnStore;
use crate::schema::{EngineError, TableSchema};
use crate::value::{Row, Value};
use rustc_hash::FxHashMap;
use std::sync::{Arc, OnceLock};

/// Stable identifier of a row within one table (slot index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u32);

/// A hash index over a fixed set of columns.
#[derive(Debug, Clone, Default)]
struct HashIndex {
    /// Key values → slots holding live rows with that key.
    map: FxHashMap<Vec<Value>, Vec<TupleId>>,
}

impl HashIndex {
    fn insert(&mut self, key: Vec<Value>, id: TupleId) {
        let ids = self.map.entry(key).or_default();
        // Buckets stay in ascending (slot) order so index lookups see
        // rows in scan order. Fresh inserts carry the largest id so far
        // (append-only slots) and append in O(1); only the re-keying of
        // an UPDATE ever inserts mid-bucket.
        let pos = ids.partition_point(|x| *x < id);
        ids.insert(pos, id);
    }

    fn remove(&mut self, key: &[Value], id: TupleId) {
        if let Some(ids) = self.map.get_mut(key) {
            ids.retain(|x| *x != id);
            if ids.is_empty() {
                self.map.remove(key);
            }
        }
    }
}

/// An in-memory table: schema + slotted rows + optional hash indexes.
///
/// `Clone` is deliberately derived: [`crate::db::Database`] keeps its
/// catalog behind an `Arc` and clones a table lazily (copy-on-write)
/// only when it is mutated while a [`crate::db::DbSnapshot`] still
/// shares the storage.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table schema.
    pub schema: TableSchema,
    slots: Vec<Option<Row>>,
    live: usize,
    /// column sets → index
    indexes: FxHashMap<Vec<usize>, HashIndex>,
    /// `CREATE INDEX` names → the column set they cover (the primary-key
    /// auto-index is anonymous).
    index_names: FxHashMap<String, Vec<usize>>,
    /// Lazily built column-major projection (see [`crate::column`]).
    /// `None` inside the cell = the build failed (ill-typed row; the
    /// engine then stays on row mode for this table). Any DML clears
    /// the cell; snapshots share a built store through the `Arc` when
    /// the catalog is cloned copy-on-write, exactly like indexes.
    columns: OnceLock<Option<Arc<ColumnStore>>>,
}

impl Table {
    /// Create an empty table. If the schema declares a primary key, a
    /// hash index over the key columns is built automatically — the
    /// access path the optimizer needs for key-equality probes exists
    /// without any `CREATE INDEX`.
    pub fn new(schema: TableSchema) -> Table {
        let mut t = Table {
            schema,
            slots: Vec::new(),
            live: 0,
            indexes: FxHashMap::default(),
            index_names: FxHashMap::default(),
            columns: OnceLock::new(),
        };
        if !t.schema.primary_key.is_empty() {
            let cols = t.schema.primary_key.clone();
            t.create_index(cols)
                .expect("primary-key columns are in range by construction");
        }
        t
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots (live + tombstoned); tuple ids range over `0..slot_count`.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Insert a row (validated and coerced against the schema); returns its id.
    pub fn insert(&mut self, row: Row) -> Result<TupleId, EngineError> {
        let row = self.schema.check_row(row)?;
        if self.slots.len() > u32::MAX as usize {
            return Err(EngineError::new("table full"));
        }
        self.columns.take();
        let id = TupleId(self.slots.len() as u32);
        for (cols, index) in &mut self.indexes {
            let key: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            index.insert(key, id);
        }
        self.slots.push(Some(row));
        self.live += 1;
        Ok(id)
    }

    /// Fetch a live row by id.
    pub fn get(&self, id: TupleId) -> Option<&Row> {
        self.slots.get(id.0 as usize).and_then(|s| s.as_ref())
    }

    /// Delete by id; returns `true` if the row existed.
    pub fn delete(&mut self, id: TupleId) -> bool {
        let Some(slot) = self.slots.get_mut(id.0 as usize) else {
            return false;
        };
        let Some(row) = slot.take() else { return false };
        self.columns.take();
        self.live -= 1;
        for (cols, index) in &mut self.indexes {
            let key: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            index.remove(&key, id);
        }
        true
    }

    /// Replace the row at `id`; returns the old row.
    pub fn update(&mut self, id: TupleId, new_row: Row) -> Result<Row, EngineError> {
        let new_row = self.schema.check_row(new_row)?;
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or_else(|| EngineError::new("update of missing tuple"))?;
        self.columns.take();
        let old = std::mem::replace(slot, new_row);
        // Re-key indexes.
        let new_ref = self.slots[id.0 as usize].as_ref().expect("just replaced");
        for (cols, index) in &mut self.indexes {
            let old_key: Vec<Value> = cols.iter().map(|&c| old[c].clone()).collect();
            let new_key: Vec<Value> = cols.iter().map(|&c| new_ref[c].clone()).collect();
            if old_key != new_key {
                index.remove(&old_key, id);
                index.insert(new_key, id);
            }
        }
        Ok(old)
    }

    /// Iterate live rows with their ids, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (TupleId(i as u32), r)))
    }

    /// Clone all live rows (in slot order).
    pub fn rows(&self) -> Vec<Row> {
        self.iter().map(|(_, r)| r.clone()).collect()
    }

    /// The column-major projection of the live rows, building it on
    /// first use (invalidated by any DML). `None` if the build failed —
    /// callers then stay on the row-mode path.
    pub fn column_store(&self) -> Option<&ColumnStore> {
        self.columns
            .get_or_init(|| ColumnStore::build(self).map(Arc::new))
            .as_deref()
    }

    /// Build (or rebuild) a hash index on the given columns.
    pub fn create_index(&mut self, cols: Vec<usize>) -> Result<(), EngineError> {
        for &c in &cols {
            if c >= self.schema.arity() {
                return Err(EngineError::new(format!(
                    "index column {c} out of range for table {:?}",
                    self.schema.name
                )));
            }
        }
        let mut index = HashIndex::default();
        for (id, row) in self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (TupleId(i as u32), r)))
        {
            let key: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            index.insert(key, id);
        }
        self.indexes.insert(cols, index);
        Ok(())
    }

    /// Build a hash index and register it under a `CREATE INDEX` name.
    /// Errors if the name is already taken by a different column set;
    /// re-creating the same index under the same name is a no-op.
    pub fn create_named_index(
        &mut self,
        name: String,
        cols: Vec<usize>,
    ) -> Result<(), EngineError> {
        if let Some(existing) = self.index_names.get(&name) {
            if *existing == cols {
                return Ok(());
            }
            return Err(EngineError::new(format!(
                "index {name:?} already exists on table {:?} with different columns",
                self.schema.name
            )));
        }
        // A structurally identical index may already exist (the
        // primary-key auto-index, or another name over the same column
        // set); registering the name is enough — rebuilding would scan
        // every slot to recreate a bit-identical map.
        if !self.indexes.contains_key(&cols) {
            self.create_index(cols.clone())?;
        }
        self.index_names.insert(name, cols);
        Ok(())
    }

    /// The column set a named index covers, if the name exists.
    pub fn named_index(&self, name: &str) -> Option<&Vec<usize>> {
        self.index_names.get(name)
    }

    /// Look up live rows by indexed key; `None` if no such index exists.
    pub fn index_lookup(&self, cols: &[usize], key: &[Value]) -> Option<Vec<TupleId>> {
        self.index_bucket(cols, key).map(<[TupleId]>::to_vec)
    }

    /// Borrow the bucket of live tuple ids for `key` (ascending slot
    /// order, allocation-free); `None` if no index exists on `cols`,
    /// `Some(&[])` if the index exists but holds no such key.
    pub fn index_bucket(&self, cols: &[usize], key: &[Value]) -> Option<&[TupleId]> {
        self.indexes
            .get(cols)
            .map(|ix| ix.map.get(key).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Does an index exist on exactly these columns?
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.indexes.contains_key(cols)
    }

    /// The column sets of every index on this table (arbitrary order;
    /// the optimizer sorts candidates before choosing).
    pub fn index_column_sets(&self) -> impl Iterator<Item = &Vec<usize>> {
        self.indexes.keys()
    }

    /// Find ids of live rows equal to `row` (full-row comparison).
    pub fn find_exact(&self, row: &[Value]) -> Vec<TupleId> {
        self.iter()
            .filter(|(_, r)| r.as_slice() == row)
            .map(|(id, _)| id)
            .collect()
    }

    /// The raw slot vector (live rows and tombstones), for serialization.
    pub(crate) fn slot_entries(&self) -> &[Option<Row>] {
        &self.slots
    }

    /// Every `CREATE INDEX` name with the column set it covers
    /// (arbitrary order), for serialization.
    pub(crate) fn named_index_entries(&self) -> impl Iterator<Item = (&String, &Vec<usize>)> {
        self.index_names.iter()
    }

    /// Rebuild a table from serialized parts: the schema, the exact slot
    /// vector (tombstones included — slot indices are [`TupleId`]s, so
    /// preserving them is what keeps recovered ids identical to
    /// pre-crash ids), the column sets to index, and the `CREATE INDEX`
    /// name registry. Indexes are rebuilt by scanning the slots; rows
    /// are trusted to have been validated when first inserted, but
    /// index column sets are still range-checked.
    pub(crate) fn from_parts(
        schema: TableSchema,
        slots: Vec<Option<Row>>,
        index_sets: Vec<Vec<usize>>,
        index_names: Vec<(String, Vec<usize>)>,
    ) -> Result<Table, EngineError> {
        let live = slots.iter().filter(|s| s.is_some()).count();
        let mut t = Table {
            schema,
            slots,
            live,
            indexes: FxHashMap::default(),
            index_names: FxHashMap::default(),
            columns: OnceLock::new(),
        };
        for cols in index_sets {
            t.create_index(cols)?;
        }
        for (name, cols) in index_names {
            t.create_named_index(name, cols)?;
        }
        if !t.schema.primary_key.is_empty() && !t.has_index(&t.schema.primary_key) {
            return Err(EngineError::new(format!(
                "table {:?} reconstructed without its primary-key index",
                t.schema.name
            )));
        }
        Ok(t)
    }

    /// Remove all rows.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.columns.take();
        self.live = 0;
        for index in self.indexes.values_mut() {
            index.map.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};

    fn table() -> Table {
        Table::new(
            TableSchema::new(
                "t",
                vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Text),
                ],
                &[],
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_get_delete() {
        let mut t = table();
        let id0 = t.insert(vec![Value::Int(1), Value::text("x")]).unwrap();
        let id1 = t.insert(vec![Value::Int(2), Value::text("y")]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(id0).unwrap()[0], Value::Int(1));
        assert!(t.delete(id0));
        assert!(!t.delete(id0), "double delete is a no-op");
        assert_eq!(t.len(), 1);
        assert!(t.get(id0).is_none());
        // id1 stays valid after deleting id0 (stability requirement).
        assert_eq!(t.get(id1).unwrap()[0], Value::Int(2));
    }

    #[test]
    fn ids_are_never_reused() {
        let mut t = table();
        let id0 = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.delete(id0);
        let id1 = t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        assert_ne!(id0, id1);
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        t.delete(a);
        let got: Vec<i64> = t
            .iter()
            .map(|(_, r)| match r[0] {
                Value::Int(v) => v,
                _ => panic!(),
            })
            .collect();
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn index_tracks_mutations() {
        let mut t = table();
        t.create_index(vec![0]).unwrap();
        let id0 = t.insert(vec![Value::Int(1), Value::text("x")]).unwrap();
        let id1 = t.insert(vec![Value::Int(1), Value::text("y")]).unwrap();
        t.insert(vec![Value::Int(2), Value::text("z")]).unwrap();
        assert_eq!(
            t.index_lookup(&[0], &[Value::Int(1)]).unwrap(),
            vec![id0, id1]
        );
        t.delete(id0);
        assert_eq!(t.index_lookup(&[0], &[Value::Int(1)]).unwrap(), vec![id1]);
        t.update(id1, vec![Value::Int(5), Value::text("y")])
            .unwrap();
        assert!(t.index_lookup(&[0], &[Value::Int(1)]).unwrap().is_empty());
        assert_eq!(t.index_lookup(&[0], &[Value::Int(5)]).unwrap(), vec![id1]);
    }

    #[test]
    fn index_built_over_existing_rows() {
        let mut t = table();
        let id = t.insert(vec![Value::Int(7), Value::Null]).unwrap();
        t.create_index(vec![0]).unwrap();
        assert_eq!(t.index_lookup(&[0], &[Value::Int(7)]).unwrap(), vec![id]);
        assert!(
            t.index_lookup(&[1], &[Value::Null]).is_none(),
            "no such index"
        );
    }

    #[test]
    fn buckets_stay_in_slot_order_through_updates() {
        let mut t = table();
        t.create_index(vec![0]).unwrap();
        let a = t.insert(vec![Value::Int(1), Value::text("a")]).unwrap();
        let b = t.insert(vec![Value::Int(1), Value::text("b")]).unwrap();
        // Re-keying `a` out and back would append it after `b` in a
        // naive bucket; the ordered insert restores slot order.
        t.update(a, vec![Value::Int(2), Value::text("a")]).unwrap();
        t.update(a, vec![Value::Int(1), Value::text("a")]).unwrap();
        assert_eq!(t.index_lookup(&[0], &[Value::Int(1)]).unwrap(), vec![a, b]);
        assert_eq!(t.index_bucket(&[0], &[Value::Int(1)]).unwrap(), &[a, b]);
        assert_eq!(
            t.index_bucket(&[0], &[Value::Int(9)]).unwrap(),
            &[] as &[TupleId]
        );
        assert!(t.index_bucket(&[1], &[Value::Null]).is_none(), "no index");
    }

    #[test]
    fn primary_key_index_is_automatic() {
        let t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    Column::new("k", DataType::Int),
                    Column::new("v", DataType::Int),
                ],
                &["k"],
            )
            .unwrap(),
        );
        assert!(t.has_index(&[0]));
        assert_eq!(t.index_column_sets().collect::<Vec<_>>(), vec![&vec![0]]);
        // Naming the auto-indexed column set registers the name without
        // building a second (identical) index.
        let mut t = t;
        t.create_named_index("k_ix".into(), vec![0]).unwrap();
        assert_eq!(t.index_column_sets().count(), 1);
        assert_eq!(t.named_index("k_ix"), Some(&vec![0]));
    }

    #[test]
    fn named_indexes_register_and_collide() {
        let mut t = table();
        t.create_named_index("i".into(), vec![0]).unwrap();
        assert_eq!(t.named_index("i"), Some(&vec![0]));
        t.create_named_index("i".into(), vec![0]).unwrap(); // same set: no-op
        assert!(t.create_named_index("i".into(), vec![1]).is_err());
        assert!(t.create_named_index("oob".into(), vec![9]).is_err());
    }

    #[test]
    fn find_exact_matches_full_rows() {
        let mut t = table();
        let id = t.insert(vec![Value::Int(1), Value::text("x")]).unwrap();
        t.insert(vec![Value::Int(1), Value::text("y")]).unwrap();
        assert_eq!(t.find_exact(&[Value::Int(1), Value::text("x")]), vec![id]);
        assert!(t.find_exact(&[Value::Int(9), Value::Null]).is_empty());
    }

    #[test]
    fn insert_validates_via_schema() {
        let mut t = table();
        assert!(t.insert(vec![Value::text("wrong"), Value::Null]).is_err());
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }
}
