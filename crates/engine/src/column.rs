//! Columnar storage and vectorized (batch-at-a-time) execution.
//!
//! # Layout
//!
//! A [`ColumnStore`] is a column-major projection of one table's live
//! rows, built lazily on first use and cached on the [`crate::Table`]
//! behind a `OnceLock` (any DML invalidates it; snapshots share the
//! built store through the copy-on-write catalog exactly like
//! secondary indexes). Rows appear in **slot order** — the same order
//! `Table::iter` and every row-mode scan produces — so position `pos`
//! in the store and the row-mode scan's `pos`-th row are the same
//! tuple ([`ColumnStore::tid`] recovers its [`crate::TupleId`]).
//!
//! Each column is a [`ColumnVector`]: a typed, contiguous buffer
//! ([`ColumnData`]) plus a validity bitmap. The schema's coercion on
//! insert guarantees an `INT` column only ever holds `Int`/`Null`
//! values (and so on per type), so the typed buffers are exact:
//!
//! * `Int64`/`Float64`/`Bool` — plain `Vec`s; `NULL` slots hold an
//!   arbitrary placeholder and are masked by the validity bitmap.
//!   Float bits are preserved verbatim (`NaN`, `-0.0` round-trip).
//! * `Str` — dictionary-encoded: a `dict` of distinct strings in
//!   first-appearance order and a `u32` code per row. Predicates over
//!   text evaluate once per **dict entry**, not once per row.
//!
//! # Validity
//!
//! The bitmap is a `Vec<u64>`, one bit per row, bit set = non-`NULL`.
//! Reading a value always goes through [`ColumnVector::is_valid`];
//! [`ColumnVector::value_at`] materialises `Value::Null` for clear
//! bits so row reconstruction is bit-identical to the stored row.
//!
//! # Selection vectors and batches
//!
//! Execution walks the store in windows of [`BATCH_ROWS`] rows. A
//! [`ColumnBatch`] is one window plus an optional **selection
//! vector** — absolute row positions (ascending) that survived the
//! predicates so far. Operators never compact or copy column data;
//! they only append to the selection. `None` means "all rows in the
//! window". Downstream operators (projection, aggregation, join
//! build/probe) materialise `Value`s only for selected positions.
//!
//! Filtering is three-valued per SQL: each conjunct maps an alive row
//! to *true* (keep), *false* (dead — later conjuncts are skipped,
//! mirroring `AND`'s short-circuit), or *null* (still alive for later
//! conjuncts, but never emitted). Comparison errors (only possible
//! with `NaN` float data, where `sql_cmp` is undefined) are reported
//! for exactly the row and conjunct row-mode would report first: the
//! batch filter re-runs with a shrunk window until the earliest
//! erroring row is isolated, so error identity and ordering match the
//! row-at-a-time reference even though evaluation is column-major.
//!
//! # Eligible shapes and fallback rules
//!
//! [`compile`] accepts exactly these physical-plan roots (after
//! peeling an optional `LimitExec{limit: Some}` and `ProjectExec`):
//!
//! * **Select** — `FilterExec?(SeqScan)` where every conjunct is
//!   `column ⟨cmp⟩ literal|param`, `column ⟨cmp⟩ column` (same-type or
//!   numeric mix), or `column IS [NOT] NULL`, and every projection
//!   item is a column, literal, or parameter;
//! * **Agg** — `AggregateExec` over such a pipe with column-only
//!   group keys and aggregate arguments;
//! * **Join** — `HashJoinExec` (inner/left, no residual) with
//!   column-only keys over two such pipes.
//!
//! Anything else returns `None` and runs row-mode — but because the
//! vectorized hook sits at the top of `execute_physical`, *subtrees*
//! of unconverted operators (a `DistinctExec` or `SortExec` input, a
//! set-operation branch, a materialising `LimitExec` input) still
//! vectorize when they match. The one deliberate exception: a
//! `LimitExec{Some}` over a streaming shape the compiler rejected
//! runs the row-wise early-exit scan (`streaming_limit`) without
//! recursing, so `EXPLAIN` reports it as row-mode.
//!
//! Runtime conditions that cannot be checked structurally (unbound or
//! type-mismatched parameters, `NaN` literals bound at execution
//! time, a store that failed to build) fall back **before** any
//! budget charge or stats side effect, so row-mode then reproduces
//! the exact success or error behaviour.
//!
//! # Charging parity
//!
//! The vectorized path replays row-mode's budget-charging sequence
//! exactly: an unfiltered, unlimited scan charges one batch
//! (`charge_batch`, like the `SeqScan` arm); a filtered or limited
//! scan charges per examined row in row order, with the limit's
//! check-before-charge rule (`LIMIT 0` charges nothing) preserved.
//! Answers, errors, and every budget counter are bit-identical to row
//! mode at any thread count; `EXPLAIN` shows which engine ran, and
//! [`crate::DbStats`] counts `batches_executed` / `vectorized_rows` /
//! `rowmode_rows`.

use std::collections::hash_map::Entry;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};

use hippo_sql::BinaryOp;
use rustc_hash::FxHashMap;

use crate::catalog::Catalog;
use crate::exec::Acc;
use crate::expr::{split_conjuncts_ref, BoundExpr, EvalEnv};
use crate::plan::{AggExpr, JoinType, PhysicalPlan};
use crate::schema::{DataType, EngineError, TableSchema};
use crate::table::Table;
use crate::value::{Row, Value};

/// Rows per execution batch window.
pub const BATCH_ROWS: usize = 1024;

// ---------------------------------------------------------------------------
// Columnar storage
// ---------------------------------------------------------------------------

/// Typed, contiguous column buffer. `NULL` slots hold placeholders
/// (`0`/`0.0`/`false`/code `0`) masked by the owning vector's validity
/// bitmap.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// `INT` column.
    Int64(Vec<i64>),
    /// `FLOAT` column (bit patterns preserved, including `NaN`/`-0.0`).
    Float64(Vec<f64>),
    /// `BOOLEAN` column.
    Bool(Vec<bool>),
    /// `TEXT` column, dictionary-encoded.
    Str {
        /// Distinct strings in first-appearance order.
        dict: Vec<String>,
        /// Per-row dictionary code.
        codes: Vec<u32>,
    },
}

/// One column: typed data plus a validity bitmap (bit set = non-`NULL`).
#[derive(Debug, Clone)]
pub struct ColumnVector {
    data: ColumnData,
    validity: Vec<u64>,
}

impl ColumnVector {
    /// Is the value at `pos` non-`NULL`?
    #[inline]
    pub fn is_valid(&self, pos: usize) -> bool {
        self.validity[pos >> 6] >> (pos & 63) & 1 == 1
    }

    /// The typed buffer.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Materialise the value at `pos` (bit-identical to the stored row
    /// value, `Value::Null` for clear validity bits).
    pub fn value_at(&self, pos: usize) -> Value {
        if !self.is_valid(pos) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int64(v) => Value::Int(v[pos]),
            ColumnData::Float64(v) => Value::Float(v[pos]),
            ColumnData::Bool(v) => Value::Bool(v[pos]),
            ColumnData::Str { dict, codes } => Value::Text(dict[codes[pos] as usize].clone()),
        }
    }
}

/// Column-major projection of one table's live rows, in slot order.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    cols: Vec<ColumnVector>,
    /// Slot-parallel tuple ids (`tids[pos]` owns row `pos`).
    tids: Vec<u32>,
}

impl ColumnStore {
    /// Build from a table's live rows. Returns `None` if any stored
    /// value contradicts its declared column type (cannot happen for
    /// rows admitted through `check_row`, but the engine degrades to
    /// row mode rather than panicking if it ever does).
    pub fn build(table: &Table) -> Option<ColumnStore> {
        let n = table.len();
        let words = n.div_ceil(64);
        let mut builders: Vec<(ColumnData, Vec<u64>)> = table
            .schema
            .columns
            .iter()
            .map(|c| {
                let data = match c.ty {
                    DataType::Int => ColumnData::Int64(Vec::with_capacity(n)),
                    DataType::Float => ColumnData::Float64(Vec::with_capacity(n)),
                    DataType::Bool => ColumnData::Bool(Vec::with_capacity(n)),
                    DataType::Text => ColumnData::Str {
                        dict: Vec::new(),
                        codes: Vec::with_capacity(n),
                    },
                };
                (data, vec![0u64; words])
            })
            .collect();
        // Side map for dictionary interning, one per TEXT column.
        let mut interns: Vec<FxHashMap<String, u32>> = table
            .schema
            .columns
            .iter()
            .map(|_| FxHashMap::default())
            .collect();
        let mut tids = Vec::with_capacity(n);
        for (pos, (tid, row)) in table.iter().enumerate() {
            tids.push(tid.0);
            for (c, v) in row.iter().enumerate() {
                let (data, validity) = &mut builders[c];
                match (data, v) {
                    (ColumnData::Int64(buf), Value::Int(x)) => buf.push(*x),
                    (ColumnData::Int64(buf), Value::Null) => {
                        buf.push(0);
                        continue;
                    }
                    (ColumnData::Float64(buf), Value::Float(x)) => buf.push(*x),
                    (ColumnData::Float64(buf), Value::Null) => {
                        buf.push(0.0);
                        continue;
                    }
                    (ColumnData::Bool(buf), Value::Bool(x)) => buf.push(*x),
                    (ColumnData::Bool(buf), Value::Null) => {
                        buf.push(false);
                        continue;
                    }
                    (ColumnData::Str { dict, codes }, Value::Text(s)) => {
                        let code = match interns[c].get(s) {
                            Some(&code) => code,
                            None => {
                                let code = dict.len() as u32;
                                dict.push(s.clone());
                                interns[c].insert(s.clone(), code);
                                code
                            }
                        };
                        codes.push(code);
                    }
                    (ColumnData::Str { codes, .. }, Value::Null) => {
                        codes.push(0);
                        continue;
                    }
                    _ => return None,
                }
                validity[pos >> 6] |= 1u64 << (pos & 63);
            }
        }
        Some(ColumnStore {
            cols: builders
                .into_iter()
                .map(|(data, validity)| ColumnVector { data, validity })
                .collect(),
            tids,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &ColumnVector {
        &self.cols[i]
    }

    /// Tuple id of row `pos` (raw `u32`, see [`crate::TupleId`]).
    pub fn tid(&self, pos: usize) -> u32 {
        self.tids[pos]
    }

    /// Positions whose originating slot id lies in `[lo, hi)`. Store
    /// positions follow slot order, so the answer is one contiguous
    /// range — this is how slot-range work chunks (e.g. the conflict
    /// detector's parallel hash pass) map onto the dense store.
    pub fn tid_range(&self, lo: u32, hi: u32) -> std::ops::Range<usize> {
        let a = self.tids.partition_point(|&t| t < lo);
        let b = self.tids.partition_point(|&t| t < hi);
        a..b
    }

    /// Materialise row `pos` as a full [`Row`] (bit-identical to the
    /// stored slot row).
    pub fn materialize_row(&self, pos: usize) -> Row {
        self.cols.iter().map(|c| c.value_at(pos)).collect()
    }

    /// Hash the listed columns of row `pos` into `state` with exactly
    /// the byte sequence `Value::hash` produces for the stored values;
    /// returns `false` (leaving `state` partially written, like the
    /// row-mode hash pass) as soon as a `NULL` component is hit.
    #[inline]
    pub fn hash_cols<H: Hasher>(&self, pos: usize, cols: &[usize], state: &mut H) -> bool {
        for &c in cols {
            let col = &self.cols[c];
            if !col.is_valid(pos) {
                return false;
            }
            match &col.data {
                ColumnData::Int64(v) => Value::Int(v[pos]).hash(state),
                ColumnData::Float64(v) => Value::Float(v[pos]).hash(state),
                ColumnData::Bool(v) => Value::Bool(v[pos]).hash(state),
                // `Value::Text` hashing writes tag 3 then delegates to
                // `String::hash` == `str::hash` — replicated here
                // without materialising the string.
                ColumnData::Str { dict, codes } => {
                    state.write_u8(3);
                    dict[codes[pos] as usize].hash(state);
                }
            }
        }
        true
    }

    /// Batch variant of [`ColumnStore::hash_cols`]: calls `f(pos, hash)`
    /// for every row of `range` whose listed columns are all non-`NULL`,
    /// in ascending position order, with exactly the hash `Value::hash`
    /// produces for the stored values. The column-type dispatch is
    /// hoisted out of the row loop, and so is the constant part of the
    /// hash itself: `INT` rows clone a pre-seeded hasher (the type-tag
    /// prefix is fixed, see `Value::write_int_hash_prefix`) and write a
    /// single `i64`; `TEXT` rows look up a per-dictionary-code hash
    /// computed once before the loop. Row mode pays, per tuple, a slot
    /// `Option` check, a heap-row pointer chase, a `Value` match, and
    /// the full tag-prefix hash rounds — this asymmetry is the
    /// vectorized speedup of the conflict detector's hash pass. `FLOAT`
    /// rows keep the per-row `Value::hash` (their numeric key folds
    /// integral values onto the `i64` grid, so the byte sequence is
    /// data-dependent).
    pub fn for_each_hash<H, F>(&self, range: std::ops::Range<usize>, cols: &[usize], mut f: F)
    where
        H: Hasher + Default + Clone,
        F: FnMut(usize, u64),
    {
        let [c] = cols else {
            // Multi-column LHS: per-row dispatch. NULL-skip semantics
            // match the single-column loops (first NULL component drops
            // the row).
            for pos in range {
                let mut state = H::default();
                if self.hash_cols(pos, cols, &mut state) {
                    f(pos, state.finish());
                }
            }
            return;
        };
        let col = &self.cols[*c];
        let lo = range.start;
        match &col.data {
            ColumnData::Int64(v) => {
                let mut proto = H::default();
                Value::write_int_hash_prefix(&mut proto);
                for (i, &x) in v[range].iter().enumerate() {
                    let pos = lo + i;
                    if col.is_valid(pos) {
                        let mut state = proto.clone();
                        state.write_i64(x);
                        f(pos, state.finish());
                    }
                }
            }
            ColumnData::Float64(v) => {
                for (i, &x) in v[range].iter().enumerate() {
                    let pos = lo + i;
                    if col.is_valid(pos) {
                        let mut state = H::default();
                        Value::Float(x).hash(&mut state);
                        f(pos, state.finish());
                    }
                }
            }
            ColumnData::Bool(v) => {
                let mut proto = H::default();
                Value::write_bool_hash_prefix(&mut proto);
                for (i, &x) in v[range].iter().enumerate() {
                    let pos = lo + i;
                    if col.is_valid(pos) {
                        let mut state = proto.clone();
                        state.write_u8(x as u8);
                        f(pos, state.finish());
                    }
                }
            }
            ColumnData::Str { dict, codes } => {
                // One full string hash per distinct value, then a plain
                // table lookup per row.
                let code_hash: Vec<u64> = dict
                    .iter()
                    .map(|s| {
                        let mut state = H::default();
                        Value::write_text_hash_prefix(&mut state);
                        s.hash(&mut state);
                        state.finish()
                    })
                    .collect();
                for (i, &code) in codes[range].iter().enumerate() {
                    let pos = lo + i;
                    if col.is_valid(pos) {
                        f(pos, code_hash[code as usize]);
                    }
                }
            }
        }
    }
}

/// One execution window over a store: `rows` rows starting at absolute
/// position `start`, plus the selection vector of surviving absolute
/// positions (`None` = all rows in the window survive so far).
#[derive(Debug)]
pub struct ColumnBatch<'a> {
    store: &'a ColumnStore,
    start: usize,
    rows: usize,
    selection: Option<Vec<u32>>,
}

impl<'a> ColumnBatch<'a> {
    /// A full window `[start, start + rows)` with no selection applied.
    pub fn new(store: &'a ColumnStore, start: usize, rows: usize) -> ColumnBatch<'a> {
        ColumnBatch {
            store,
            start,
            rows,
            selection: None,
        }
    }

    /// The backing store.
    pub fn store(&self) -> &'a ColumnStore {
        self.store
    }

    /// First absolute row position of the window.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Window width in rows (before selection).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Selected absolute positions, ascending (`None` = all).
    pub fn selection(&self) -> Option<&[u32]> {
        self.selection.as_deref()
    }

    /// Replace the selection vector.
    pub fn set_selection(&mut self, sel: Vec<u32>) {
        self.selection = Some(sel);
    }

    /// Number of rows after selection.
    pub fn selected_len(&self) -> usize {
        match &self.selection {
            Some(s) => s.len(),
            None => self.rows,
        }
    }
}

// ---------------------------------------------------------------------------
// Enable/disable switch
// ---------------------------------------------------------------------------

/// 0 = unset (read `HIPPO_COLUMNAR`), 1 = forced on, 2 = forced off.
static COLUMNAR_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Force vectorized execution on/off process-wide (tests, benches,
/// and the differential suites use this; worker threads observe it
/// immediately). `None` restores the `HIPPO_COLUMNAR` env default.
pub fn set_columnar_override(v: Option<bool>) {
    let code = match v {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    COLUMNAR_OVERRIDE.store(code, AtomicOrdering::Relaxed);
}

/// Serialises unit tests that flip the process-wide override so they
/// cannot observe each other's transient settings when the test
/// harness runs them on parallel threads.
#[cfg(test)]
pub(crate) fn override_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Is vectorized execution enabled? Override first, then the
/// `HIPPO_COLUMNAR` environment variable (default on; `"0"` = off).
pub fn columnar_enabled() -> bool {
    match COLUMNAR_OVERRIDE.load(AtomicOrdering::Relaxed) {
        1 => true,
        2 => false,
        _ => std::env::var_os("HIPPO_COLUMNAR")
            .map(|v| v != "0")
            .unwrap_or(true),
    }
}

// ---------------------------------------------------------------------------
// Plan compilation (structural, data-independent)
// ---------------------------------------------------------------------------

/// A compiled vectorized query.
pub(crate) struct VecQuery<'p> {
    root: Root<'p>,
}

enum Root<'p> {
    Select {
        pipe: Pipe<'p>,
        project: Option<&'p [BoundExpr]>,
        /// `(limit, offset)` from a peeled `LimitExec{limit: Some}`.
        limit: Option<(u64, u64)>,
    },
    Agg {
        pipe: Pipe<'p>,
        group_cols: Vec<usize>,
        aggs: &'p [AggExpr],
        /// Argument column per aggregate (`None` = `COUNT(*)`).
        arg_cols: Vec<Option<usize>>,
        project: Option<&'p [BoundExpr]>,
    },
    Join {
        left: Pipe<'p>,
        right: Pipe<'p>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        join_type: JoinType,
        project: Option<&'p [BoundExpr]>,
    },
}

/// A scan pipe: `FilterExec?(SeqScan)` with compiled conjuncts.
struct Pipe<'p> {
    table: &'p str,
    preds: Vec<Pred<'p>>,
    /// Whether a `FilterExec` was present (drives per-row charging
    /// parity even when `preds` is empty — it never is today, but the
    /// flag keeps charging tied to plan shape, not predicate count).
    has_filter: bool,
}

/// Right-hand side of a column-vs-constant comparison.
enum Rhs<'p> {
    Lit(&'p Value),
    Param(usize),
}

/// One compiled conjunct.
enum Pred<'p> {
    /// `col ⟨op⟩ rhs` — already flipped so the column is on the left;
    /// `orig_col_left` remembers the source orientation for error-text
    /// parity (`"cannot compare l with r"` names operands in source
    /// order).
    Cmp {
        col: usize,
        op: BinaryOp,
        rhs: Rhs<'p>,
        orig_col_left: bool,
    },
    /// `col ⟨op⟩ col`.
    CmpCols {
        left: usize,
        op: BinaryOp,
        right: usize,
    },
    /// `col IS [NOT] NULL`.
    IsNull { col: usize, negated: bool },
}

/// Compile a physical plan into a vectorized query, or `None` if any
/// part of the shape is unconverted. Purely structural: no table data
/// or parameter bindings are consulted, so the answer is stable for a
/// given plan and schema (which is what `EXPLAIN` prints).
pub(crate) fn compile<'p>(plan: &'p PhysicalPlan, catalog: &Catalog) -> Option<VecQuery<'p>> {
    let (limit, node) = match plan {
        PhysicalPlan::LimitExec {
            input,
            limit: Some(l),
            offset,
        } => (Some((*l, *offset)), &**input),
        other => (None, other),
    };
    let (project, node) = match node {
        PhysicalPlan::ProjectExec { input, exprs } => (Some(exprs.as_slice()), &**input),
        other => (None, other),
    };
    match node {
        PhysicalPlan::AggregateExec {
            input,
            group_exprs,
            aggregates,
        } if limit.is_none() => {
            let pipe = compile_pipe(input, catalog)?;
            let arity = catalog.table(pipe.table).ok()?.schema.arity();
            let mut group_cols = Vec::with_capacity(group_exprs.len());
            for g in group_exprs {
                match g {
                    BoundExpr::Column(i) if *i < arity => group_cols.push(*i),
                    _ => return None,
                }
            }
            let mut arg_cols = Vec::with_capacity(aggregates.len());
            for a in aggregates {
                match &a.arg {
                    None => arg_cols.push(None),
                    Some(BoundExpr::Column(i)) if *i < arity => arg_cols.push(Some(*i)),
                    Some(_) => return None,
                }
            }
            let out_arity = group_cols.len() + aggregates.len();
            check_project(project, out_arity)?;
            Some(VecQuery {
                root: Root::Agg {
                    pipe,
                    group_cols,
                    aggs: aggregates,
                    arg_cols,
                    project,
                },
            })
        }
        PhysicalPlan::HashJoinExec {
            left,
            right,
            left_keys,
            right_keys,
            residual: None,
            join_type,
        } if limit.is_none() => {
            let lpipe = compile_pipe(left, catalog)?;
            let rpipe = compile_pipe(right, catalog)?;
            let la = catalog.table(lpipe.table).ok()?.schema.arity();
            let ra = catalog.table(rpipe.table).ok()?.schema.arity();
            let lk = key_columns(left_keys, la)?;
            let rk = key_columns(right_keys, ra)?;
            check_project(project, la + ra)?;
            Some(VecQuery {
                root: Root::Join {
                    left: lpipe,
                    right: rpipe,
                    left_keys: lk,
                    right_keys: rk,
                    join_type: *join_type,
                    project,
                },
            })
        }
        other => {
            let pipe = compile_pipe(other, catalog)?;
            // A bare unfiltered, unprojected, unlimited scan gains
            // nothing from the batch path; keep it on the one-charge
            // row-mode `SeqScan` arm.
            if !pipe.has_filter && project.is_none() && limit.is_none() {
                return None;
            }
            let arity = catalog.table(pipe.table).ok()?.schema.arity();
            check_project(project, arity)?;
            Some(VecQuery {
                root: Root::Select {
                    pipe,
                    project,
                    limit,
                },
            })
        }
    }
}

/// Validate a peeled projection: columns in range, literals, params.
fn check_project(project: Option<&[BoundExpr]>, arity: usize) -> Option<()> {
    if let Some(exprs) = project {
        for e in exprs {
            match e {
                BoundExpr::Column(i) if *i < arity => {}
                BoundExpr::Literal(_) | BoundExpr::Param(_) => {}
                _ => return None,
            }
        }
    }
    Some(())
}

/// Join keys must all be plain in-range columns.
fn key_columns(keys: &[BoundExpr], arity: usize) -> Option<Vec<usize>> {
    keys.iter()
        .map(|k| match k {
            BoundExpr::Column(i) if *i < arity => Some(*i),
            _ => None,
        })
        .collect()
}

fn compile_pipe<'p>(node: &'p PhysicalPlan, catalog: &Catalog) -> Option<Pipe<'p>> {
    let (pred, scan) = match node {
        PhysicalPlan::FilterExec { input, predicate } => (Some(predicate), &**input),
        other => (None, other),
    };
    let table = match scan {
        PhysicalPlan::SeqScan { table } => table.as_str(),
        _ => return None,
    };
    let schema = &catalog.table(table).ok()?.schema;
    let mut preds = Vec::new();
    if let Some(p) = pred {
        for c in split_conjuncts_ref(p) {
            preds.push(compile_pred(c, schema)?);
        }
    }
    Some(Pipe {
        table,
        preds,
        has_filter: pred.is_some(),
    })
}

fn compile_pred<'p>(e: &'p BoundExpr, schema: &TableSchema) -> Option<Pred<'p>> {
    match e {
        BoundExpr::IsNull { expr, negated } => match &**expr {
            BoundExpr::Column(i) if *i < schema.arity() => Some(Pred::IsNull {
                col: *i,
                negated: *negated,
            }),
            _ => None,
        },
        BoundExpr::Binary { op, left, right } if op.is_comparison() => match (&**left, &**right) {
            (BoundExpr::Column(l), BoundExpr::Column(r)) => {
                let lt = schema.columns.get(*l)?.ty;
                let rt = schema.columns.get(*r)?.ty;
                let ok = matches!(
                    (lt, rt),
                    (
                        DataType::Int | DataType::Float,
                        DataType::Int | DataType::Float
                    ) | (DataType::Text, DataType::Text)
                        | (DataType::Bool, DataType::Bool)
                );
                ok.then_some(Pred::CmpCols {
                    left: *l,
                    op: *op,
                    right: *r,
                })
            }
            (BoundExpr::Column(c), rhs) => compile_cmp(*c, *op, rhs, true, schema),
            (lhs, BoundExpr::Column(c)) => compile_cmp(*c, op.flip()?, lhs, false, schema),
            _ => None,
        },
        _ => None,
    }
}

/// Compile `col ⟨op⟩ other` (already flipped so the column is on the
/// left; `orig_col_left` records the source orientation).
fn compile_cmp<'p>(
    col: usize,
    op: BinaryOp,
    other: &'p BoundExpr,
    orig_col_left: bool,
    schema: &TableSchema,
) -> Option<Pred<'p>> {
    let ty = schema.columns.get(col)?.ty;
    let rhs = match other {
        BoundExpr::Literal(v) => {
            if !lit_comparable(ty, v) {
                return None;
            }
            Rhs::Lit(v)
        }
        // Parameter comparability depends on the binding; checked at
        // resolve time with fallback to row mode.
        BoundExpr::Param(i) => Rhs::Param(*i),
        _ => return None,
    };
    Some(Pred::Cmp {
        col,
        op,
        rhs,
        orig_col_left,
    })
}

/// Can a column of type `ty` be compared with literal `v` without the
/// possibility of a *literal-side* comparison failure? (`NULL` is fine:
/// the predicate is constant-`NULL`. Column-side `NaN` data can still
/// fail at runtime and is handled per row.)
fn lit_comparable(ty: DataType, v: &Value) -> bool {
    match v {
        Value::Null => true,
        Value::Int(_) => matches!(ty, DataType::Int | DataType::Float),
        Value::Float(f) => !f.is_nan() && matches!(ty, DataType::Int | DataType::Float),
        Value::Text(_) => ty == DataType::Text,
        Value::Bool(_) => ty == DataType::Bool,
    }
}

// ---------------------------------------------------------------------------
// Runtime resolution (parameter bindings, store lookup)
// ---------------------------------------------------------------------------

/// A conjunct resolved against parameter bindings and column types.
enum RtPred {
    /// `INT col ⟨op⟩ i64` — exact integer compare, never errors.
    IntVsInt { col: usize, op: BinaryOp, k: i64 },
    /// Numeric column vs non-`NaN` f64 (the `sql_cmp` widening path).
    /// Errors only on `NaN` *data* in a `FLOAT` column; `err` carries
    /// the operand type names in source order.
    NumVsF64 {
        col: usize,
        op: BinaryOp,
        f: f64,
        err: (&'static str, &'static str),
    },
    /// `TEXT col ⟨op⟩ str`, pre-evaluated per dictionary code.
    TextVsCode { col: usize, by_code: Vec<bool> },
    /// `BOOL col ⟨op⟩ bool`.
    BoolVsBool { col: usize, op: BinaryOp, k: bool },
    /// Comparison against `NULL`: every row evaluates to `NULL`.
    AlwaysNull,
    /// `col ⟨op⟩ col`.
    Cols {
        left: usize,
        op: BinaryOp,
        right: usize,
    },
    /// `col IS [NOT] NULL`.
    IsNull { col: usize, negated: bool },
}

/// A projection item resolved against parameter bindings.
enum RtProj {
    Col(usize),
    Val(Value),
}

/// Comparison outcome per `eval_binary`'s mapping.
#[inline]
fn apply_cmp(op: BinaryOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering;
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::Neq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::Le => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::Ge => ord != Ordering::Less,
        _ => unreachable!("non-comparison op in vectorized predicate"),
    }
}

/// Resolve one compiled conjunct. `Ok(None)` = fall back to row mode
/// (unbound or incomparable parameter, `NaN` binding).
fn resolve_pred(
    p: &Pred<'_>,
    store: &ColumnStore,
    schema: &TableSchema,
    params: &[Value],
) -> Option<RtPred> {
    match p {
        Pred::IsNull { col, negated } => Some(RtPred::IsNull {
            col: *col,
            negated: *negated,
        }),
        Pred::CmpCols { left, op, right } => Some(RtPred::Cols {
            left: *left,
            op: *op,
            right: *right,
        }),
        Pred::Cmp {
            col,
            op,
            rhs,
            orig_col_left,
        } => {
            let ty = schema.columns[*col].ty;
            let v: &Value = match rhs {
                Rhs::Lit(v) => v,
                Rhs::Param(i) => {
                    let v = params.get(*i)?;
                    if !lit_comparable(ty, v) {
                        return None;
                    }
                    v
                }
            };
            Some(match (ty, v) {
                (_, Value::Null) => RtPred::AlwaysNull,
                (DataType::Int, Value::Int(k)) => RtPred::IntVsInt {
                    col: *col,
                    op: *op,
                    k: *k,
                },
                (DataType::Int | DataType::Float, _) => {
                    let (f, rname) = match v {
                        Value::Int(k) => (*k as f64, "integer"),
                        Value::Float(f) => (*f, "float"),
                        _ => return None,
                    };
                    // Errors name operands in source order: the column
                    // value's type first iff the column was on the left.
                    let err = if *orig_col_left {
                        ("float", rname)
                    } else {
                        (rname, "float")
                    };
                    RtPred::NumVsF64 {
                        col: *col,
                        op: *op,
                        f,
                        err,
                    }
                }
                (DataType::Text, Value::Text(s)) => {
                    let by_code = match &store.cols[*col].data {
                        ColumnData::Str { dict, .. } => dict
                            .iter()
                            .map(|d| apply_cmp(*op, d.as_str().cmp(s.as_str())))
                            .collect(),
                        _ => return None,
                    };
                    RtPred::TextVsCode { col: *col, by_code }
                }
                (DataType::Bool, Value::Bool(k)) => RtPred::BoolVsBool {
                    col: *col,
                    op: *op,
                    k: *k,
                },
                _ => return None,
            })
        }
    }
}

fn resolve_project(project: Option<&[BoundExpr]>, params: &[Value]) -> Option<Option<Vec<RtProj>>> {
    let Some(exprs) = project else {
        return Some(None);
    };
    let mut out = Vec::with_capacity(exprs.len());
    for e in exprs {
        out.push(match e {
            BoundExpr::Column(i) => RtProj::Col(*i),
            BoundExpr::Literal(v) => RtProj::Val(v.clone()),
            BoundExpr::Param(i) => RtProj::Val(params.get(*i)?.clone()),
            _ => return None,
        });
    }
    Some(Some(out))
}

// ---------------------------------------------------------------------------
// Batch filtering
// ---------------------------------------------------------------------------

/// Per-row tri-state inside a batch window.
const DEAD: u8 = 0;
const ALIVE_TRUE: u8 = 1;
const ALIVE_NULL: u8 = 2;

/// Evaluate one conjunct over rows `[start, start + lim)` of the
/// window, updating `states` in place. `Err((i, e))` reports the first
/// in-window offset whose evaluation fails (only `NaN` float data can
/// fail).
fn eval_pred(
    p: &RtPred,
    store: &ColumnStore,
    start: usize,
    lim: usize,
    states: &mut [u8],
) -> Result<(), (usize, EngineError)> {
    // Shared walk: `f(pos)` returns Ok(Some(bool)) / Ok(None) (NULL) /
    // Err(e); dead rows are skipped (AND short-circuit).
    macro_rules! walk {
        (|$pos:ident| $body:expr) => {
            for (i, s) in states.iter_mut().enumerate().take(lim) {
                if *s == DEAD {
                    continue;
                }
                let $pos = start + i;
                match $body {
                    Ok(Some(true)) => {}
                    Ok(Some(false)) => *s = DEAD,
                    Ok(None) => {
                        if *s == ALIVE_TRUE {
                            *s = ALIVE_NULL;
                        }
                    }
                    Err(e) => return Err((i, e)),
                }
            }
        };
    }
    let ok = |b: bool| -> Result<Option<bool>, EngineError> { Ok(Some(b)) };
    let null = || -> Result<Option<bool>, EngineError> { Ok(None) };
    match p {
        RtPred::AlwaysNull => {
            for s in states.iter_mut().take(lim) {
                if *s == ALIVE_TRUE {
                    *s = ALIVE_NULL;
                }
            }
            Ok(())
        }
        RtPred::IsNull { col, negated } => {
            let cv = &store.cols[*col];
            walk!(|pos| ok(cv.is_valid(pos) == *negated));
            Ok(())
        }
        RtPred::IntVsInt { col, op, k } => {
            let cv = &store.cols[*col];
            let ColumnData::Int64(data) = &cv.data else {
                unreachable!("IntVsInt over non-int column")
            };
            walk!(|pos| if cv.is_valid(pos) {
                ok(apply_cmp(*op, data[pos].cmp(k)))
            } else {
                null()
            });
            Ok(())
        }
        RtPred::BoolVsBool { col, op, k } => {
            let cv = &store.cols[*col];
            let ColumnData::Bool(data) = &cv.data else {
                unreachable!("BoolVsBool over non-bool column")
            };
            walk!(|pos| if cv.is_valid(pos) {
                ok(apply_cmp(*op, data[pos].cmp(k)))
            } else {
                null()
            });
            Ok(())
        }
        RtPred::TextVsCode { col, by_code } => {
            let cv = &store.cols[*col];
            let ColumnData::Str { codes, .. } = &cv.data else {
                unreachable!("TextVsCode over non-text column")
            };
            walk!(|pos| if cv.is_valid(pos) {
                ok(by_code[codes[pos] as usize])
            } else {
                null()
            });
            Ok(())
        }
        RtPred::NumVsF64 { col, op, f, err } => {
            let cv = &store.cols[*col];
            match &cv.data {
                // Int-as-f64 vs non-NaN f64 always compares.
                ColumnData::Int64(data) => {
                    walk!(|pos| if cv.is_valid(pos) {
                        let ord = (data[pos] as f64).partial_cmp(f).expect("non-NaN operands");
                        ok(apply_cmp(*op, ord))
                    } else {
                        null()
                    });
                }
                ColumnData::Float64(data) => {
                    walk!(|pos| if cv.is_valid(pos) {
                        match data[pos].partial_cmp(f) {
                            Some(ord) => ok(apply_cmp(*op, ord)),
                            None => Err(EngineError::new(format!(
                                "cannot compare {} with {}",
                                err.0, err.1
                            ))),
                        }
                    } else {
                        null()
                    });
                }
                _ => unreachable!("NumVsF64 over non-numeric column"),
            }
            Ok(())
        }
        RtPred::Cols { left, op, right } => {
            let (lv, rv) = (&store.cols[*left], &store.cols[*right]);
            macro_rules! both {
                (|$pos:ident| $cmp:expr) => {
                    walk!(|$pos| if lv.is_valid($pos) && rv.is_valid($pos) {
                        $cmp
                    } else {
                        null()
                    });
                };
            }
            let fail = |l: &'static str, r: &'static str| {
                EngineError::new(format!("cannot compare {l} with {r}"))
            };
            match (&lv.data, &rv.data) {
                (ColumnData::Int64(a), ColumnData::Int64(b)) => {
                    both!(|pos| ok(apply_cmp(*op, a[pos].cmp(&b[pos]))));
                }
                (ColumnData::Float64(a), ColumnData::Float64(b)) => {
                    both!(|pos| match a[pos].partial_cmp(&b[pos]) {
                        Some(ord) => ok(apply_cmp(*op, ord)),
                        None => Err(fail("float", "float")),
                    });
                }
                (ColumnData::Int64(a), ColumnData::Float64(b)) => {
                    both!(|pos| match (a[pos] as f64).partial_cmp(&b[pos]) {
                        Some(ord) => ok(apply_cmp(*op, ord)),
                        None => Err(fail("integer", "float")),
                    });
                }
                (ColumnData::Float64(a), ColumnData::Int64(b)) => {
                    both!(|pos| match a[pos].partial_cmp(&(b[pos] as f64)) {
                        Some(ord) => ok(apply_cmp(*op, ord)),
                        None => Err(fail("float", "integer")),
                    });
                }
                (ColumnData::Bool(a), ColumnData::Bool(b)) => {
                    both!(|pos| ok(apply_cmp(*op, a[pos].cmp(&b[pos]))));
                }
                (
                    ColumnData::Str {
                        dict: ld,
                        codes: lc,
                    },
                    ColumnData::Str {
                        dict: rd,
                        codes: rc,
                    },
                ) => {
                    both!(|pos| ok(apply_cmp(
                        *op,
                        ld[lc[pos] as usize].cmp(&rd[rc[pos] as usize])
                    )));
                }
                _ => unreachable!("mixed-type column comparison passed the compile gate"),
            }
            Ok(())
        }
    }
}

/// Run every conjunct over one window, shrinking on evaluation errors
/// until the earliest erroring row is isolated (see module docs).
/// Returns `(evaluated, pending_error)`: `states[..evaluated]` holds
/// the final tri-state of each cleanly evaluated row, and
/// `pending_error` is the error of row `evaluated` (the first row, in
/// row order, whose first live conjunct fails), if any.
fn filter_batch(
    store: &ColumnStore,
    preds: &[RtPred],
    start: usize,
    rows: usize,
    states: &mut Vec<u8>,
) -> (usize, Option<EngineError>) {
    let mut lim = rows;
    let mut pending = None;
    'retry: loop {
        states.clear();
        states.resize(lim, ALIVE_TRUE);
        for p in preds {
            if let Err((i, e)) = eval_pred(p, store, start, lim, states) {
                pending = Some(e);
                lim = i;
                continue 'retry;
            }
        }
        return (lim, pending);
    }
}

/// Scan + filter a store, producing the surviving selection vector
/// (absolute positions, ascending). Replays row-mode charging exactly:
/// one `charge_batch` for an unfiltered unlimited scan, `charge_row`
/// per examined row otherwise, with the streaming limit's
/// check-before-charge early exit when `stop_after` is set.
fn run_pipe(
    env: &mut EvalEnv<'_>,
    store: &ColumnStore,
    preds: &[RtPred],
    has_filter: bool,
    stop_after: Option<usize>,
) -> Result<Vec<u32>, EngineError> {
    let n = store.len();
    let per_row = has_filter || stop_after.is_some();
    if !per_row {
        env.charge_batch(n)?;
    }
    let mut sel: Vec<u32> = Vec::new();
    if stop_after == Some(0) {
        return Ok(sel);
    }
    let mut states: Vec<u8> = Vec::with_capacity(BATCH_ROWS.min(n));
    let mut start = 0usize;
    while start < n {
        let rows = (n - start).min(BATCH_ROWS);
        let (evaluated, err) = filter_batch(store, preds, start, rows, &mut states);
        env.vec_batches += 1;
        env.vec_rows += evaluated as u64;
        match stop_after {
            Some(need) => {
                for (i, &s) in states.iter().enumerate().take(evaluated) {
                    if sel.len() >= need {
                        return Ok(sel);
                    }
                    env.charge_row()?;
                    if s == ALIVE_TRUE {
                        sel.push((start + i) as u32);
                    }
                }
                if let Some(e) = err {
                    if sel.len() >= need {
                        return Ok(sel);
                    }
                    // The erroring row is charged before its (failing)
                    // evaluation, as in the row-mode loop.
                    env.charge_row()?;
                    return Err(e);
                }
            }
            None => {
                if per_row {
                    for _ in 0..evaluated {
                        env.charge_row()?;
                    }
                }
                for (i, &s) in states.iter().enumerate().take(evaluated) {
                    if s == ALIVE_TRUE {
                        sel.push((start + i) as u32);
                    }
                }
                if let Some(e) = err {
                    if per_row {
                        env.charge_row()?;
                    }
                    return Err(e);
                }
            }
        }
        start += rows;
    }
    Ok(sel)
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Try to execute `plan` vectorized. `Ok(None)` = not eligible (shape,
/// switch, or runtime binding) — the caller falls back to row mode
/// having observed no side effects (no budget charges, no stats).
pub(crate) fn try_execute(
    plan: &PhysicalPlan,
    env: &mut EvalEnv<'_>,
) -> Result<Option<Vec<Row>>, EngineError> {
    // Structural check first: it is a cheap match failure for the hot
    // prepared-probe plans (`IndexLookup` roots), cheaper than the
    // switch's env read.
    let Some(q) = compile(plan, env.catalog) else {
        return Ok(None);
    };
    if !columnar_enabled() {
        return Ok(None);
    }
    let catalog = env.catalog;
    match &q.root {
        Root::Select {
            pipe,
            project,
            limit,
        } => {
            let Some(rt) = resolve_pipe(pipe, catalog, env.params) else {
                return Ok(None);
            };
            let Some(proj) = resolve_project(*project, env.params) else {
                return Ok(None);
            };
            let stop_after = limit.map(|(l, o)| o as usize + l as usize);
            let sel = run_pipe(env, rt.store, &rt.preds, pipe.has_filter, stop_after)?;
            let skip = match limit {
                Some((_, o)) => (*o as usize).min(sel.len()),
                None => 0,
            };
            let mut out = Vec::with_capacity(sel.len() - skip);
            for &pos in &sel[skip..] {
                out.push(project_row(rt.store, pos as usize, proj.as_deref()));
            }
            Ok(Some(out))
        }
        Root::Agg {
            pipe,
            group_cols,
            aggs,
            arg_cols,
            project,
        } => {
            let Some(rt) = resolve_pipe(pipe, catalog, env.params) else {
                return Ok(None);
            };
            let Some(proj) = resolve_project(*project, env.params) else {
                return Ok(None);
            };
            let sel = run_pipe(env, rt.store, &rt.preds, pipe.has_filter, None)?;
            let rows = aggregate_selection(rt.store, &sel, group_cols, aggs, arg_cols)?;
            Ok(Some(match proj {
                None => rows,
                Some(items) => rows
                    .iter()
                    .map(|r| {
                        items
                            .iter()
                            .map(|it| match it {
                                RtProj::Col(i) => r[*i].clone(),
                                RtProj::Val(v) => v.clone(),
                            })
                            .collect()
                    })
                    .collect(),
            }))
        }
        Root::Join {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
            project,
        } => {
            let Some(lrt) = resolve_pipe(left, catalog, env.params) else {
                return Ok(None);
            };
            let Some(rrt) = resolve_pipe(right, catalog, env.params) else {
                return Ok(None);
            };
            let Some(proj) = resolve_project(*project, env.params) else {
                return Ok(None);
            };
            // Row mode executes left before right; keep the charge order.
            let lsel = run_pipe(env, lrt.store, &lrt.preds, left.has_filter, None)?;
            let rsel = run_pipe(env, rrt.store, &rrt.preds, right.has_filter, None)?;
            Ok(Some(join_selections(
                lrt.store,
                rrt.store,
                &lsel,
                &rsel,
                left_keys,
                right_keys,
                *join_type,
                proj.as_deref(),
            )))
        }
    }
}

/// A pipe resolved against the live column store.
struct RtPipe<'a> {
    store: &'a ColumnStore,
    preds: Vec<RtPred>,
}

fn resolve_pipe<'a>(pipe: &Pipe<'_>, catalog: &'a Catalog, params: &[Value]) -> Option<RtPipe<'a>> {
    let t = catalog.table(pipe.table).ok()?;
    let store = t.column_store()?;
    let mut preds = Vec::with_capacity(pipe.preds.len());
    for p in &pipe.preds {
        preds.push(resolve_pred(p, store, &t.schema, params)?);
    }
    Some(RtPipe { store, preds })
}

fn project_row(store: &ColumnStore, pos: usize, proj: Option<&[RtProj]>) -> Row {
    match proj {
        None => store.materialize_row(pos),
        Some(items) => items
            .iter()
            .map(|it| match it {
                RtProj::Col(i) => store.cols[*i].value_at(pos),
                RtProj::Val(v) => v.clone(),
            })
            .collect(),
    }
}

/// Grouped aggregation over a selection, mirroring the row-mode
/// `aggregate_rows` update/finish order exactly (first-seen group
/// order, per-row accumulator updates in aggregate order).
fn aggregate_selection(
    store: &ColumnStore,
    sel: &[u32],
    group_cols: &[usize],
    aggs: &[AggExpr],
    arg_cols: &[Option<usize>],
) -> Result<Vec<Row>, EngineError> {
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: FxHashMap<Vec<Value>, Vec<Acc>> =
        FxHashMap::with_capacity_and_hasher(sel.len().min(1 << 16), Default::default());
    for &pos in sel {
        let pos = pos as usize;
        let key: Vec<Value> = group_cols
            .iter()
            .map(|&c| store.cols[c].value_at(pos))
            .collect();
        let accs = match groups.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                order.push(e.key().clone());
                e.insert(aggs.iter().map(Acc::new).collect())
            }
        };
        for (acc, arg) in accs.iter_mut().zip(arg_cols) {
            let v = arg.map(|c| store.cols[c].value_at(pos));
            acc.update(v)?;
        }
    }
    if group_cols.is_empty() && groups.is_empty() {
        let accs: Vec<Acc> = aggs.iter().map(Acc::new).collect();
        let mut row = Vec::new();
        for acc in accs {
            row.push(acc.finish()?);
        }
        return Ok(vec![row]);
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group recorded");
        let mut row = key;
        for acc in accs {
            row.push(acc.finish()?);
        }
        out.push(row);
    }
    Ok(out)
}

/// Hash join over two selections, mirroring `hash_join_rows`: build
/// over the right side (`NULL` keys never enter the table), probe left
/// rows in order, left-outer padding when unmatched.
#[allow(clippy::too_many_arguments)]
fn join_selections(
    lstore: &ColumnStore,
    rstore: &ColumnStore,
    lsel: &[u32],
    rsel: &[u32],
    left_keys: &[usize],
    right_keys: &[usize],
    join_type: JoinType,
    proj: Option<&[RtProj]>,
) -> Vec<Row> {
    let la = lstore.cols.len();
    let right_arity = rstore.cols.len();
    let mut table: FxHashMap<Vec<Value>, Vec<u32>> =
        FxHashMap::with_capacity_and_hasher(rsel.len(), Default::default());
    'rows: for &rpos in rsel {
        let pos = rpos as usize;
        for &k in right_keys {
            if !rstore.cols[k].is_valid(pos) {
                continue 'rows;
            }
        }
        let key: Vec<Value> = right_keys
            .iter()
            .map(|&k| rstore.cols[k].value_at(pos))
            .collect();
        table.entry(key).or_default().push(rpos);
    }
    // Emit one output row from a (left, right?) position pair; `None`
    // right = left-outer NULL padding.
    let emit = |lpos: usize, rpos: Option<usize>| -> Row {
        match proj {
            Some(items) => items
                .iter()
                .map(|it| match it {
                    RtProj::Val(v) => v.clone(),
                    RtProj::Col(i) if *i < la => lstore.cols[*i].value_at(lpos),
                    RtProj::Col(i) => match rpos {
                        Some(rp) => rstore.cols[*i - la].value_at(rp),
                        None => Value::Null,
                    },
                })
                .collect(),
            None => {
                let mut row = Vec::with_capacity(la + right_arity);
                for c in &lstore.cols {
                    row.push(c.value_at(lpos));
                }
                match rpos {
                    Some(rp) => {
                        for c in &rstore.cols {
                            row.push(c.value_at(rp));
                        }
                    }
                    None => row.extend(std::iter::repeat_n(Value::Null, right_arity)),
                }
                row
            }
        }
    };
    let mut out = Vec::new();
    for &lpos in lsel {
        let pos = lpos as usize;
        let mut matched = false;
        let null_key = left_keys.iter().any(|&k| !lstore.cols[k].is_valid(pos));
        if !null_key {
            let key: Vec<Value> = left_keys
                .iter()
                .map(|&k| lstore.cols[k].value_at(pos))
                .collect();
            if let Some(candidates) = table.get(&key) {
                for &rpos in candidates {
                    matched = true;
                    out.push(emit(pos, Some(rpos as usize)));
                }
            }
        }
        if !matched && join_type == JoinType::Left {
            out.push(emit(pos, None));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// EXPLAIN support
// ---------------------------------------------------------------------------

/// Would executing `plan` use the vectorized engine anywhere (assuming
/// it is enabled)? True when the root compiles, or when any subtree
/// row mode would recurse into compiles. A `LimitExec{Some}` over a
/// streaming shape the compiler rejected does *not* recurse: row mode
/// runs it with the row-wise early-exit scan, never re-entering the
/// executor on its input.
pub fn plan_uses_vectorized(plan: &PhysicalPlan, catalog: &Catalog) -> bool {
    if compile(plan, catalog).is_some() {
        return true;
    }
    match plan {
        PhysicalPlan::LimitExec {
            input,
            limit: Some(_),
            ..
        } if is_streaming_shape(input) => false,
        PhysicalPlan::FilterExec { input, .. }
        | PhysicalPlan::ProjectExec { input, .. }
        | PhysicalPlan::DistinctExec { input }
        | PhysicalPlan::AggregateExec { input, .. }
        | PhysicalPlan::SortExec { input, .. }
        | PhysicalPlan::LimitExec { input, .. } => plan_uses_vectorized(input, catalog),
        PhysicalPlan::CrossJoinExec { left, right }
        | PhysicalPlan::HashJoinExec { left, right, .. }
        | PhysicalPlan::NestedLoopJoinExec { left, right, .. }
        | PhysicalPlan::UnionExec { left, right, .. }
        | PhysicalPlan::ExceptExec { left, right, .. }
        | PhysicalPlan::IntersectExec { left, right, .. } => {
            plan_uses_vectorized(left, catalog) || plan_uses_vectorized(right, catalog)
        }
        PhysicalPlan::Empty { .. }
        | PhysicalPlan::Values { .. }
        | PhysicalPlan::SeqScan { .. }
        | PhysicalPlan::IndexLookup { .. } => false,
    }
}

/// The shape `streaming_limit` handles row-wise without recursion.
fn is_streaming_shape(input: &PhysicalPlan) -> bool {
    let node = match input {
        PhysicalPlan::ProjectExec { input, .. } => &**input,
        other => other,
    };
    let node = match node {
        PhysicalPlan::FilterExec { input, .. } => &**input,
        other => other,
    };
    matches!(
        node,
        PhysicalPlan::SeqScan { .. } | PhysicalPlan::IndexLookup { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::schema::{Column, TableSchema};
    use rustc_hash::FxHasher;

    fn mixed_table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("f", DataType::Float),
                Column::new("s", DataType::Text),
                Column::new("b", DataType::Bool),
            ],
            &[],
        )
        .unwrap();
        let mut t = Table::new(schema);
        let rows = vec![
            vec![
                Value::Int(1),
                Value::Float(1.5),
                Value::text("x"),
                Value::Bool(true),
            ],
            vec![
                Value::Null,
                Value::Float(-0.0),
                Value::text("y"),
                Value::Null,
            ],
            vec![
                Value::Int(i64::MIN),
                Value::Null,
                Value::text("x"),
                Value::Bool(false),
            ],
            vec![
                Value::Int(3),
                Value::Float(f64::NAN),
                Value::Null,
                Value::Bool(true),
            ],
        ];
        for r in rows {
            t.insert(r).unwrap();
        }
        t
    }

    #[test]
    fn store_round_trips_rows_bit_identically() {
        let t = mixed_table();
        let store = t.column_store().expect("typed rows build");
        assert_eq!(store.len(), 4);
        for (pos, (tid, row)) in t.iter().enumerate() {
            assert_eq!(store.tid(pos), tid.0);
            let back = store.materialize_row(pos);
            assert_eq!(back.len(), row.len());
            for (a, b) in back.iter().zip(row) {
                // Bit-level float equality (NaN, -0.0), not sql_eq.
                match (a, b) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                    _ => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn dictionary_interns_first_appearance_order() {
        let t = mixed_table();
        let store = t.column_store().unwrap();
        match store.column(2).data() {
            ColumnData::Str { dict, codes } => {
                assert_eq!(dict, &["x".to_string(), "y".to_string()]);
                assert_eq!(codes, &[0, 1, 0, 0]);
            }
            other => panic!("expected Str column, got {other:?}"),
        }
        assert!(!store.column(2).is_valid(3));
    }

    #[test]
    fn hash_cols_matches_value_hash() {
        let t = mixed_table();
        let store = t.column_store().unwrap();
        for (pos, (_, row)) in t.iter().enumerate() {
            for cols in [vec![0usize], vec![1], vec![2], vec![3], vec![0, 2, 3]] {
                let mut h1 = FxHasher::default();
                let mut all_valid = true;
                'cols: for &c in &cols {
                    if row[c].is_null() {
                        all_valid = false;
                        break 'cols;
                    }
                    row[c].hash(&mut h1);
                }
                let mut h2 = FxHasher::default();
                let ok = store.hash_cols(pos, &cols, &mut h2);
                assert_eq!(ok, all_valid, "row {pos} cols {cols:?}");
                if ok {
                    assert_eq!(h1.finish(), h2.finish(), "row {pos} cols {cols:?}");
                }
            }
        }
    }

    #[test]
    fn for_each_hash_matches_value_hash() {
        // The batch loops hoist the constant hash prefixes
        // (`Value::write_*_hash_prefix`) and pre-hash the dictionary;
        // every produced (position, hash) pair must still equal the
        // per-row `Value::hash` sequence — across the integer extremes,
        // `-0.0` (integral float, folds onto the i64 grid), `NaN`, and
        // NULLs in every column.
        let t = mixed_table();
        let store = t.column_store().unwrap();
        for cols in [
            vec![0usize],
            vec![1],
            vec![2],
            vec![3],
            vec![0, 2],
            vec![3, 0],
        ] {
            let mut expect = Vec::new();
            for (pos, (_, row)) in t.iter().enumerate() {
                let mut h = FxHasher::default();
                if cols.iter().all(|&c| !row[c].is_null()) {
                    for &c in &cols {
                        row[c].hash(&mut h);
                    }
                    expect.push((pos, h.finish()));
                }
            }
            let mut got = Vec::new();
            store.for_each_hash::<FxHasher, _>(0..store.len(), &cols, |pos, h| {
                got.push((pos, h));
            });
            assert_eq!(got, expect, "cols {cols:?}");
        }
        // Sub-range invocation covers the chunked detect pass.
        let mut got = Vec::new();
        store.for_each_hash::<FxHasher, _>(1..3, &[2], |pos, h| got.push((pos, h)));
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|&(pos, _)| (1..3).contains(&pos)));
    }

    #[test]
    fn dml_invalidates_store() {
        let mut t = mixed_table();
        assert_eq!(t.column_store().unwrap().len(), 4);
        t.insert(vec![
            Value::Int(9),
            Value::Null,
            Value::text("z"),
            Value::Null,
        ])
        .unwrap();
        assert_eq!(t.column_store().unwrap().len(), 5);
        let victim = t.iter().next().map(|(tid, _)| tid).unwrap();
        assert!(t.delete(victim));
        assert_eq!(t.column_store().unwrap().len(), 4);
    }

    #[test]
    fn override_beats_env() {
        let _g = override_guard();
        set_columnar_override(Some(false));
        assert!(!columnar_enabled());
        set_columnar_override(Some(true));
        assert!(columnar_enabled());
        set_columnar_override(None);
    }

    #[test]
    fn selection_edges_empty_full_singleton() {
        let t = mixed_table();
        let store = t.column_store().unwrap();
        let mut env_catalog = Catalog::new();
        env_catalog.create_table(t.schema.clone()).unwrap();
        let mut env = EvalEnv::new(&env_catalog);
        // Full: no predicate on a limited pipe selects everything.
        let all = run_pipe(&mut env, store, &[], false, None).unwrap();
        assert_eq!(all, vec![0, 1, 2, 3]);
        // Singleton.
        let one = run_pipe(
            &mut env,
            store,
            &[RtPred::IntVsInt {
                col: 0,
                op: BinaryOp::Eq,
                k: 1,
            }],
            true,
            None,
        )
        .unwrap();
        assert_eq!(one, vec![0]);
        // Empty.
        let none = run_pipe(
            &mut env,
            store,
            &[RtPred::IntVsInt {
                col: 0,
                op: BinaryOp::Eq,
                k: 42,
            }],
            true,
            None,
        )
        .unwrap();
        assert!(none.is_empty());
        // i64::MIN comparison is exact (no float rounding).
        let min = run_pipe(
            &mut env,
            store,
            &[RtPred::IntVsInt {
                col: 0,
                op: BinaryOp::Le,
                k: i64::MIN,
            }],
            true,
            None,
        )
        .unwrap();
        assert_eq!(min, vec![2]);
    }
}
