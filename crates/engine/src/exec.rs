//! Plan execution: the physical executor and the logical reference.
//!
//! Two executors share one set of operator implementations:
//!
//! * [`execute_physical`] — the **production** path, running the
//!   [`PhysicalPlan`] the optimizer lowered. Its row-wise pipeline
//!   shapes stream: a `FilterExec` directly over a source clones only
//!   surviving rows, a `LimitExec` over a
//!   `ProjectExec?`/`FilterExec?`/source pipeline stops the scan as
//!   soon as `offset + limit` rows are produced, and an `IndexLookup`
//!   touches only the probed bucket. (These subsume the ad-hoc
//!   `Filter`-over-`Scan` and `LIMIT` special cases the logical
//!   executor used to carry.)
//! * [`execute`] — the **unoptimized logical reference**: bottom-up,
//!   fully materialising, no access-path tricks. It decides the
//!   semantics; the differential suite (`tests/prop_physical.rs`)
//!   checks the physical executor against it row-for-row. Expression
//!   subqueries (`EXISTS`/`IN`/scalar) also run here — with the
//!   correlated-`EXISTS` hash memo in [`EvalEnv`] covering the hot
//!   shape.
//!
//! Since PR 10 the physical executor is two-engined: before walking an
//! operator row-wise, [`execute_physical`] offers the whole subtree to
//! the **vectorized** compiler ([`crate::column::try_execute`]), which
//! runs eligible scan/aggregate/join shapes batch-at-a-time over the
//! table's [`crate::column::ColumnStore`]:
//!
//! ```text
//!                 PhysicalPlan subtree
//!                         │
//!             column::try_execute(plan, env)?
//!            ╱                              ╲
//!   compiles (typed cols,            anything else
//!   supported ops only)                     │
//!            │                              ▼
//!            ▼                      row-mode operators
//!   ColumnStore ─ 1024-row ─▶ filter ─▶ project/agg/join
//!   (Arc-shared) ColumnBatch   (selection vector, typed
//!                               slices, no Value clones)
//!            ╲                              ╱
//!             same rows, errors, budget charges — the engine
//!             choice shows only in EXPLAIN and DbStats
//!             (batches_executed / vectorized_rows / rowmode_rows)
//! ```
//!
//! Fallback is per-subtree, so a row-mode `SortExec` or `DistinctExec`
//! still vectorizes its input; see `column.rs` for the eligibility
//! rules and the charging-parity contract.
//!
//! Execution never mutates the catalog: all run state (the enclosing-row
//! stack, the correlated-`EXISTS` memo, prepared-parameter bindings)
//! lives in the per-call [`EvalEnv`], which each invocation owns
//! privately. That is what makes [`execute_physical_read_only`] — the
//! [`crate::db::DbSnapshot`] entry point — safe to call from many
//! threads over one shared `&Catalog` with no locking: each caller gets
//! a fresh environment on its own stack.

use crate::expr::{eval, BoundExpr, EvalEnv};
use crate::plan::{AggExpr, AggFunc, JoinType, LogicalPlan, PhysicalPlan};
use crate::schema::EngineError;
use crate::value::{Row, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// Execute a plan within an environment (catalog + enclosing rows).
pub fn execute(plan: &LogicalPlan, env: &mut EvalEnv<'_>) -> Result<Vec<Row>, EngineError> {
    match plan {
        LogicalPlan::Empty { .. } => Ok(Vec::new()),
        LogicalPlan::Values { rows, .. } => {
            let mut out = Vec::with_capacity(rows.len());
            for exprs in rows {
                let row: Row = exprs
                    .iter()
                    .map(|e| eval(e, &[], env))
                    .collect::<Result<_, _>>()?;
                out.push(row);
            }
            Ok(out)
        }
        LogicalPlan::Scan { table } => Ok(env.catalog.table(table)?.rows()),
        LogicalPlan::Filter { input, predicate } => {
            // A filter directly over a scan evaluates the predicate on
            // the *stored* rows and clones only the survivors. This is
            // purely an allocation detail, not an access path: the
            // same predicate runs on the same rows in the same (slot)
            // order as materialise-then-filter, so the reference
            // semantics are untouched — but the expression-subquery
            // paths (`IN`/scalar/non-memo `EXISTS`), which re-execute
            // their subplan here per outer row, don't pay a full-table
            // clone per evaluation.
            if let LogicalPlan::Scan { table } = &**input {
                let catalog = env.catalog;
                let t = catalog.table(table)?;
                let mut out = Vec::new();
                for (_, row) in t.iter() {
                    if eval(predicate, row, env)? == Value::Bool(true) {
                        out.push(row.clone());
                    }
                }
                return Ok(out);
            }
            let rows = execute(input, env)?;
            let mut out = Vec::new();
            for row in rows {
                if eval(predicate, &row, env)? == Value::Bool(true) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        LogicalPlan::Project { input, exprs } => {
            let rows = execute(input, env)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let projected: Row = exprs
                    .iter()
                    .map(|e| eval(e, &row, env))
                    .collect::<Result<_, _>>()?;
                out.push(projected);
            }
            Ok(out)
        }
        LogicalPlan::CrossJoin { left, right } => {
            let l = execute(left, env)?;
            let r = execute(right, env)?;
            let mut out = Vec::with_capacity(l.len().saturating_mul(r.len()));
            for lr in &l {
                for rr in &r {
                    let mut row = Vec::with_capacity(lr.len() + rr.len());
                    row.extend_from_slice(lr);
                    row.extend_from_slice(rr);
                    out.push(row);
                }
            }
            Ok(out)
        }
        LogicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            join_type,
        } => {
            let l = execute(left, env)?;
            let r = execute(right, env)?;
            let right_arity = match r.first() {
                Some(row) => row.len(),
                None => right.arity(env.catalog)?,
            };
            hash_join_rows(
                l,
                r,
                right_arity,
                left_keys,
                right_keys,
                residual.as_ref(),
                *join_type,
                env,
            )
        }
        LogicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
            join_type,
        } => {
            let l = execute(left, env)?;
            let r = execute(right, env)?;
            let right_arity = match r.first() {
                Some(row) => row.len(),
                None => right.arity(env.catalog)?,
            };
            nested_loop_rows(l, r, right_arity, predicate.as_ref(), *join_type, env)
        }
        LogicalPlan::Union { left, right, all } => {
            let l = execute(left, env)?;
            let r = execute(right, env)?;
            Ok(union_rows(l, r, *all))
        }
        LogicalPlan::Except { left, right, all } => {
            let l = execute(left, env)?;
            let r = execute(right, env)?;
            Ok(except_rows(l, r, *all))
        }
        LogicalPlan::Intersect { left, right, all } => {
            let l = execute(left, env)?;
            let r = execute(right, env)?;
            Ok(intersect_rows(l, r, *all))
        }
        LogicalPlan::Distinct { input } => Ok(dedup(execute(input, env)?)),
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => {
            let rows = execute(input, env)?;
            aggregate_rows(rows, group_exprs, aggregates, env)
        }
        LogicalPlan::Sort { input, keys } => {
            let rows = execute(input, env)?;
            sort_rows(rows, keys, env)
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let rows = execute(input, env)?;
            Ok(limit_slice(rows, *limit, *offset))
        }
    }
}

/// Evaluate a logical plan against a shared read-only catalog (the
/// reference path). Builds a private [`EvalEnv`] on this call's stack,
/// so concurrent callers over the same catalog never contend.
pub fn execute_read_only(
    plan: &LogicalPlan,
    catalog: &crate::catalog::Catalog,
) -> Result<Vec<Row>, EngineError> {
    let mut env = EvalEnv::new(catalog);
    execute(plan, &mut env)
}

/// Execute a physical plan within an environment.
///
/// Every call — including the recursive calls operator arms make on
/// their inputs — first offers the plan to the vectorized engine
/// ([`crate::column`]). That placement is what makes batch execution
/// composable: a `DistinctExec`, `SortExec`, set operation, or
/// materialising `LimitExec` whose *input* is an eligible
/// scan/aggregate/join shape runs that subtree on column batches even
/// though the operator itself stays row-mode.
pub fn execute_physical(
    plan: &PhysicalPlan,
    env: &mut EvalEnv<'_>,
) -> Result<Vec<Row>, EngineError> {
    if let Some(rows) = crate::column::try_execute(plan, env)? {
        return Ok(rows);
    }
    match plan {
        PhysicalPlan::Empty { .. } => Ok(Vec::new()),
        PhysicalPlan::Values { rows, .. } => {
            let mut out = Vec::with_capacity(rows.len());
            for exprs in rows {
                let row: Row = exprs
                    .iter()
                    .map(|e| eval(e, &[], env))
                    .collect::<Result<_, _>>()?;
                out.push(row);
            }
            Ok(out)
        }
        PhysicalPlan::SeqScan { table } => {
            let rows = env.catalog.table(table)?.rows();
            env.charge_batch(rows.len())?;
            env.rowmode_rows += rows.len() as u64;
            Ok(rows)
        }
        PhysicalPlan::IndexLookup {
            table,
            index_cols,
            key,
        } => index_lookup_rows(table, index_cols, key, env),
        PhysicalPlan::FilterExec { input, predicate } => match &**input {
            // Filter directly over a scan streams the stored rows and
            // clones only the survivors — materialising the scan first
            // would copy every row of the table per evaluation.
            PhysicalPlan::SeqScan { table } => {
                let t = env.catalog.table(table)?;
                let mut out = Vec::new();
                for (_, row) in t.iter() {
                    env.charge_row()?;
                    env.rowmode_rows += 1;
                    if eval(predicate, row, env)? == Value::Bool(true) {
                        out.push(row.clone());
                    }
                }
                Ok(out)
            }
            other => {
                let rows = execute_physical(other, env)?;
                let mut out = Vec::new();
                for row in rows {
                    env.charge_row()?;
                    if eval(predicate, &row, env)? == Value::Bool(true) {
                        out.push(row);
                    }
                }
                Ok(out)
            }
        },
        PhysicalPlan::ProjectExec { input, exprs } => {
            let rows = execute_physical(input, env)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let projected: Row = exprs
                    .iter()
                    .map(|e| eval(e, &row, env))
                    .collect::<Result<_, _>>()?;
                out.push(projected);
            }
            Ok(out)
        }
        PhysicalPlan::CrossJoinExec { left, right } => {
            let l = execute_physical(left, env)?;
            let r = execute_physical(right, env)?;
            let mut out = Vec::with_capacity(l.len().saturating_mul(r.len()));
            for lr in &l {
                for rr in &r {
                    let mut row = Vec::with_capacity(lr.len() + rr.len());
                    row.extend_from_slice(lr);
                    row.extend_from_slice(rr);
                    out.push(row);
                }
            }
            Ok(out)
        }
        PhysicalPlan::HashJoinExec {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            join_type,
        } => {
            let l = execute_physical(left, env)?;
            let r = execute_physical(right, env)?;
            let right_arity = match r.first() {
                Some(row) => row.len(),
                None => right.arity(env.catalog)?,
            };
            hash_join_rows(
                l,
                r,
                right_arity,
                left_keys,
                right_keys,
                residual.as_ref(),
                *join_type,
                env,
            )
        }
        PhysicalPlan::NestedLoopJoinExec {
            left,
            right,
            predicate,
            join_type,
        } => {
            let l = execute_physical(left, env)?;
            let r = execute_physical(right, env)?;
            let right_arity = match r.first() {
                Some(row) => row.len(),
                None => right.arity(env.catalog)?,
            };
            nested_loop_rows(l, r, right_arity, predicate.as_ref(), *join_type, env)
        }
        PhysicalPlan::UnionExec { left, right, all } => {
            let l = execute_physical(left, env)?;
            let r = execute_physical(right, env)?;
            Ok(union_rows(l, r, *all))
        }
        PhysicalPlan::ExceptExec { left, right, all } => {
            let l = execute_physical(left, env)?;
            let r = execute_physical(right, env)?;
            Ok(except_rows(l, r, *all))
        }
        PhysicalPlan::IntersectExec { left, right, all } => {
            let l = execute_physical(left, env)?;
            let r = execute_physical(right, env)?;
            Ok(intersect_rows(l, r, *all))
        }
        PhysicalPlan::DistinctExec { input } => Ok(dedup(execute_physical(input, env)?)),
        PhysicalPlan::AggregateExec {
            input,
            group_exprs,
            aggregates,
        } => {
            let rows = execute_physical(input, env)?;
            aggregate_rows(rows, group_exprs, aggregates, env)
        }
        PhysicalPlan::SortExec { input, keys } => {
            let rows = execute_physical(input, env)?;
            sort_rows(rows, keys, env)
        }
        PhysicalPlan::LimitExec {
            input,
            limit,
            offset,
        } => {
            if let Some(rows) = streaming_limit(input, *limit, *offset, env)? {
                return Ok(rows);
            }
            let rows = execute_physical(input, env)?;
            Ok(limit_slice(rows, *limit, *offset))
        }
    }
}

/// Evaluate a physical plan against a shared read-only catalog: the
/// snapshot entry point. Builds a private [`EvalEnv`] (enclosing-row
/// stack + `EXISTS` memo) on this call's stack, so concurrent callers
/// over the same catalog never contend on anything.
pub fn execute_physical_read_only(
    plan: &PhysicalPlan,
    catalog: &crate::catalog::Catalog,
) -> Result<Vec<Row>, EngineError> {
    let mut env = EvalEnv::new(catalog);
    execute_physical(plan, &mut env)
}

/// Evaluate a prepared (parameterised) physical plan against a shared
/// read-only catalog: `params` binds the plan's [`BoundExpr::Param`]
/// placeholders. One compiled probe plan is re-executed here per
/// candidate binding by the base-mode membership path.
pub fn execute_physical_params(
    plan: &PhysicalPlan,
    catalog: &crate::catalog::Catalog,
    params: &[Value],
) -> Result<Vec<Row>, EngineError> {
    let mut env = EvalEnv::with_params(catalog, params);
    execute_physical(plan, &mut env)
}

/// [`execute_physical_read_only`] under a resource [`Budget`]: the
/// executor's streaming loops charge rows against `budget` and unwind
/// with a structured `Budget`/`Cancelled` error (reported as `stage`)
/// when it is exhausted.
pub fn execute_physical_governed(
    plan: &PhysicalPlan,
    catalog: &crate::catalog::Catalog,
    budget: &crate::budget::Budget,
    stage: &'static str,
) -> Result<Vec<Row>, EngineError> {
    let mut env = EvalEnv::new(catalog);
    env.set_budget(budget, stage);
    let res = execute_physical(plan, &mut env);
    env.flush_budget();
    res
}

/// [`execute_physical_params`] under an optional resource [`Budget`]
/// (the governed membership-probe path; `budget = None` is exactly the
/// ungoverned call).
pub fn execute_physical_params_governed(
    plan: &PhysicalPlan,
    catalog: &crate::catalog::Catalog,
    params: &[Value],
    budget: Option<&crate::budget::Budget>,
    stage: &'static str,
) -> Result<Vec<Row>, EngineError> {
    let mut env = EvalEnv::with_params(catalog, params);
    if let Some(b) = budget {
        env.set_budget(b, stage);
    }
    let res = execute_physical(plan, &mut env);
    env.flush_budget();
    res
}

/// The one index-probe protocol, shared by every consumer: evaluate
/// the key expressions against the empty row, short-circuit a `NULL`
/// component to the empty bucket (SQL equality matches nothing), and
/// borrow the bucket's live tuple ids (ascending slot order). Errors
/// if the plan references an index the table does not have, or if a
/// key value does not inhabit the indexed column's type exactly — hash
/// identity only coincides with SQL equality for exact-type keys, so a
/// mis-typed [`BoundExpr::Param`] binding (a contract violation by the
/// prepared-plan caller) fails loudly instead of silently diverging
/// from the scan plan.
fn resolve_index_bucket<'a>(
    table: &str,
    index_cols: &[usize],
    key_exprs: &[BoundExpr],
    env: &mut EvalEnv<'a>,
) -> Result<(&'a crate::table::Table, &'a [crate::table::TupleId]), EngineError> {
    use crate::schema::DataType;
    let catalog = env.catalog;
    let t = catalog.table(table)?;
    let mut key = Vec::with_capacity(key_exprs.len());
    for (e, &col) in key_exprs.iter().zip(index_cols) {
        let v = eval(e, &[], env)?;
        if v.is_null() {
            return Ok((t, &[]));
        }
        let column = t.schema.columns.get(col).ok_or_else(|| {
            EngineError::new(format!("index column {col} out of range for {table:?}"))
        })?;
        let exact = matches!(
            (column.ty, &v),
            (DataType::Int, Value::Int(_))
                | (DataType::Text, Value::Text(_))
                | (DataType::Bool, Value::Bool(_))
        );
        if !exact {
            return Err(EngineError::new(format!(
                "prepared index probe on {table:?} bound a {} value to {} column {:?}",
                v.type_name(),
                column.ty,
                column.name
            )));
        }
        key.push(v);
    }
    let ids = t
        .index_bucket(index_cols, &key)
        .ok_or_else(|| EngineError::new(format!("plan references a missing index on {table:?}")))?;
    Ok((t, ids))
}

/// Materialise an index lookup: clone the matching live rows (ascending
/// slot order — exactly what a scan + equality filter would produce).
fn index_lookup_rows(
    table: &str,
    index_cols: &[usize],
    key_exprs: &[BoundExpr],
    env: &mut EvalEnv<'_>,
) -> Result<Vec<Row>, EngineError> {
    let (t, ids) = resolve_index_bucket(table, index_cols, key_exprs, env)?;
    env.rowmode_rows += ids.len() as u64;
    Ok(ids
        .iter()
        .map(|&id| t.get(id).expect("index buckets hold live ids").clone())
        .collect())
}

/// `LIMIT` over a row-wise `ProjectExec?(FilterExec?(source))` pipeline
/// stops producing as soon as `offset + limit` rows exist, instead of
/// materialising the whole input first. This turns an existence probe
/// (`SELECT 1 FROM t WHERE … LIMIT 1` — the base-mode membership
/// query) into work bounded by the first match; over an `IndexLookup`
/// source the bound is the probed bucket. Row order matches the
/// materialising path exactly (slot order), so results are identical.
/// Returns `None` when the plan is not of that shape.
fn streaming_limit(
    input: &PhysicalPlan,
    limit: Option<u64>,
    offset: u64,
    env: &mut EvalEnv<'_>,
) -> Result<Option<Vec<Row>>, EngineError> {
    let Some(limit) = limit else { return Ok(None) };
    let (projection, filter, source) = match input {
        PhysicalPlan::ProjectExec { input, exprs } => match &**input {
            PhysicalPlan::FilterExec { input, predicate } => {
                (Some(exprs), Some(predicate), &**input)
            }
            source => (Some(exprs), None, source),
        },
        PhysicalPlan::FilterExec { input, predicate } => (None, Some(predicate), &**input),
        source => (None, None, source),
    };
    // The source must be a base-table access path; anything else (a
    // join, a set operation, …) falls back to materialising. Rows are
    // *borrowed* from the table (scan iterator or index bucket ids)
    // and cloned only when they survive the filter and the window
    // still wants them — a `LIMIT 1` membership probe over a
    // duplicate-key bucket clones at most one row.
    let need = offset as usize + limit as usize;
    let catalog = env.catalog;
    let mut out = Vec::with_capacity(need.min(64));
    let produce = |row: &Row, env: &mut EvalEnv<'_>| -> Result<Option<Row>, EngineError> {
        if let Some(pred) = filter {
            if eval(pred, row, env)? != Value::Bool(true) {
                return Ok(None);
            }
        }
        Ok(Some(match projection {
            Some(exprs) => exprs
                .iter()
                .map(|e| eval(e, row, env))
                .collect::<Result<_, _>>()?,
            None => row.clone(),
        }))
    };
    match source {
        PhysicalPlan::SeqScan { table } => {
            let t = catalog.table(table)?;
            for (_, row) in t.iter() {
                if out.len() >= need {
                    break;
                }
                env.charge_row()?;
                env.rowmode_rows += 1;
                if let Some(p) = produce(row, env)? {
                    out.push(p);
                }
            }
        }
        PhysicalPlan::IndexLookup {
            table,
            index_cols,
            key,
        } => {
            let (t, ids) = resolve_index_bucket(table, index_cols, key, env)?;
            for &id in ids {
                if out.len() >= need {
                    break;
                }
                env.charge_row()?;
                env.rowmode_rows += 1;
                let row = t.get(id).expect("index buckets hold live ids");
                if let Some(p) = produce(row, env)? {
                    out.push(p);
                }
            }
        }
        _ => return Ok(None),
    }
    let start = (offset as usize).min(out.len());
    Ok(Some(out[start..].to_vec()))
}

/// Slice materialised rows to a `LIMIT`/`OFFSET` window.
fn limit_slice(rows: Vec<Row>, limit: Option<u64>, offset: u64) -> Vec<Row> {
    let start = (offset as usize).min(rows.len());
    let end = match limit {
        Some(l) => (start + l as usize).min(rows.len()),
        None => rows.len(),
    };
    rows[start..end].to_vec()
}

/// Bag/set union of materialised inputs.
fn union_rows(mut l: Vec<Row>, r: Vec<Row>, all: bool) -> Vec<Row> {
    l.extend(r);
    if all {
        l
    } else {
        dedup(l)
    }
}

/// Bag/set difference of materialised inputs.
fn except_rows(l: Vec<Row>, r: Vec<Row>, all: bool) -> Vec<Row> {
    if all {
        // Bag difference: remove one occurrence per right row.
        let mut counts: FxHashMap<Row, usize> =
            FxHashMap::with_capacity_and_hasher(r.len(), Default::default());
        for row in r {
            *counts.entry(row).or_insert(0) += 1;
        }
        let mut out = Vec::new();
        for row in l {
            match counts.get_mut(&row) {
                Some(c) if *c > 0 => *c -= 1,
                _ => out.push(row),
            }
        }
        out
    } else {
        let rset: FxHashSet<Row> = r.into_iter().collect();
        dedup(l.into_iter().filter(|row| !rset.contains(row)).collect())
    }
}

/// Bag/set intersection of materialised inputs.
fn intersect_rows(l: Vec<Row>, r: Vec<Row>, all: bool) -> Vec<Row> {
    if all {
        let mut counts: FxHashMap<Row, usize> =
            FxHashMap::with_capacity_and_hasher(r.len(), Default::default());
        for row in r {
            *counts.entry(row).or_insert(0) += 1;
        }
        let mut out = Vec::new();
        for row in l {
            if let Some(c) = counts.get_mut(&row) {
                if *c > 0 {
                    *c -= 1;
                    out.push(row);
                }
            }
        }
        out
    } else {
        let rset: FxHashSet<Row> = r.into_iter().collect();
        dedup(l.into_iter().filter(|row| rset.contains(row)).collect())
    }
}

/// Sort materialised rows stably by the given keys.
fn sort_rows(
    rows: Vec<Row>,
    keys: &[(BoundExpr, bool)],
    env: &mut EvalEnv<'_>,
) -> Result<Vec<Row>, EngineError> {
    // Evaluate keys once per row, then sort stably.
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows {
        let k: Vec<Value> = keys
            .iter()
            .map(|(e, _)| eval(e, &row, env))
            .collect::<Result<_, _>>()?;
        keyed.push((k, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, (_, desc)) in keys.iter().enumerate() {
            let ord = ka[i].cmp(&kb[i]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

/// Order-preserving duplicate elimination.
fn dedup(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: FxHashSet<Row> =
        FxHashSet::with_capacity_and_hasher(rows.len(), Default::default());
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if seen.insert(row.clone()) {
            out.push(row);
        }
    }
    out
}

/// Hash join over materialised inputs (shared by both executors).
/// `right_arity` is needed for LEFT-join NULL padding when the right
/// side produced no rows.
#[allow(clippy::too_many_arguments)]
fn hash_join_rows(
    l: Vec<Row>,
    r: Vec<Row>,
    right_arity: usize,
    left_keys: &[BoundExpr],
    right_keys: &[BoundExpr],
    residual: Option<&BoundExpr>,
    join_type: JoinType,
    env: &mut EvalEnv<'_>,
) -> Result<Vec<Row>, EngineError> {
    // Build hash table over the right side; NULL keys never match.
    let mut table: FxHashMap<Vec<Value>, Vec<usize>> =
        FxHashMap::with_capacity_and_hasher(r.len(), Default::default());
    'rows: for (i, row) in r.iter().enumerate() {
        let mut key = Vec::with_capacity(right_keys.len());
        for k in right_keys {
            let v = eval(k, row, env)?;
            if v.is_null() {
                continue 'rows;
            }
            key.push(v);
        }
        table.entry(key).or_default().push(i);
    }

    let mut out = Vec::new();
    for lrow in &l {
        let mut matched = false;
        let mut key = Vec::with_capacity(left_keys.len());
        let mut null_key = false;
        for k in left_keys {
            let v = eval(k, lrow, env)?;
            if v.is_null() {
                null_key = true;
                break;
            }
            key.push(v);
        }
        if !null_key {
            if let Some(candidates) = table.get(&key) {
                for &i in candidates {
                    // One exact-size allocation per output row; the old
                    // `lrow.clone()` + `extend` pattern allocated at the
                    // left arity and then regrew for the right half.
                    let mut row = Vec::with_capacity(lrow.len() + r[i].len());
                    row.extend_from_slice(lrow);
                    row.extend_from_slice(&r[i]);
                    let keep = match residual {
                        Some(p) => eval(p, &row, env)? == Value::Bool(true),
                        None => true,
                    };
                    if keep {
                        matched = true;
                        out.push(row);
                    }
                }
            }
        }
        if !matched && join_type == JoinType::Left {
            let mut row = Vec::with_capacity(lrow.len() + right_arity);
            row.extend_from_slice(lrow);
            row.extend(std::iter::repeat_n(Value::Null, right_arity));
            out.push(row);
        }
    }
    Ok(out)
}

/// Nested-loop join over materialised inputs (shared by both executors).
fn nested_loop_rows(
    l: Vec<Row>,
    r: Vec<Row>,
    right_arity: usize,
    predicate: Option<&BoundExpr>,
    join_type: JoinType,
    env: &mut EvalEnv<'_>,
) -> Result<Vec<Row>, EngineError> {
    let mut out = Vec::new();
    for lrow in &l {
        let mut matched = false;
        for rrow in &r {
            let mut row = Vec::with_capacity(lrow.len() + rrow.len());
            row.extend_from_slice(lrow);
            row.extend_from_slice(rrow);
            let keep = match predicate {
                Some(p) => eval(p, &row, env)? == Value::Bool(true),
                None => true,
            };
            if keep {
                matched = true;
                out.push(row);
            }
        }
        if !matched && join_type == JoinType::Left {
            let mut row = Vec::with_capacity(lrow.len() + right_arity);
            row.extend_from_slice(lrow);
            row.extend(std::iter::repeat_n(Value::Null, right_arity));
            out.push(row);
        }
    }
    Ok(out)
}

/// Accumulator for one aggregate in one group. Shared with the
/// vectorized aggregation path ([`crate::column`]), which feeds it the
/// same `Value` sequence the row-mode loop would — update/finish
/// semantics (overflow checks, type errors, DISTINCT replay) are
/// defined here once.
#[derive(Debug, Clone)]
pub(crate) enum Acc {
    Count(i64),
    Sum {
        sum_i: i64,
        sum_f: f64,
        is_float: bool,
        seen: bool,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
    Distinct {
        values: FxHashSet<Value>,
        func: AggFunc,
    },
}

impl Acc {
    pub(crate) fn new(agg: &AggExpr) -> Acc {
        if agg.distinct {
            return Acc::Distinct {
                values: FxHashSet::default(),
                func: agg.func,
            };
        }
        match agg.func {
            AggFunc::CountStar | AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum {
                sum_i: 0,
                sum_f: 0.0,
                is_float: false,
                seen: false,
            },
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::MinMax {
                best: None,
                is_min: true,
            },
            AggFunc::Max => Acc::MinMax {
                best: None,
                is_min: false,
            },
        }
    }

    pub(crate) fn update(&mut self, v: Option<Value>) -> Result<(), EngineError> {
        match self {
            Acc::Count(n) => match v {
                // COUNT(*) gets None (always counts); COUNT(e) skips NULLs.
                None => *n += 1,
                Some(Value::Null) => {}
                Some(_) => *n += 1,
            },
            Acc::Sum {
                sum_i,
                sum_f,
                is_float,
                seen,
            } => match v {
                Some(Value::Int(x)) => {
                    *seen = true;
                    *sum_i = sum_i
                        .checked_add(x)
                        .ok_or_else(|| EngineError::new("integer overflow in SUM"))?;
                    *sum_f += x as f64;
                }
                Some(Value::Float(x)) => {
                    *seen = true;
                    *is_float = true;
                    *sum_f += x;
                }
                Some(Value::Null) | None => {}
                Some(other) => {
                    return Err(EngineError::new(format!("SUM of {}", other.type_name())))
                }
            },
            Acc::Avg { sum, n } => match v {
                Some(Value::Int(x)) => {
                    *sum += x as f64;
                    *n += 1;
                }
                Some(Value::Float(x)) => {
                    *sum += x;
                    *n += 1;
                }
                Some(Value::Null) | None => {}
                Some(other) => {
                    return Err(EngineError::new(format!("AVG of {}", other.type_name())))
                }
            },
            Acc::MinMax { best, is_min } => {
                if let Some(v) = v {
                    if !v.is_null() {
                        let better = match best {
                            None => true,
                            Some(b) => match v.sql_cmp(b) {
                                Some(std::cmp::Ordering::Less) => *is_min,
                                Some(std::cmp::Ordering::Greater) => !*is_min,
                                _ => false,
                            },
                        };
                        if better {
                            *best = Some(v);
                        }
                    }
                }
            }
            Acc::Distinct { values, .. } => {
                if let Some(v) = v {
                    if !v.is_null() {
                        values.insert(v);
                    }
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Result<Value, EngineError> {
        Ok(match self {
            Acc::Count(n) => Value::Int(n),
            Acc::Sum {
                sum_i,
                sum_f,
                is_float,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if is_float {
                    Value::Float(sum_f)
                } else {
                    Value::Int(sum_i)
                }
            }
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Acc::MinMax { best, .. } => best.unwrap_or(Value::Null),
            Acc::Distinct { values, func } => {
                let mut acc = Acc::new(&AggExpr {
                    func,
                    arg: None,
                    distinct: false,
                });
                for v in values {
                    acc.update(Some(v))?;
                }
                acc.finish()?
            }
        })
    }
}

/// Grouped aggregation over materialised input (shared by both
/// executors).
fn aggregate_rows(
    rows: Vec<Row>,
    group_exprs: &[BoundExpr],
    aggregates: &[AggExpr],
    env: &mut EvalEnv<'_>,
) -> Result<Vec<Row>, EngineError> {
    // Deterministic group order: remember first-seen order.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: FxHashMap<Vec<Value>, Vec<Acc>> =
        FxHashMap::with_capacity_and_hasher(rows.len().min(1 << 16), Default::default());
    for row in &rows {
        let key: Vec<Value> = group_exprs
            .iter()
            .map(|e| eval(e, row, env))
            .collect::<Result<_, _>>()?;
        // Entry API: the key is moved in and cloned once only for
        // first-seen groups (the old probe-then-insert path cloned it
        // twice per new group).
        let accs = match groups.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                order.push(e.key().clone());
                e.insert(aggregates.iter().map(Acc::new).collect::<Vec<_>>())
            }
        };
        for (acc, agg) in accs.iter_mut().zip(aggregates) {
            let v = match &agg.arg {
                Some(e) => Some(eval(e, row, env)?),
                None => None,
            };
            acc.update(v)?;
        }
    }
    // Global aggregate over an empty input still yields one row.
    if group_exprs.is_empty() && groups.is_empty() {
        let accs: Vec<Acc> = aggregates.iter().map(Acc::new).collect();
        let mut row = Vec::new();
        for acc in accs {
            row.push(acc.finish()?);
        }
        return Ok(vec![row]);
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group recorded");
        let mut row = key;
        for acc in accs {
            row.push(acc.finish()?);
        }
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::schema::{Column, DataType, TableSchema};

    fn catalog_with_t() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "t",
                vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Text),
                ],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        let t = c.table_mut("t").unwrap();
        for (a, b) in [(1, "x"), (2, "y"), (3, "x")] {
            t.insert(vec![Value::Int(a), Value::text(b)]).unwrap();
        }
        c
    }

    fn run(c: &Catalog, plan: &LogicalPlan) -> Vec<Row> {
        let mut env = EvalEnv::new(c);
        execute(plan, &mut env).unwrap()
    }

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan { table: "t".into() }
    }

    #[test]
    fn scan_and_filter() {
        let c = catalog_with_t();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: BoundExpr::Binary {
                op: hippo_sql::BinaryOp::Gt,
                left: Box::new(BoundExpr::Column(0)),
                right: Box::new(BoundExpr::Literal(Value::Int(1))),
            },
        };
        let rows = run(&c, &plan);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn cross_join_sizes() {
        let c = catalog_with_t();
        let plan = LogicalPlan::CrossJoin {
            left: Box::new(scan()),
            right: Box::new(scan()),
        };
        assert_eq!(run(&c, &plan).len(), 9);
    }

    #[test]
    fn hash_join_inner_and_left() {
        let c = catalog_with_t();
        // join t with itself on b
        let join = |jt| LogicalPlan::HashJoin {
            left: Box::new(LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: BoundExpr::Binary {
                    op: hippo_sql::BinaryOp::Eq,
                    left: Box::new(BoundExpr::Column(0)),
                    right: Box::new(BoundExpr::Literal(Value::Int(1))),
                },
            }),
            right: Box::new(scan()),
            left_keys: vec![BoundExpr::Column(1)],
            right_keys: vec![BoundExpr::Column(1)],
            residual: None,
            join_type: jt,
        };
        // left side = (1, x); matches rows with b=x: (1,x),(3,x)
        assert_eq!(run(&c, &join(JoinType::Inner)).len(), 2);
        assert_eq!(run(&c, &join(JoinType::Left)).len(), 2);
    }

    #[test]
    fn left_join_pads_nulls() {
        let mut c = catalog_with_t();
        c.create_table(
            TableSchema::new("empty", vec![Column::new("z", DataType::Int)], &[]).unwrap(),
        )
        .unwrap();
        let plan = LogicalPlan::NestedLoopJoin {
            left: Box::new(scan()),
            right: Box::new(LogicalPlan::Scan {
                table: "empty".into(),
            }),
            predicate: None,
            join_type: JoinType::Left,
        };
        let rows = run(&c, &plan);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.len() == 3 && r[2] == Value::Null));
    }

    #[test]
    fn null_keys_never_join() {
        let mut c = Catalog::new();
        c.create_table(TableSchema::new("n", vec![Column::new("k", DataType::Int)], &[]).unwrap())
            .unwrap();
        c.table_mut("n").unwrap().insert(vec![Value::Null]).unwrap();
        let plan = LogicalPlan::HashJoin {
            left: Box::new(LogicalPlan::Scan { table: "n".into() }),
            right: Box::new(LogicalPlan::Scan { table: "n".into() }),
            left_keys: vec![BoundExpr::Column(0)],
            right_keys: vec![BoundExpr::Column(0)],
            residual: None,
            join_type: JoinType::Inner,
        };
        assert!(run(&c, &plan).is_empty());
    }

    #[test]
    fn set_operations() {
        let c = Catalog::new();
        let vals = |xs: &[i64]| {
            LogicalPlan::values_literal(xs.iter().map(|&x| vec![Value::Int(x)]).collect(), 1)
        };
        let union = LogicalPlan::Union {
            left: Box::new(vals(&[1, 2, 2])),
            right: Box::new(vals(&[2, 3])),
            all: false,
        };
        assert_eq!(run(&c, &union).len(), 3);
        let union_all = LogicalPlan::Union {
            left: Box::new(vals(&[1, 2, 2])),
            right: Box::new(vals(&[2, 3])),
            all: true,
        };
        assert_eq!(run(&c, &union_all).len(), 5);
        let except = LogicalPlan::Except {
            left: Box::new(vals(&[1, 2, 2, 3])),
            right: Box::new(vals(&[2])),
            all: false,
        };
        assert_eq!(
            run(&c, &except),
            vec![vec![Value::Int(1)], vec![Value::Int(3)]]
        );
        let except_all = LogicalPlan::Except {
            left: Box::new(vals(&[1, 2, 2, 3])),
            right: Box::new(vals(&[2])),
            all: true,
        };
        assert_eq!(
            run(&c, &except_all).len(),
            3,
            "EXCEPT ALL removes one occurrence"
        );
        let intersect = LogicalPlan::Intersect {
            left: Box::new(vals(&[1, 2, 2])),
            right: Box::new(vals(&[2, 2, 3])),
            all: false,
        };
        assert_eq!(run(&c, &intersect), vec![vec![Value::Int(2)]]);
        let intersect_all = LogicalPlan::Intersect {
            left: Box::new(vals(&[1, 2, 2])),
            right: Box::new(vals(&[2, 2, 3])),
            all: true,
        };
        assert_eq!(run(&c, &intersect_all).len(), 2);
    }

    #[test]
    fn distinct_dedups_preserving_order() {
        let c = Catalog::new();
        let plan = LogicalPlan::Distinct {
            input: Box::new(LogicalPlan::values_literal(
                vec![
                    vec![Value::Int(2)],
                    vec![Value::Int(1)],
                    vec![Value::Int(2)],
                ],
                1,
            )),
        };
        assert_eq!(
            run(&c, &plan),
            vec![vec![Value::Int(2)], vec![Value::Int(1)]]
        );
    }

    #[test]
    fn aggregate_group_by() {
        let c = catalog_with_t();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan()),
            group_exprs: vec![BoundExpr::Column(1)],
            aggregates: vec![
                AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    distinct: false,
                },
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(BoundExpr::Column(0)),
                    distinct: false,
                },
                AggExpr {
                    func: AggFunc::Min,
                    arg: Some(BoundExpr::Column(0)),
                    distinct: false,
                },
                AggExpr {
                    func: AggFunc::Max,
                    arg: Some(BoundExpr::Column(0)),
                    distinct: false,
                },
                AggExpr {
                    func: AggFunc::Avg,
                    arg: Some(BoundExpr::Column(0)),
                    distinct: false,
                },
            ],
        };
        let rows = run(&c, &plan);
        assert_eq!(rows.len(), 2);
        // groups in first-seen order: x then y
        assert_eq!(
            rows[0],
            vec![
                Value::text("x"),
                Value::Int(2),
                Value::Int(4),
                Value::Int(1),
                Value::Int(3),
                Value::Float(2.0)
            ]
        );
        assert_eq!(rows[1][0], Value::text("y"));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let c = Catalog::new();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Empty { arity: 1 }),
            group_exprs: vec![],
            aggregates: vec![
                AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    distinct: false,
                },
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(BoundExpr::Column(0)),
                    distinct: false,
                },
            ],
        };
        let rows = run(&c, &plan);
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn count_distinct() {
        let c = Catalog::new();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::values_literal(
                vec![
                    vec![Value::Int(1)],
                    vec![Value::Int(1)],
                    vec![Value::Int(2)],
                    vec![Value::Null],
                ],
                1,
            )),
            group_exprs: vec![],
            aggregates: vec![AggExpr {
                func: AggFunc::Count,
                arg: Some(BoundExpr::Column(0)),
                distinct: true,
            }],
        };
        assert_eq!(run(&c, &plan), vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn sort_and_limit() {
        let c = catalog_with_t();
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(scan()),
                keys: vec![(BoundExpr::Column(0), true)],
            }),
            limit: Some(2),
            offset: 1,
        };
        let rows = run(&c, &plan);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Int(2));
        assert_eq!(rows[1][0], Value::Int(1));
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        let c = Catalog::new();
        let input = LogicalPlan::values_literal(vec![vec![Value::Int(1)], vec![Value::Null]], 1);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group_exprs: vec![],
            aggregates: vec![
                AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    distinct: false,
                },
                AggExpr {
                    func: AggFunc::Count,
                    arg: Some(BoundExpr::Column(0)),
                    distinct: false,
                },
            ],
        };
        assert_eq!(run(&c, &plan), vec![vec![Value::Int(2), Value::Int(1)]]);
    }
}
