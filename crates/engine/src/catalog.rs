//! The catalog: a name → table map.

use crate::schema::{EngineError, TableSchema};
use crate::table::Table;
use std::collections::BTreeMap;

/// Holds all tables of one database instance.
///
/// Deliberately simple: single-threaded mutation, deterministic iteration
/// order (sorted by name) so conflict detection and benchmarks are
/// reproducible. A catalog holds no interior mutability, so a shared
/// `&Catalog` is freely readable from many threads — this is what makes
/// [`crate::db::DbSnapshot`] `Sync`. `Clone` backs the snapshot layer's
/// copy-on-write: mutating a database whose catalog is still shared with
/// a live snapshot clones the storage once.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Create a table; errors if the name is taken.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), EngineError> {
        if self.tables.contains_key(&schema.name) {
            return Err(EngineError::new(format!(
                "table {:?} already exists",
                schema.name
            )));
        }
        self.tables.insert(schema.name.clone(), Table::new(schema));
        Ok(())
    }

    /// Install a fully-built table (deserialization path); errors if the
    /// name is taken. Unlike [`Catalog::create_table`] this preserves the
    /// table's slot structure and indexes instead of starting empty.
    pub(crate) fn adopt_table(&mut self, table: Table) -> Result<(), EngineError> {
        let name = table.schema.name.clone();
        if self.tables.contains_key(&name) {
            return Err(EngineError::new(format!("table {name:?} already exists")));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Drop a table; errors if missing (unless `if_exists`).
    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<(), EngineError> {
        if self.tables.remove(name).is_none() && !if_exists {
            return Err(EngineError::new(format!("table {name:?} does not exist")));
        }
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table, EngineError> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::new(format!("table {name:?} does not exist")))
    }

    /// Look up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, EngineError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| EngineError::new(format!("table {name:?} does not exist")))
    }

    /// Does the table exist?
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Iterate tables sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Table)> {
        self.tables.iter()
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(name, vec![Column::new("a", DataType::Int)], &[]).unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::new();
        c.create_table(schema("t")).unwrap();
        assert!(c.contains("t"));
        assert!(c.table("t").is_ok());
        assert!(c.create_table(schema("t")).is_err(), "duplicate create");
        c.drop_table("t", false).unwrap();
        assert!(c.table("t").is_err());
        assert!(c.drop_table("t", false).is_err());
        assert!(
            c.drop_table("t", true).is_ok(),
            "IF EXISTS swallows missing"
        );
    }

    #[test]
    fn iteration_is_sorted() {
        let mut c = Catalog::new();
        for n in ["zeta", "alpha", "mid"] {
            c.create_table(schema(n)).unwrap();
        }
        assert_eq!(c.table_names(), vec!["alpha", "mid", "zeta"]);
    }
}
