//! Bound (resolved) expressions and their evaluation.
//!
//! A [`BoundExpr`] has every column reference resolved to a flat offset in
//! the current input row, or to an `OuterRef` reaching into enclosing query
//! rows (for correlated subqueries). Evaluation follows SQL three-valued
//! logic: comparisons and boolean connectives may yield `NULL`.

use crate::catalog::Catalog;
use crate::plan::LogicalPlan;
use crate::schema::EngineError;
use crate::table::TupleId;
use crate::value::Value;
use hippo_sql::{BinaryOp, UnaryOp};

/// A fully resolved expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Constant.
    Literal(Value),
    /// Column of the current row, by flat offset.
    Column(usize),
    /// Prepared-statement parameter, by position. Evaluates to
    /// [`EvalEnv::params`]`[i]` — the binding a prepared physical plan
    /// (e.g. the membership probes of [`crate::db::DbSnapshot::run_prepared`])
    /// is re-executed with. Never produced by the binder from SQL text;
    /// callers construct parameterised plans programmatically.
    Param(usize),
    /// Column of an enclosing query's row: `level` 0 is the nearest
    /// enclosing query, `index` is the flat offset in that row.
    OuterRef {
        /// Nesting distance (0 = nearest outer query).
        level: usize,
        /// Flat column offset in the outer row.
        index: usize,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<BoundExpr>,
    },
    /// `IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `[NOT] LIKE`.
    Like {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Pattern.
        pattern: Box<BoundExpr>,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `[NOT] IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Candidates.
        list: Vec<BoundExpr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `CASE WHEN ... END`.
    Case {
        /// `(condition, value)` pairs.
        branches: Vec<(BoundExpr, BoundExpr)>,
        /// `ELSE` value (`NULL` if absent).
        else_value: Option<Box<BoundExpr>>,
    },
    /// Scalar function call (non-aggregate).
    Function {
        /// Function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<BoundExpr>,
    },
    /// `[NOT] EXISTS (subplan)`.
    Exists {
        /// Subquery plan (may contain `OuterRef`s).
        plan: Box<LogicalPlan>,
        /// `NOT EXISTS`.
        negated: bool,
    },
    /// `expr [NOT] IN (subplan)`; the subplan must produce one column.
    InSubquery {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Subquery plan.
        plan: Box<LogicalPlan>,
        /// `NOT IN`.
        negated: bool,
    },
    /// Scalar subquery producing one row, one column (`NULL` if empty).
    ScalarSubquery(Box<LogicalPlan>),
}

/// Scalar (non-aggregate) functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// `ABS(x)`
    Abs,
    /// `LOWER(s)`
    Lower,
    /// `UPPER(s)`
    Upper,
    /// `LENGTH(s)`
    Length,
    /// `COALESCE(a, b, ...)`
    Coalesce,
}

impl ScalarFunc {
    /// Look up by (lower-case) name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name {
            "abs" => ScalarFunc::Abs,
            "lower" => ScalarFunc::Lower,
            "upper" => ScalarFunc::Upper,
            "length" => ScalarFunc::Length,
            "coalesce" => ScalarFunc::Coalesce,
            _ => return None,
        })
    }
}

impl BoundExpr {
    /// `TRUE` literal.
    pub fn true_() -> BoundExpr {
        BoundExpr::Literal(Value::Bool(true))
    }

    /// Build `left AND right`.
    pub fn and(self, other: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op: BinaryOp::And,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Conjunction of many; `TRUE` when empty.
    pub fn conjoin(exprs: impl IntoIterator<Item = BoundExpr>) -> BoundExpr {
        exprs
            .into_iter()
            .reduce(BoundExpr::and)
            .unwrap_or_else(BoundExpr::true_)
    }

    /// Does this expression (transitively) reference the current row?
    pub fn references_columns(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, BoundExpr::Column(_)) {
                found = true;
            }
        });
        found
    }

    /// Collect referenced current-row columns.
    pub fn collect_columns(&self, out: &mut Vec<usize>) {
        self.visit(&mut |e| {
            if let BoundExpr::Column(i) = e {
                out.push(*i);
            }
        });
    }

    /// Pre-order visit of this expression tree (not descending into
    /// subquery *plans*, only expression children).
    pub fn visit(&self, f: &mut impl FnMut(&BoundExpr)) {
        f(self);
        match self {
            BoundExpr::Literal(_)
            | BoundExpr::Column(_)
            | BoundExpr::Param(_)
            | BoundExpr::OuterRef { .. }
            | BoundExpr::Exists { .. }
            | BoundExpr::ScalarSubquery(_) => {}
            BoundExpr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            BoundExpr::Unary { expr, .. } | BoundExpr::IsNull { expr, .. } => expr.visit(f),
            BoundExpr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            BoundExpr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            BoundExpr::Case {
                branches,
                else_value,
            } => {
                for (c, v) in branches {
                    c.visit(f);
                    v.visit(f);
                }
                if let Some(e) = else_value {
                    e.visit(f);
                }
            }
            BoundExpr::Function { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            BoundExpr::InSubquery { expr, .. } => expr.visit(f),
        }
    }

    /// Rewrite every current-row column offset through `f` (used when an
    /// expression moves across an operator that permutes columns).
    pub fn map_columns(&self, f: &impl Fn(usize) -> usize) -> BoundExpr {
        match self {
            BoundExpr::Column(i) => BoundExpr::Column(f(*i)),
            BoundExpr::Literal(_) | BoundExpr::Param(_) | BoundExpr::OuterRef { .. } => {
                self.clone()
            }
            BoundExpr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(left.map_columns(f)),
                right: Box::new(right.map_columns(f)),
            },
            BoundExpr::Unary { op, expr } => BoundExpr::Unary {
                op: *op,
                expr: Box::new(expr.map_columns(f)),
            },
            BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(expr.map_columns(f)),
                negated: *negated,
            },
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => BoundExpr::Like {
                expr: Box::new(expr.map_columns(f)),
                pattern: Box::new(pattern.map_columns(f)),
                negated: *negated,
            },
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(expr.map_columns(f)),
                list: list.iter().map(|e| e.map_columns(f)).collect(),
                negated: *negated,
            },
            BoundExpr::Case {
                branches,
                else_value,
            } => BoundExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (c.map_columns(f), v.map_columns(f)))
                    .collect(),
                else_value: else_value.as_ref().map(|e| Box::new(e.map_columns(f))),
            },
            BoundExpr::Function { func, args } => BoundExpr::Function {
                func: *func,
                args: args.iter().map(|e| e.map_columns(f)).collect(),
            },
            // Subquery plans capture outer columns via OuterRef levels, which
            // are unaffected by permutations of the *current* row only if the
            // subquery references it via OuterRef{level: 0}. Those offsets
            // must be rewritten too; plans are opaque here, so callers must
            // not move subquery expressions across projections. We keep them
            // intact (safe for the optimizer, which never does).
            BoundExpr::Exists { .. } | BoundExpr::ScalarSubquery(_) => self.clone(),
            BoundExpr::InSubquery {
                expr,
                plan,
                negated,
            } => BoundExpr::InSubquery {
                expr: Box::new(expr.map_columns(f)),
                plan: plan.clone(),
                negated: *negated,
            },
        }
    }

    /// Does this expression contain a subquery (making it unsafe to move
    /// across projections / join reorderings)?
    pub fn contains_subquery(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(
                e,
                BoundExpr::Exists { .. }
                    | BoundExpr::InSubquery { .. }
                    | BoundExpr::ScalarSubquery(_)
            ) {
                found = true;
            }
        });
        found
    }
}

/// Evaluation environment: the catalog (for subqueries) and the stack of
/// enclosing rows, innermost last.
pub struct EvalEnv<'a> {
    /// Catalog used to execute subquery plans.
    pub catalog: &'a Catalog,
    /// Bindings for [`BoundExpr::Param`] placeholders (prepared plans);
    /// empty for plain query evaluation.
    pub params: &'a [Value],
    /// Enclosing query rows; `OuterRef{level: 0}` reads `outer.last()`.
    pub outer: Vec<Vec<Value>>,
    /// Per-query memo for correlated `EXISTS` fast paths: plan address →
    /// hash partition of the scanned table on the equi-correlated columns.
    /// Built lazily on the first probe of each `EXISTS` plan; turns the
    /// per-row rescan (O(n) per outer row) into an O(1) probe — the same
    /// effect an index gives the original system's PostgreSQL backend.
    /// Buckets hold tuple ids (ascending slot order), not row copies:
    /// a probe clones one small id bucket, never row data, and the
    /// build reads keys from the table's column store when one is
    /// available (contiguous typed slices) instead of slot rows.
    exists_cache: rustc_hash::FxHashMap<usize, rustc_hash::FxHashMap<Vec<Value>, Vec<TupleId>>>,
    /// Optional per-call resource budget; when set, the executor's
    /// streaming loops charge rows here and trip cooperatively.
    budget: Option<&'a crate::budget::Budget>,
    /// Stage label reported by budget errors raised from this env.
    budget_stage: &'static str,
    /// Local stride counter for [`EvalEnv::charge_row`].
    work: u32,
    /// Rows charged locally but not yet flushed to the shared budget.
    /// Flushed every stride and by [`EvalEnv::flush_budget`] — a shared
    /// atomic add per row would ping-pong the budget's cache line
    /// across all worker threads.
    pending_rows: u64,
    /// Column batches executed by the vectorized engine this call.
    pub vec_batches: u64,
    /// Rows examined through the vectorized engine this call.
    pub vec_rows: u64,
    /// Rows examined through row-mode source operators this call.
    pub rowmode_rows: u64,
}

impl<'a> EvalEnv<'a> {
    /// Environment with no enclosing rows.
    pub fn new(catalog: &'a Catalog) -> Self {
        EvalEnv {
            catalog,
            params: &[],
            outer: Vec::new(),
            exists_cache: rustc_hash::FxHashMap::default(),
            budget: None,
            budget_stage: "engine",
            work: 0,
            pending_rows: 0,
            vec_batches: 0,
            vec_rows: 0,
            rowmode_rows: 0,
        }
    }

    /// Environment with prepared-statement parameter bindings.
    pub fn with_params(catalog: &'a Catalog, params: &'a [Value]) -> Self {
        EvalEnv {
            params,
            ..EvalEnv::new(catalog)
        }
    }

    /// Govern this environment: executor loops will charge rows against
    /// `budget` and report trips as `stage`.
    pub fn set_budget(&mut self, budget: &'a crate::budget::Budget, stage: &'static str) {
        self.budget = Some(budget);
        self.budget_stage = stage;
    }

    /// Cooperative per-row checkpoint for executor loops. Free (one
    /// predicted branch) when no budget is attached; with one, the row
    /// is counted locally and both the flush to the shared budget and
    /// the full check run once per [`crate::budget::CHECK_STRIDE`] rows
    /// — per-row atomics on the shared counter would contend across
    /// worker threads.
    #[inline]
    pub fn charge_row(&mut self) -> Result<(), EngineError> {
        if let Some(b) = self.budget {
            self.pending_rows += 1;
            self.work = self.work.wrapping_add(1);
            if self.work & (crate::budget::CHECK_STRIDE - 1) == 0 {
                b.charge_rows(std::mem::take(&mut self.pending_rows));
                b.check(self.budget_stage)?;
            }
        }
        Ok(())
    }

    /// Flush rows charged locally since the last stride boundary to the
    /// shared budget. Governed entry points call this once their plan
    /// finishes so the call's row accounting is complete.
    pub fn flush_budget(&mut self) {
        let pending = std::mem::take(&mut self.pending_rows);
        if pending > 0 {
            if let Some(b) = self.budget {
                b.charge_rows(pending);
            }
        }
    }

    /// Bulk checkpoint for operators that materialise `n` rows at once
    /// (full scans feeding joins/aggregates): charges the whole batch
    /// and runs one full check.
    #[inline]
    pub fn charge_batch(&mut self, n: usize) -> Result<(), EngineError> {
        if let Some(b) = self.budget {
            b.charge_rows(n as u64);
            b.check(self.budget_stage)?;
        }
        Ok(())
    }
}

/// The shape recognised by the correlated-`EXISTS` fast path:
/// `EXISTS (SELECT … FROM table WHERE key_col_1 = k_1 ∧ … ∧ residual)`
/// where each `k_i` is computed from outer rows/constants only.
struct ExistsFastPath<'p> {
    table: &'p str,
    /// Inner key columns.
    key_cols: Vec<usize>,
    /// Outer key expressions (no inner-column references).
    key_exprs: Vec<&'p BoundExpr>,
    /// Remaining conjuncts, evaluated against each matching inner row.
    residual: Vec<&'p BoundExpr>,
}

/// Try to recognise the fast-path shape. Projections, DISTINCT and LIMIT
/// do not affect emptiness and are unwrapped.
fn exists_fast_path(plan: &LogicalPlan) -> Option<ExistsFastPath<'_>> {
    let mut p = plan;
    while let LogicalPlan::Project { input, .. }
    | LogicalPlan::Distinct { input }
    | LogicalPlan::Limit {
        input,
        limit: Some(_),
        offset: 0,
    } = p
    {
        p = input;
    }
    let LogicalPlan::Filter { input, predicate } = p else {
        return None;
    };
    let LogicalPlan::Scan { table } = &**input else {
        return None;
    };
    let mut key_cols = Vec::new();
    let mut key_exprs = Vec::new();
    let mut residual = Vec::new();
    for conjunct in split_conjuncts_ref(predicate) {
        if conjunct.contains_subquery() {
            return None;
        }
        match conjunct {
            BoundExpr::Binary {
                op: BinaryOp::Eq,
                left,
                right,
            } => match (&**left, &**right) {
                (BoundExpr::Column(c), e) if !e.references_columns() => {
                    key_cols.push(*c);
                    key_exprs.push(e);
                }
                (e, BoundExpr::Column(c)) if !e.references_columns() => {
                    key_cols.push(*c);
                    key_exprs.push(e);
                }
                _ => residual.push(conjunct),
            },
            other => residual.push(other),
        }
    }
    if key_cols.is_empty() {
        return None;
    }
    Some(ExistsFastPath {
        table,
        key_cols,
        key_exprs,
        residual,
    })
}

pub(crate) fn split_conjuncts_ref(e: &BoundExpr) -> Vec<&BoundExpr> {
    match e {
        BoundExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            let mut out = split_conjuncts_ref(left);
            out.extend(split_conjuncts_ref(right));
            out
        }
        other => vec![other],
    }
}

/// Evaluate `EXISTS (plan)` for the current `row`, using the hash fast
/// path when the plan shape allows it; falls back to full execution.
fn eval_exists(
    plan: &LogicalPlan,
    row: &[Value],
    env: &mut EvalEnv<'_>,
) -> Result<bool, EngineError> {
    if let Some(fp) = exists_fast_path(plan) {
        let plan_key = plan as *const LogicalPlan as usize;
        // The table reference outlives `env`'s mutable borrows (it
        // borrows the `'a` catalog, not the env), so residuals below
        // can evaluate against borrowed rows with zero row copies.
        let table = env.catalog.table(fp.table)?;
        if let std::collections::hash_map::Entry::Vacant(slot) = env.exists_cache.entry(plan_key) {
            // Build the partition: key values → live tuple ids, in
            // slot order. Keys are gathered from the column store's
            // contiguous typed slices when one is available (the KG
            // envelope's `EXISTS` flags are the hot caller), falling
            // back to the slot rows otherwise — both produce the same
            // map bit for bit.
            let mut map: rustc_hash::FxHashMap<Vec<Value>, Vec<TupleId>> =
                rustc_hash::FxHashMap::default();
            let store = if crate::column::columnar_enabled() {
                table.column_store()
            } else {
                None
            };
            match store {
                Some(store) => {
                    'positions: for pos in 0..store.len() {
                        let mut key = Vec::with_capacity(fp.key_cols.len());
                        for &c in &fp.key_cols {
                            let v = store.column(c).value_at(pos);
                            if v.is_null() {
                                continue 'positions; // NULL keys never equi-match
                            }
                            key.push(v);
                        }
                        map.entry(key).or_default().push(TupleId(store.tid(pos)));
                    }
                }
                None => {
                    'rows: for (tid, trow) in table.iter() {
                        let mut key = Vec::with_capacity(fp.key_cols.len());
                        for &c in &fp.key_cols {
                            if trow[c].is_null() {
                                continue 'rows; // NULL keys never equi-match
                            }
                            key.push(trow[c].clone());
                        }
                        map.entry(key).or_default().push(tid);
                    }
                }
            }
            slot.insert(map);
        }
        // Key expressions reference the current row through OuterRef{0},
        // so push it before evaluating them (with an empty inner row).
        env.outer.push(row.to_vec());
        let result = (|| -> Result<bool, EngineError> {
            let mut key = Vec::with_capacity(fp.key_exprs.len());
            for e in &fp.key_exprs {
                let v = eval(e, &[], env)?;
                if v.is_null() {
                    return Ok(false);
                }
                key.push(v);
            }
            // Clone the matching id bucket out to release the borrow on
            // env (residuals may contain nested subqueries needing
            // &mut env); ids are 4 bytes each, not rows.
            let matches: Option<Vec<TupleId>> = env
                .exists_cache
                .get(&(plan as *const LogicalPlan as usize))
                .and_then(|m| m.get(&key))
                .cloned();
            let Some(ids) = matches else {
                return Ok(false);
            };
            if fp.residual.is_empty() {
                return Ok(!ids.is_empty());
            }
            for id in ids {
                let inner = table.get(id).expect("cached exists ids are live");
                let mut ok = true;
                for r in &fp.residual {
                    if eval(r, inner, env)? != Value::Bool(true) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    return Ok(true);
                }
            }
            Ok(false)
        })();
        env.outer.pop();
        return result;
    }
    env.outer.push(row.to_vec());
    let result = crate::exec::execute(plan, env);
    env.outer.pop();
    Ok(!result?.is_empty())
}

/// Evaluate `expr` against `row` within `env`.
pub fn eval(expr: &BoundExpr, row: &[Value], env: &mut EvalEnv<'_>) -> Result<Value, EngineError> {
    match expr {
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Column(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| EngineError::new(format!("column offset {i} out of range"))),
        BoundExpr::Param(i) => env
            .params
            .get(*i)
            .cloned()
            .ok_or_else(|| EngineError::new(format!("parameter ${i} not bound"))),
        BoundExpr::OuterRef { level, index } => {
            let outer_row = env
                .outer
                .len()
                .checked_sub(1 + *level)
                .and_then(|i| env.outer.get(i))
                .ok_or_else(|| {
                    EngineError::new(format!("outer reference level {level} invalid"))
                })?;
            outer_row
                .get(*index)
                .cloned()
                .ok_or_else(|| EngineError::new(format!("outer column {index} out of range")))
        }
        BoundExpr::Binary { op, left, right } => eval_binary(*op, left, right, row, env),
        BoundExpr::Unary { op, expr } => {
            let v = eval(expr, row, env)?;
            match op {
                UnaryOp::Not => Ok(match v {
                    Value::Null => Value::Null,
                    Value::Bool(b) => Value::Bool(!b),
                    other => {
                        return Err(EngineError::new(format!(
                            "NOT applied to {}",
                            other.type_name()
                        )))
                    }
                }),
                UnaryOp::Neg => Ok(match v {
                    Value::Null => Value::Null,
                    Value::Int(i) => Value::Int(
                        i.checked_neg()
                            .ok_or_else(|| EngineError::new("integer overflow in negation"))?,
                    ),
                    Value::Float(f) => Value::Float(-f),
                    other => {
                        return Err(EngineError::new(format!(
                            "negation applied to {}",
                            other.type_name()
                        )))
                    }
                }),
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval(expr, row, env)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, row, env)?;
            let p = eval(pattern, row, env)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Text(s), Value::Text(p)) => Ok(Value::Bool(like_match(&s, &p) != *negated)),
                (a, b) => Err(EngineError::new(format!(
                    "LIKE requires text operands, got {} and {}",
                    a.type_name(),
                    b.type_name()
                ))),
            }
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, row, env)?;
                match v.sql_eq(&w) {
                    Some(true) => return Ok(Value::Bool(!*negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        BoundExpr::Case {
            branches,
            else_value,
        } => {
            for (cond, value) in branches {
                if eval(cond, row, env)? == Value::Bool(true) {
                    return eval(value, row, env);
                }
            }
            match else_value {
                Some(e) => eval(e, row, env),
                None => Ok(Value::Null),
            }
        }
        BoundExpr::Function { func, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, row, env))
                .collect::<Result<_, _>>()?;
            eval_function(*func, vals)
        }
        BoundExpr::Exists { plan, negated } => {
            let exists = eval_exists(plan, row, env)?;
            Ok(Value::Bool(exists != *negated))
        }
        BoundExpr::InSubquery {
            expr,
            plan,
            negated,
        } => {
            let v = eval(expr, row, env)?;
            env.outer.push(row.to_vec());
            let result = crate::exec::execute(plan, env);
            env.outer.pop();
            let rows = result?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for r in &rows {
                let w = r
                    .first()
                    .ok_or_else(|| EngineError::new("IN subquery produced zero columns"))?;
                match v.sql_eq(w) {
                    Some(true) => return Ok(Value::Bool(!*negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        BoundExpr::ScalarSubquery(plan) => {
            env.outer.push(row.to_vec());
            let result = crate::exec::execute(plan, env);
            env.outer.pop();
            let rows = result?;
            match rows.len() {
                0 => Ok(Value::Null),
                1 => rows[0]
                    .first()
                    .cloned()
                    .ok_or_else(|| EngineError::new("scalar subquery produced zero columns")),
                n => Err(EngineError::new(format!(
                    "scalar subquery produced {n} rows (expected at most one)"
                ))),
            }
        }
    }
}

fn eval_binary(
    op: BinaryOp,
    left: &BoundExpr,
    right: &BoundExpr,
    row: &[Value],
    env: &mut EvalEnv<'_>,
) -> Result<Value, EngineError> {
    // AND/OR need lazy evaluation for three-valued logic shortcuts.
    match op {
        BinaryOp::And => {
            let l = eval(left, row, env)?;
            if l == Value::Bool(false) {
                return Ok(Value::Bool(false));
            }
            let r = eval(right, row, env)?;
            return Ok(match (l, r) {
                (_, Value::Bool(false)) => Value::Bool(false),
                (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                (Value::Null | Value::Bool(true), Value::Null | Value::Bool(true)) => Value::Null,
                (a, b) => {
                    return Err(EngineError::new(format!(
                        "AND applied to {} and {}",
                        a.type_name(),
                        b.type_name()
                    )))
                }
            });
        }
        BinaryOp::Or => {
            let l = eval(left, row, env)?;
            if l == Value::Bool(true) {
                return Ok(Value::Bool(true));
            }
            let r = eval(right, row, env)?;
            return Ok(match (l, r) {
                (_, Value::Bool(true)) => Value::Bool(true),
                (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                (Value::Null | Value::Bool(false), Value::Null | Value::Bool(false)) => Value::Null,
                (a, b) => {
                    return Err(EngineError::new(format!(
                        "OR applied to {} and {}",
                        a.type_name(),
                        b.type_name()
                    )))
                }
            });
        }
        _ => {}
    }
    let l = eval(left, row, env)?;
    let r = eval(right, row, env)?;
    if op.is_comparison() {
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        let ord = l.sql_cmp(&r).ok_or_else(|| {
            EngineError::new(format!(
                "cannot compare {} with {}",
                l.type_name(),
                r.type_name()
            ))
        })?;
        let b = match op {
            BinaryOp::Eq => ord == std::cmp::Ordering::Equal,
            BinaryOp::Neq => ord != std::cmp::Ordering::Equal,
            BinaryOp::Lt => ord == std::cmp::Ordering::Less,
            BinaryOp::Le => ord != std::cmp::Ordering::Greater,
            BinaryOp::Gt => ord == std::cmp::Ordering::Greater,
            BinaryOp::Ge => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinaryOp::Concat => match (l, r) {
            (Value::Text(a), Value::Text(b)) => Ok(Value::Text(a + &b)),
            (a, b) => Ok(Value::Text(format!("{a}{b}"))),
        },
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul => arith(op, l, r),
        BinaryOp::Div => match (l, r) {
            (Value::Int(_), Value::Int(0)) => Err(EngineError::new("division by zero")),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_div(b))),
            (a, b) => {
                let (x, y) = numeric_pair(a, b, "/")?;
                if y == 0.0 {
                    Err(EngineError::new("division by zero"))
                } else {
                    Ok(Value::Float(x / y))
                }
            }
        },
        BinaryOp::Mod => match (l, r) {
            (Value::Int(_), Value::Int(0)) => Err(EngineError::new("division by zero")),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_rem(b))),
            (a, b) => Err(EngineError::new(format!(
                "% requires integers, got {} and {}",
                a.type_name(),
                b.type_name()
            ))),
        },
        _ => unreachable!("handled above"),
    }
}

fn numeric_pair(a: Value, b: Value, op: &str) -> Result<(f64, f64), EngineError> {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(EngineError::new(format!(
            "{op} requires numeric operands, got {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

fn arith(op: BinaryOp, l: Value, r: Value) -> Result<Value, EngineError> {
    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
        let result = match op {
            BinaryOp::Add => a.checked_add(*b),
            BinaryOp::Sub => a.checked_sub(*b),
            BinaryOp::Mul => a.checked_mul(*b),
            _ => unreachable!(),
        };
        return result
            .map(Value::Int)
            .ok_or_else(|| EngineError::new("integer overflow"));
    }
    let (x, y) = numeric_pair(l, r, op.sql())?;
    Ok(Value::Float(match op {
        BinaryOp::Add => x + y,
        BinaryOp::Sub => x - y,
        BinaryOp::Mul => x * y,
        _ => unreachable!(),
    }))
}

fn eval_function(func: ScalarFunc, mut vals: Vec<Value>) -> Result<Value, EngineError> {
    let argc = |n: usize, vals: &[Value]| -> Result<(), EngineError> {
        if vals.len() != n {
            Err(EngineError::new(format!(
                "function expects {n} arguments, got {}",
                vals.len()
            )))
        } else {
            Ok(())
        }
    };
    match func {
        ScalarFunc::Abs => {
            argc(1, &vals)?;
            match vals.pop().expect("checked") {
                Value::Null => Ok(Value::Null),
                Value::Int(v) => {
                    Ok(Value::Int(v.checked_abs().ok_or_else(|| {
                        EngineError::new("integer overflow in ABS")
                    })?))
                }
                Value::Float(v) => Ok(Value::Float(v.abs())),
                other => Err(EngineError::new(format!("ABS of {}", other.type_name()))),
            }
        }
        ScalarFunc::Lower | ScalarFunc::Upper => {
            argc(1, &vals)?;
            match vals.pop().expect("checked") {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(if func == ScalarFunc::Lower {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                })),
                other => Err(EngineError::new(format!(
                    "string function of {}",
                    other.type_name()
                ))),
            }
        }
        ScalarFunc::Length => {
            argc(1, &vals)?;
            match vals.pop().expect("checked") {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(EngineError::new(format!("LENGTH of {}", other.type_name()))),
            }
        }
        ScalarFunc::Coalesce => {
            for v in vals {
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
    }
}

/// SQL `LIKE` matching with `%` (any run) and `_` (any single char).
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Greedy-or-empty: try consuming 0..=len chars.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Catalog {
        Catalog::new()
    }

    fn ev(e: &BoundExpr, row: &[Value]) -> Value {
        let catalog = ctx();
        let mut env = EvalEnv::new(&catalog);
        eval(e, row, &mut env).unwrap()
    }

    fn bin(op: BinaryOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Literal(v.into())
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ev(&bin(BinaryOp::Add, lit(1), lit(2)), &[]), Value::Int(3));
        assert_eq!(
            ev(&bin(BinaryOp::Mul, lit(2.5), lit(2)), &[]),
            Value::Float(5.0)
        );
        assert_eq!(ev(&bin(BinaryOp::Div, lit(7), lit(2)), &[]), Value::Int(3));
        assert_eq!(
            ev(&bin(BinaryOp::Div, lit(7.0), lit(2)), &[]),
            Value::Float(3.5)
        );
        assert_eq!(ev(&bin(BinaryOp::Mod, lit(7), lit(3)), &[]), Value::Int(1));
    }

    #[test]
    fn division_by_zero_errors() {
        let catalog = ctx();
        let mut env = EvalEnv::new(&catalog);
        assert!(eval(&bin(BinaryOp::Div, lit(1), lit(0)), &[], &mut env).is_err());
        assert!(eval(&bin(BinaryOp::Mod, lit(1), lit(0)), &[], &mut env).is_err());
    }

    #[test]
    fn overflow_errors() {
        let catalog = ctx();
        let mut env = EvalEnv::new(&catalog);
        assert!(eval(&bin(BinaryOp::Add, lit(i64::MAX), lit(1)), &[], &mut env).is_err());
        assert!(eval(&bin(BinaryOp::Mul, lit(i64::MAX), lit(2)), &[], &mut env).is_err());
    }

    #[test]
    fn null_propagates_through_arithmetic_and_comparison() {
        assert_eq!(
            ev(
                &bin(BinaryOp::Add, lit(1), BoundExpr::Literal(Value::Null)),
                &[]
            ),
            Value::Null
        );
        assert_eq!(
            ev(
                &bin(BinaryOp::Eq, lit(1), BoundExpr::Literal(Value::Null)),
                &[]
            ),
            Value::Null
        );
    }

    #[test]
    fn three_valued_and_or() {
        let null = || BoundExpr::Literal(Value::Null);
        let t = || lit(true);
        let f = || lit(false);
        assert_eq!(
            ev(&bin(BinaryOp::And, f(), null()), &[]),
            Value::Bool(false)
        );
        assert_eq!(
            ev(&bin(BinaryOp::And, null(), f()), &[]),
            Value::Bool(false)
        );
        assert_eq!(ev(&bin(BinaryOp::And, t(), null()), &[]), Value::Null);
        assert_eq!(ev(&bin(BinaryOp::Or, t(), null()), &[]), Value::Bool(true));
        assert_eq!(ev(&bin(BinaryOp::Or, null(), t()), &[]), Value::Bool(true));
        assert_eq!(ev(&bin(BinaryOp::Or, f(), null()), &[]), Value::Null);
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            ev(&bin(BinaryOp::Le, lit(1), lit(1)), &[]),
            Value::Bool(true)
        );
        assert_eq!(
            ev(&bin(BinaryOp::Gt, lit("b"), lit("a")), &[]),
            Value::Bool(true)
        );
        assert_eq!(
            ev(&bin(BinaryOp::Neq, lit(1), lit(2)), &[]),
            Value::Bool(true)
        );
    }

    #[test]
    fn column_and_outer_refs() {
        let row = vec![Value::Int(42)];
        assert_eq!(ev(&BoundExpr::Column(0), &row), Value::Int(42));
        let catalog = ctx();
        let mut env = EvalEnv::new(&catalog);
        env.outer.push(vec![Value::text("outer0")]);
        env.outer.push(vec![Value::text("outer1")]);
        let v = eval(&BoundExpr::OuterRef { level: 0, index: 0 }, &row, &mut env).unwrap();
        assert_eq!(v, Value::text("outer1"), "level 0 is nearest");
        let v = eval(&BoundExpr::OuterRef { level: 1, index: 0 }, &row, &mut env).unwrap();
        assert_eq!(v, Value::text("outer0"));
    }

    #[test]
    fn in_list_null_semantics() {
        // 1 IN (2, NULL) -> NULL ; 1 IN (1, NULL) -> TRUE ; 1 NOT IN (2) -> TRUE
        let e = BoundExpr::InList {
            expr: Box::new(lit(1)),
            list: vec![lit(2), BoundExpr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(ev(&e, &[]), Value::Null);
        let e = BoundExpr::InList {
            expr: Box::new(lit(1)),
            list: vec![lit(1), BoundExpr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(ev(&e, &[]), Value::Bool(true));
        let e = BoundExpr::InList {
            expr: Box::new(lit(1)),
            list: vec![lit(2)],
            negated: true,
        };
        assert_eq!(ev(&e, &[]), Value::Bool(true));
    }

    #[test]
    fn case_and_functions() {
        let e = BoundExpr::Case {
            branches: vec![(bin(BinaryOp::Eq, BoundExpr::Column(0), lit(1)), lit("one"))],
            else_value: Some(Box::new(lit("other"))),
        };
        assert_eq!(ev(&e, &[Value::Int(1)]), Value::text("one"));
        assert_eq!(ev(&e, &[Value::Int(5)]), Value::text("other"));
        let abs = BoundExpr::Function {
            func: ScalarFunc::Abs,
            args: vec![lit(-3)],
        };
        assert_eq!(ev(&abs, &[]), Value::Int(3));
        let co = BoundExpr::Function {
            func: ScalarFunc::Coalesce,
            args: vec![BoundExpr::Literal(Value::Null), lit(5)],
        };
        assert_eq!(ev(&co, &[]), Value::Int(5));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "h_"));
        assert!(!like_match("", "_"));
        assert!(like_match("", "%"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn is_null() {
        let e = BoundExpr::IsNull {
            expr: Box::new(BoundExpr::Literal(Value::Null)),
            negated: false,
        };
        assert_eq!(ev(&e, &[]), Value::Bool(true));
        let e = BoundExpr::IsNull {
            expr: Box::new(lit(1)),
            negated: true,
        };
        assert_eq!(ev(&e, &[]), Value::Bool(true));
    }

    #[test]
    fn concat() {
        assert_eq!(
            ev(&bin(BinaryOp::Concat, lit("a"), lit("b")), &[]),
            Value::text("ab")
        );
        assert_eq!(
            ev(&bin(BinaryOp::Concat, lit("a"), lit(1)), &[]),
            Value::text("a1")
        );
    }

    #[test]
    fn conjoin_helper() {
        assert_eq!(BoundExpr::conjoin(vec![]), BoundExpr::true_());
        let e = BoundExpr::conjoin(vec![lit(true), lit(false)]);
        assert_eq!(ev(&e, &[]), Value::Bool(false));
    }

    #[test]
    fn exists_fast_path_matches_slow_path() {
        use crate::plan::LogicalPlan;
        use crate::schema::{Column, DataType, TableSchema};
        let mut catalog = Catalog::new();
        catalog
            .create_table(
                TableSchema::new(
                    "t",
                    vec![
                        Column::new("k", DataType::Int),
                        Column::new("v", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        let t = catalog.table_mut("t").unwrap();
        for (k, v) in [(1, 10), (1, 20), (2, 30)] {
            t.insert(vec![Value::Int(k), Value::Int(v)]).unwrap();
        }
        // EXISTS (SELECT * FROM t WHERE t.k = <outer col 0> AND t.v > 15)
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan { table: "t".into() }),
            predicate: BoundExpr::Binary {
                op: BinaryOp::And,
                left: Box::new(bin(
                    BinaryOp::Eq,
                    BoundExpr::Column(0),
                    BoundExpr::OuterRef { level: 0, index: 0 },
                )),
                right: Box::new(bin(BinaryOp::Gt, BoundExpr::Column(1), lit(15))),
            },
        };
        let e = BoundExpr::Exists {
            plan: Box::new(plan),
            negated: false,
        };
        let mut env = EvalEnv::new(&catalog);
        // k=1 has v=20 > 15 → true; k=2 has v=30 → true; k=9 → false.
        assert_eq!(
            eval(&e, &[Value::Int(1)], &mut env).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&e, &[Value::Int(2)], &mut env).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&e, &[Value::Int(9)], &mut env).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(&e, &[Value::Null], &mut env).unwrap(),
            Value::Bool(false),
            "NULL outer key never matches"
        );
    }

    #[test]
    fn exists_without_equi_keys_falls_back() {
        use crate::plan::LogicalPlan;
        use crate::schema::{Column, DataType, TableSchema};
        let mut catalog = Catalog::new();
        catalog
            .create_table(
                TableSchema::new("t", vec![Column::new("v", DataType::Int)], &[]).unwrap(),
            )
            .unwrap();
        catalog
            .table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(5)])
            .unwrap();
        // EXISTS (SELECT * FROM t WHERE t.v < <outer col 0>) — no equality,
        // must use the general path.
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan { table: "t".into() }),
            predicate: bin(
                BinaryOp::Lt,
                BoundExpr::Column(0),
                BoundExpr::OuterRef { level: 0, index: 0 },
            ),
        };
        let e = BoundExpr::Exists {
            plan: Box::new(plan),
            negated: false,
        };
        let mut env = EvalEnv::new(&catalog);
        assert_eq!(
            eval(&e, &[Value::Int(10)], &mut env).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&e, &[Value::Int(3)], &mut env).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn map_columns_rewrites_offsets() {
        let e = bin(BinaryOp::Add, BoundExpr::Column(0), BoundExpr::Column(2));
        let mapped = e.map_columns(&|i| i + 10);
        let mut cols = Vec::new();
        mapped.collect_columns(&mut cols);
        assert_eq!(cols, vec![10, 12]);
    }
}
