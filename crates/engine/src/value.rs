//! Runtime values with SQL comparison semantics.
//!
//! [`Value`] is the single dynamic value type flowing through the executor.
//! Two comparison notions coexist:
//!
//! * **SQL comparison** ([`Value::sql_cmp`], [`Value::sql_eq`]) — returns
//!   `None` when either side is `NULL` (three-valued logic) and compares
//!   integers and floats numerically.
//! * **Total order** (the [`Ord`] impl) — used for sorting, hashing and set
//!   operations; `NULL` sorts first, and `NaN` sorts after all other floats.
//!
//! `Eq`/`Hash` agree with the total order, and numeric values that are
//! SQL-equal (`1 = 1.0`) are also `Eq`-equal and hash identically, so hash
//! based set operations match SQL semantics.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically-typed SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL `NULL`.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
}

impl Value {
    /// Shorthand text constructor.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Is this `NULL`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
        }
    }

    /// Numeric view (ints widen to f64); `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// SQL equality: `None` if either side is `NULL`; numeric cross-type
    /// comparison (`1 = 1.0` is true); mismatched non-numeric types are
    /// simply unequal.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL ordering comparison with three-valued logic: `None` when either
    /// side is `NULL` or when the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Canonical numeric key so that `Int(1)`, `Float(1.0)` hash and compare
    /// equal: integers and integral in-range floats map to the `i64` grid.
    fn numeric_key(&self) -> Option<NumKey> {
        match self {
            Value::Int(v) => Some(NumKey::Int(*v)),
            Value::Float(v) => {
                if v.is_nan() {
                    Some(NumKey::Nan)
                } else if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v < i64::MAX as f64 {
                    Some(NumKey::Int(*v as i64))
                } else {
                    Some(NumKey::Float(v.to_bits()))
                }
            }
            _ => None,
        }
    }

    /// The constant hasher prefix every `Value::Int(_)` (and every
    /// integral in-range `Value::Float`) writes before its `i64`
    /// payload: the numeric type tag plus the integer numeric-key tag.
    /// Batch hashers clone the state after this prefix and write only
    /// `write_i64(x)` per row — `ColumnStore::for_each_hash` relies on
    /// this staying in lockstep with the `Hash` impls below.
    pub(crate) fn write_int_hash_prefix<H: Hasher>(state: &mut H) {
        state.write_u8(2);
        state.write_u8(0);
    }

    /// Constant prefix of `Value::Bool(_).hash` (payload: `write_u8(b as u8)`).
    pub(crate) fn write_bool_hash_prefix<H: Hasher>(state: &mut H) {
        state.write_u8(1);
    }

    /// Constant prefix of `Value::Text(_).hash` (payload: `str::hash`).
    pub(crate) fn write_text_hash_prefix<H: Hasher>(state: &mut H) {
        state.write_u8(3);
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
        }
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum NumKey {
    Int(i64),
    Float(u64),
    Nan,
}

impl Hash for NumKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Explicit tag bytes rather than the derived discriminant hash:
        // the batch hash loops hoist the constant `Int` prefix out of
        // the per-row loop (`Value::write_int_hash_prefix`), which
        // requires the byte sequence to be spelled here, not
        // compiler-chosen.
        match self {
            NumKey::Int(x) => {
                state.write_u8(0);
                state.write_i64(*x);
            }
            NumKey::Float(bits) => {
                state.write_u8(1);
                state.write_u64(*bits);
            }
            NumKey::Nan => state.write_u8(2),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL < booleans < numerics (by value, NaN last) < text.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) if a.rank() == 2 && b.rank() == 2 => match (a.numeric_key(), b.numeric_key()) {
                (Some(NumKey::Nan), Some(NumKey::Nan)) => Ordering::Equal,
                (Some(NumKey::Nan), _) => Ordering::Greater,
                (_, Some(NumKey::Nan)) => Ordering::Less,
                _ => a
                    .as_f64()
                    .expect("numeric")
                    .total_cmp(&b.as_f64().expect("numeric")),
            },
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Int(_) | Value::Float(_) => {
                state.write_u8(2);
                self.numeric_key().expect("numeric").hash(state);
            }
            Value::Text(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

/// A row of values.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn sql_eq_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Float(1.0)), Some(true));
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_eq!(hash_of(&Value::Int(1)), hash_of(&Value::Float(1.0)));
        assert_ne!(Value::Int(1), Value::Float(1.5));
    }

    #[test]
    fn mismatched_types_unequal_not_null() {
        assert_eq!(Value::Int(1).sql_eq(&Value::text("1")), None);
        assert_ne!(Value::Int(1), Value::text("1"));
    }

    #[test]
    fn total_order_ranks() {
        let mut vs = vec![
            Value::text("a"),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5),
            Value::Bool(false),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(false),
                Value::Bool(true),
                Value::Float(2.5),
                Value::Int(3),
                Value::text("a"),
            ]
        );
    }

    #[test]
    fn nan_is_ordered_last_and_self_equal() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(nan.cmp(&Value::Float(1e308)), Ordering::Greater);
        assert_eq!(hash_of(&nan), hash_of(&Value::Float(f64::NAN)));
    }

    #[test]
    fn nulls_equal_in_total_order_but_unknown_in_sql() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::text("x").to_string(), "x");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn sql_cmp_orders_numbers() {
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::text("b").sql_cmp(&Value::text("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Bool(true).sql_cmp(&Value::Int(1)),
            None,
            "bool vs int incomparable"
        );
    }
}
