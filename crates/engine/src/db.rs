//! The `Database` facade: SQL in, rows out.
//!
//! This is the interface shape Hippo used against PostgreSQL over JDBC —
//! the CQA layer only ever submits SQL text (envelope queries, membership
//! queries) and reads back row sets. A direct typed API is also provided
//! for bulk loading and for the conflict detector's fast paths.
//!
//! # Snapshots
//!
//! [`Database::snapshot`] freezes the current instance into a
//! [`DbSnapshot`]: a read-only, `Sync`, cheaply-cloneable handle that
//! evaluates `SELECT`s against an immutable catalog with **zero
//! locking**. The database keeps its catalog behind an [`Arc`], so
//! taking a snapshot is one reference-count bump; the first mutation
//! *after* a snapshot copies the storage once (copy-on-write via
//! [`Arc::make_mut`]) and later mutations are free again. Snapshot
//! statistics are per-snapshot atomics (shared by clones of the same
//! snapshot), never the live database's counters — which is exactly
//! what lets many prover shards hammer one snapshot concurrently while
//! the query-count bookkeeping stays exact.

use crate::bind::{bind_const_expr, bind_query, bind_table_expr, BoundQuery};
use crate::catalog::Catalog;
use crate::exec::{execute, execute_physical, execute_physical_params};
use crate::expr::{eval, EvalEnv};
use crate::optimize::optimize;
use crate::plan::{LogicalPlan, PhysicalPlan};
use crate::schema::{Column, EngineError, TableSchema};
use crate::table::TupleId;
use crate::value::{Row, Value};
use hippo_sql::{parse_statement, parse_statements, InsertSource, Statement};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// A query result: column names and rows.
    Rows(QueryResult),
    /// Rows affected by DML, or 0 for DDL.
    Count(usize),
}

/// A query result set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// The rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Statistics counters for one `Database` (queries executed, rows read).
/// Hippo's experiments report the number of membership queries sent to the
/// backend, so the backend counts every statement it executes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Queries (SELECT) executed.
    pub queries: usize,
    /// DML/DDL statements executed.
    pub statements: usize,
    /// Base-table access paths executed through an `IndexLookup`.
    pub index_probes: usize,
    /// Base-table access paths executed as sequential scans.
    pub scan_probes: usize,
    /// Column batches pushed through the vectorized engine
    /// ([`crate::column`]).
    pub batches_executed: usize,
    /// Rows evaluated batch-at-a-time by the vectorized engine.
    pub vectorized_rows: usize,
    /// Rows streamed through the row-at-a-time physical operators
    /// (vectorized-ineligible shapes, or columnar execution disabled).
    pub rowmode_rows: usize,
}

impl fmt::Display for DbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queries={} statements={} index_probes={} scan_probes={} \
             batches_executed={} vectorized_rows={} rowmode_rows={}",
            self.queries,
            self.statements,
            self.index_probes,
            self.scan_probes,
            self.batches_executed,
            self.vectorized_rows,
            self.rowmode_rows
        )
    }
}

/// An in-memory SQL database.
///
/// The catalog lives behind an [`Arc`] so [`Database::snapshot`] is a
/// reference-count bump; mutation goes through [`Arc::make_mut`], which
/// copies the storage only when a snapshot taken earlier is still alive
/// (copy-on-write — an unshared database mutates in place as before).
#[derive(Debug, Default)]
pub struct Database {
    catalog: Arc<Catalog>,
    stats: std::cell::Cell<DbStats>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Rebuild a live database from a frozen catalog (e.g. one cloned
    /// out of a [`DbSnapshot`]). The chaos/oracle harnesses use this to
    /// replay a published epoch's exact instance through a fresh,
    /// serial system and compare answers bit-for-bit.
    pub fn from_catalog(catalog: Catalog) -> Database {
        Database {
            catalog: Arc::new(catalog),
            stats: Default::default(),
        }
    }

    /// Read access to the catalog (used by conflict detection fast paths).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog. Copy-on-write: if a
    /// [`DbSnapshot`] still shares the storage, the catalog is cloned
    /// once here; otherwise this is a plain borrow.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        Arc::make_mut(&mut self.catalog)
    }

    /// Freeze the current instance into a read-only, `Sync`,
    /// cheaply-cloneable snapshot. Cost: one `Arc` clone — no row is
    /// copied now; the *next* mutation of this database pays a one-time
    /// catalog copy instead (copy-on-write).
    pub fn snapshot(&self) -> DbSnapshot {
        DbSnapshot {
            catalog: Arc::clone(&self.catalog),
            stats: Arc::new(SnapshotStats::default()),
        }
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> DbStats {
        self.stats.get()
    }

    /// Reset statistics counters.
    pub fn reset_stats(&self) {
        self.stats.set(DbStats::default());
    }

    fn bump_queries(&self) {
        let mut s = self.stats.get();
        s.queries += 1;
        self.stats.set(s);
    }

    fn bump_statements(&self) {
        let mut s = self.stats.get();
        s.statements += 1;
        self.stats.set(s);
    }

    fn bump_probes(&self, index_probes: usize, scan_probes: usize) {
        let mut s = self.stats.get();
        s.index_probes += index_probes;
        s.scan_probes += scan_probes;
        self.stats.set(s);
    }

    /// Fold the engine-choice counters one executed query accumulated
    /// in its [`EvalEnv`] into the database statistics. Folded even
    /// when the execution errored: the counters describe work actually
    /// performed, which happens before a budget trip or type error.
    fn bump_exec_counters(&self, env: &EvalEnv<'_>) {
        let mut s = self.stats.get();
        s.batches_executed += env.vec_batches as usize;
        s.vectorized_rows += env.vec_rows as usize;
        s.rowmode_rows += env.rowmode_rows as usize;
        self.stats.set(s);
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ExecResult, EngineError> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a `;`-separated script; returns the last statement's result.
    pub fn execute_script(&mut self, sql: &str) -> Result<ExecResult, EngineError> {
        let stmts = parse_statements(sql)?;
        let mut last = ExecResult::Count(0);
        for stmt in &stmts {
            last = self.execute_statement(stmt)?;
        }
        Ok(last)
    }

    /// Run a query (read-only) and return its result set.
    pub fn query(&self, sql: &str) -> Result<QueryResult, EngineError> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(q) = stmt else {
            return Err(EngineError::new("expected a SELECT statement"));
        };
        self.run_query_ast(&q)
    }

    /// Run an already-parsed query: bind, optimize, lower to a physical
    /// plan (access-path selection picks hash indexes where they cover
    /// the predicate) and execute.
    pub fn run_query_ast(&self, q: &hippo_sql::Query) -> Result<QueryResult, EngineError> {
        self.run_query_ast_governed(q, None, "engine")
    }

    /// [`Database::query`] under an optional resource [`crate::budget::Budget`]:
    /// the executor charges rows against it and unwinds with a
    /// structured `Budget`/`Cancelled` error (reported as `stage`) when
    /// it is exhausted. `budget = None` is exactly the ungoverned call.
    pub fn query_governed(
        &self,
        sql: &str,
        budget: Option<&crate::budget::Budget>,
        stage: &'static str,
    ) -> Result<QueryResult, EngineError> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(q) = stmt else {
            return Err(EngineError::new("expected a SELECT statement"));
        };
        self.run_query_ast_governed(&q, budget, stage)
    }

    /// Governed core of [`Database::run_query_ast`].
    pub fn run_query_ast_governed(
        &self,
        q: &hippo_sql::Query,
        budget: Option<&crate::budget::Budget>,
        stage: &'static str,
    ) -> Result<QueryResult, EngineError> {
        self.bump_queries();
        let bound = bind_query(&self.catalog, q)?;
        let plan = optimize(bound.plan, &self.catalog)?;
        let plan = crate::optimize::physicalize(plan, &self.catalog);
        let (idx, scan) = plan.access_paths();
        self.bump_probes(idx, scan);
        let mut env = EvalEnv::new(&self.catalog);
        if let Some(b) = budget {
            env.set_budget(b, stage);
        }
        let rows = execute_physical(&plan, &mut env);
        env.flush_budget();
        self.bump_exec_counters(&env);
        Ok(QueryResult {
            columns: bound.columns,
            rows: rows?,
        })
    }

    /// Plan a query without executing it (diagnostics / tests). Returns
    /// the **optimized logical** plan — the input of physical lowering
    /// and the reference the differential tests execute.
    pub fn plan(&self, sql: &str) -> Result<BoundQuery, EngineError> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(q) = stmt else {
            return Err(EngineError::new("expected a SELECT statement"));
        };
        let bound = bind_query(&self.catalog, &q)?;
        let plan = optimize(bound.plan, &self.catalog)?;
        Ok(BoundQuery {
            plan,
            columns: bound.columns,
        })
    }

    /// The physical plan a query would execute as (diagnostics / tests).
    pub fn physical_plan(&self, sql: &str) -> Result<PhysicalPlan, EngineError> {
        let bound = self.plan(sql)?;
        Ok(crate::optimize::physicalize(bound.plan, &self.catalog))
    }

    /// `EXPLAIN`-style rendering of the physical plan a query would
    /// execute as: one operator per line, children indented — the
    /// chosen access path (`IndexLookup` vs `SeqScan`) is visible at
    /// the leaves, and a trailing `execution:` line reports whether the
    /// vectorized engine ([`crate::column`]) or the row-at-a-time
    /// operators would run the plan. Also reachable as a real SQL
    /// statement: `EXPLAIN SELECT …` through [`Database::execute`].
    pub fn explain(&self, sql: &str) -> Result<String, EngineError> {
        let plan = self.physical_plan(sql)?;
        Ok(render_explain(&plan, &self.catalog))
    }

    fn execute_statement(&mut self, stmt: &Statement) -> Result<ExecResult, EngineError> {
        match stmt {
            Statement::Select(q) => Ok(ExecResult::Rows(self.run_query_ast(q)?)),
            Statement::Explain(q) => {
                // Plans but never executes: no query/probe counters move,
                // mirroring the diagnostic `Database::explain` API.
                let bound = bind_query(&self.catalog, q)?;
                let plan = optimize(bound.plan, &self.catalog)?;
                let plan = crate::optimize::physicalize(plan, &self.catalog);
                Ok(ExecResult::Rows(explain_result(&plan, &self.catalog)))
            }
            Statement::CreateTable(ct) => {
                self.bump_statements();
                if ct.if_not_exists && self.catalog.contains(&ct.name) {
                    return Ok(ExecResult::Count(0));
                }
                let columns: Vec<Column> = ct
                    .columns
                    .iter()
                    .map(|c| Column {
                        name: c.name.clone(),
                        ty: c.ty.into(),
                        not_null: c.not_null,
                    })
                    .collect();
                let pk: Vec<&str> = ct.primary_key.iter().map(String::as_str).collect();
                let schema = TableSchema::new(ct.name.clone(), columns, &pk)?;
                self.catalog_mut().create_table(schema)?;
                Ok(ExecResult::Count(0))
            }
            Statement::CreateIndex(ci) => {
                self.bump_statements();
                // Resolve and decide through the shared reference first:
                // the no-op paths (IF NOT EXISTS, identical re-create)
                // must not trigger a copy-on-write catalog clone when a
                // snapshot is alive.
                let cols: Vec<usize> = {
                    let t = self.catalog.table(&ci.table)?;
                    let cols: Vec<usize> = ci
                        .columns
                        .iter()
                        .map(|c| {
                            t.schema.column_index(c).ok_or_else(|| {
                                EngineError::new(format!(
                                    "unknown column {c:?} in CREATE INDEX on {:?}",
                                    ci.table
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    match t.named_index(&ci.name) {
                        Some(existing) if ci.if_not_exists || *existing == cols => {
                            return Ok(ExecResult::Count(0));
                        }
                        Some(_) => {
                            return Err(EngineError::new(format!(
                                "index {:?} already exists on table {:?} with different columns",
                                ci.name, ci.table
                            )));
                        }
                        None => {}
                    }
                    cols
                };
                let t = self.catalog_mut().table_mut(&ci.table)?;
                t.create_named_index(ci.name.clone(), cols)?;
                Ok(ExecResult::Count(0))
            }
            Statement::DropTable { name, if_exists } => {
                self.bump_statements();
                self.catalog_mut().drop_table(name, *if_exists)?;
                Ok(ExecResult::Count(0))
            }
            Statement::Insert(ins) => {
                self.bump_statements();
                let rows: Vec<Row> = match &ins.source {
                    InsertSource::Values(value_rows) => {
                        let mut out = Vec::with_capacity(value_rows.len());
                        for vr in value_rows {
                            let row: Row = vr
                                .iter()
                                .map(|e| {
                                    let bound = bind_const_expr(&self.catalog, e)?;
                                    let mut env = EvalEnv::new(&self.catalog);
                                    eval(&bound, &[], &mut env)
                                })
                                .collect::<Result<_, _>>()?;
                            out.push(row);
                        }
                        out
                    }
                    InsertSource::Query(q) => self.run_query_ast(q)?.rows,
                };
                let n = self.insert_rows_ordered(&ins.table, &ins.columns, rows)?;
                Ok(ExecResult::Count(n))
            }
            Statement::Delete { table, filter } => {
                self.bump_statements();
                let pred = match filter {
                    Some(f) => Some(bind_table_expr(&self.catalog, table, f)?),
                    None => None,
                };
                // Two-phase: find ids, then delete (no iterator invalidation).
                let ids: Vec<TupleId> = {
                    let t = self.catalog.table(table)?;
                    let mut ids = Vec::new();
                    for (id, row) in t.iter() {
                        let keep = match &pred {
                            Some(p) => {
                                let mut env = EvalEnv::new(&self.catalog);
                                eval(p, row, &mut env)? == Value::Bool(true)
                            }
                            None => true,
                        };
                        if keep {
                            ids.push(id);
                        }
                    }
                    ids
                };
                let t = self.catalog_mut().table_mut(table)?;
                let mut n = 0;
                for id in ids {
                    if t.delete(id) {
                        n += 1;
                    }
                }
                Ok(ExecResult::Count(n))
            }
            Statement::Update {
                table,
                assignments,
                filter,
            } => {
                self.bump_statements();
                let pred = match filter {
                    Some(f) => Some(bind_table_expr(&self.catalog, table, f)?),
                    None => None,
                };
                let mut bound_assignments = Vec::with_capacity(assignments.len());
                {
                    let t = self.catalog.table(table)?;
                    for (col, e) in assignments {
                        let idx = t.schema.column_index(col).ok_or_else(|| {
                            EngineError::new(format!("unknown column {col:?} in UPDATE"))
                        })?;
                        bound_assignments.push((idx, bind_table_expr(&self.catalog, table, e)?));
                    }
                }
                let updates: Vec<(TupleId, Row)> = {
                    let t = self.catalog.table(table)?;
                    let mut updates = Vec::new();
                    for (id, row) in t.iter() {
                        let hit = match &pred {
                            Some(p) => {
                                let mut env = EvalEnv::new(&self.catalog);
                                eval(p, row, &mut env)? == Value::Bool(true)
                            }
                            None => true,
                        };
                        if hit {
                            let mut new_row = row.clone();
                            for (idx, e) in &bound_assignments {
                                let mut env = EvalEnv::new(&self.catalog);
                                new_row[*idx] = eval(e, row, &mut env)?;
                            }
                            updates.push((id, new_row));
                        }
                    }
                    updates
                };
                let n = updates.len();
                let t = self.catalog_mut().table_mut(table)?;
                for (id, new_row) in updates {
                    t.update(id, new_row)?;
                }
                Ok(ExecResult::Count(n))
            }
        }
    }

    /// Bulk insert with an optional explicit column order (empty = table
    /// order). Used by `INSERT` and by workload generators.
    pub fn insert_rows_ordered(
        &mut self,
        table: &str,
        columns: &[String],
        rows: Vec<Row>,
    ) -> Result<usize, EngineError> {
        let t = self.catalog_mut().table_mut(table)?;
        let perm: Option<Vec<usize>> = if columns.is_empty() {
            None
        } else {
            if columns.len() != t.schema.arity() {
                return Err(EngineError::new(format!(
                    "INSERT column list must cover all {} columns of {:?}",
                    t.schema.arity(),
                    table
                )));
            }
            let mut perm = vec![usize::MAX; t.schema.arity()];
            for (i, c) in columns.iter().enumerate() {
                let idx = t
                    .schema
                    .column_index(c)
                    .ok_or_else(|| EngineError::new(format!("unknown column {c:?} in INSERT")))?;
                perm[idx] = i;
            }
            if perm.contains(&usize::MAX) {
                return Err(EngineError::new("INSERT column list misses a column"));
            }
            Some(perm)
        };
        let mut n = 0;
        for row in rows {
            let row = match &perm {
                None => row,
                Some(perm) => {
                    if row.len() != perm.len() {
                        return Err(EngineError::new("INSERT row arity mismatch"));
                    }
                    perm.iter().map(|&i| row[i].clone()).collect()
                }
            };
            t.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Bulk insert in table order.
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Row>) -> Result<usize, EngineError> {
        self.insert_rows_ordered(table, &[], rows)
    }

    /// Evaluate a logical plan that was produced by [`Database::plan`]
    /// through the **reference executor** (no physical lowering, no
    /// index access paths). The differential tests run this against
    /// [`Database::query`] to check the optimized path row-for-row.
    pub fn run_plan(&self, plan: &LogicalPlan) -> Result<Vec<Row>, EngineError> {
        self.bump_queries();
        let mut env = EvalEnv::new(&self.catalog);
        execute(plan, &mut env)
    }
}

/// Render a physical plan `EXPLAIN`-style: the operator tree (one line
/// per operator, children indented) followed by an `execution:` line
/// naming the engine that would run it — `vectorized` when columnar
/// execution is enabled and [`crate::column::plan_uses_vectorized`]
/// accepts the plan, `rowmode` otherwise.
fn render_explain(plan: &PhysicalPlan, catalog: &Catalog) -> String {
    let engine = if crate::column::columnar_enabled()
        && crate::column::plan_uses_vectorized(plan, catalog)
    {
        "vectorized"
    } else {
        "rowmode"
    };
    format!("{plan}execution: {engine}\n")
}

/// The `EXPLAIN <query>` statement's result set: one `plan` column,
/// one row per rendered line (access paths at the leaves, the
/// `execution:` engine line last).
fn explain_result(plan: &PhysicalPlan, catalog: &Catalog) -> QueryResult {
    QueryResult {
        columns: vec!["plan".to_string()],
        rows: render_explain(plan, catalog)
            .lines()
            .map(|l| vec![Value::text(l)])
            .collect(),
    }
}

/// Atomic statistics of one snapshot lineage (shared by clones).
#[derive(Debug, Default)]
struct SnapshotStats {
    queries: AtomicUsize,
    index_probes: AtomicUsize,
    scan_probes: AtomicUsize,
    batches_executed: AtomicUsize,
    vectorized_rows: AtomicUsize,
    rowmode_rows: AtomicUsize,
}

/// A point-in-time copy of a snapshot lineage's statistics (see
/// [`DbSnapshot::stats`]): queries evaluated and how their base-table
/// access paths executed — `index_probes` counts `IndexLookup` sources,
/// `scan_probes` sequential scans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStatsView {
    /// `SELECT`s evaluated against this snapshot lineage (all clones).
    pub queries: usize,
    /// Base-table access paths executed through an `IndexLookup`.
    pub index_probes: usize,
    /// Base-table access paths executed as sequential scans.
    pub scan_probes: usize,
    /// Column batches pushed through the vectorized engine. Prepared
    /// probes ([`DbSnapshot::run_prepared`]) are deliberately not
    /// profiled per-row — they are sub-microsecond and counted by the
    /// `queries` / probe counters alone.
    pub batches_executed: usize,
    /// Rows evaluated batch-at-a-time by the vectorized engine.
    pub vectorized_rows: usize,
    /// Rows streamed through the row-at-a-time physical operators.
    pub rowmode_rows: usize,
}

impl fmt::Display for SnapshotStatsView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queries={} index_probes={} scan_probes={} \
             batches_executed={} vectorized_rows={} rowmode_rows={}",
            self.queries,
            self.index_probes,
            self.scan_probes,
            self.batches_executed,
            self.vectorized_rows,
            self.rowmode_rows
        )
    }
}

/// A read-only, `Sync`, cheaply-cloneable frozen view of a database.
///
/// Produced by [`Database::snapshot`]. The catalog is immutable and
/// `Arc`-shared — later mutations of the originating database
/// copy-on-write their own storage and never show through here — so any
/// number of threads can evaluate `SELECT`s against one snapshot
/// concurrently with **zero locking** on the read path (the only shared
/// mutable state is the relaxed query counter). Cloning a snapshot is
/// two reference-count bumps; clones share the same counter.
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    catalog: Arc<Catalog>,
    stats: Arc<SnapshotStats>,
}

impl DbSnapshot {
    /// Read access to the frozen catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// `SELECT` queries evaluated against this snapshot lineage so far
    /// (summed over all clones).
    pub fn queries_executed(&self) -> usize {
        self.stats.queries.load(Ordering::Relaxed)
    }

    /// This snapshot lineage's statistics so far (summed over all
    /// clones): queries plus the `index_probes` / `scan_probes` split
    /// of their access paths.
    pub fn stats(&self) -> SnapshotStatsView {
        SnapshotStatsView {
            queries: self.stats.queries.load(Ordering::Relaxed),
            index_probes: self.stats.index_probes.load(Ordering::Relaxed),
            scan_probes: self.stats.scan_probes.load(Ordering::Relaxed),
            batches_executed: self.stats.batches_executed.load(Ordering::Relaxed),
            vectorized_rows: self.stats.vectorized_rows.load(Ordering::Relaxed),
            rowmode_rows: self.stats.rowmode_rows.load(Ordering::Relaxed),
        }
    }

    fn bump_probes(&self, index_probes: usize, scan_probes: usize) {
        if index_probes > 0 {
            self.stats
                .index_probes
                .fetch_add(index_probes, Ordering::Relaxed);
        }
        if scan_probes > 0 {
            self.stats
                .scan_probes
                .fetch_add(scan_probes, Ordering::Relaxed);
        }
    }

    /// Fold one executed query's engine-choice counters (see
    /// [`Database::bump_exec_counters`]); relaxed adds, zero skipped to
    /// avoid touching the shared cache line for counters that did not
    /// move.
    fn bump_exec_counters(&self, env: &EvalEnv<'_>) {
        if env.vec_batches > 0 {
            self.stats
                .batches_executed
                .fetch_add(env.vec_batches as usize, Ordering::Relaxed);
        }
        if env.vec_rows > 0 {
            self.stats
                .vectorized_rows
                .fetch_add(env.vec_rows as usize, Ordering::Relaxed);
        }
        if env.rowmode_rows > 0 {
            self.stats
                .rowmode_rows
                .fetch_add(env.rowmode_rows as usize, Ordering::Relaxed);
        }
    }

    /// Run a query (read-only) and return its result set.
    pub fn query(&self, sql: &str) -> Result<QueryResult, EngineError> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(q) = stmt else {
            return Err(EngineError::new("expected a SELECT statement"));
        };
        self.run_query_ast(&q)
    }

    /// Run an already-parsed query through the physical executor.
    pub fn run_query_ast(&self, q: &hippo_sql::Query) -> Result<QueryResult, EngineError> {
        self.run_query_ast_governed(q, None, "engine")
    }

    /// [`DbSnapshot::query`] under an optional resource
    /// [`crate::budget::Budget`] (see [`Database::query_governed`]).
    pub fn query_governed(
        &self,
        sql: &str,
        budget: Option<&crate::budget::Budget>,
        stage: &'static str,
    ) -> Result<QueryResult, EngineError> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(q) = stmt else {
            return Err(EngineError::new("expected a SELECT statement"));
        };
        self.run_query_ast_governed(&q, budget, stage)
    }

    /// Governed core of [`DbSnapshot::run_query_ast`].
    pub fn run_query_ast_governed(
        &self,
        q: &hippo_sql::Query,
        budget: Option<&crate::budget::Budget>,
        stage: &'static str,
    ) -> Result<QueryResult, EngineError> {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let bound = bind_query(&self.catalog, q)?;
        let plan = optimize(bound.plan, &self.catalog)?;
        let plan = crate::optimize::physicalize(plan, &self.catalog);
        let (idx, scan) = plan.access_paths();
        self.bump_probes(idx, scan);
        let mut env = EvalEnv::new(&self.catalog);
        if let Some(b) = budget {
            env.set_budget(b, stage);
        }
        let rows = execute_physical(&plan, &mut env);
        env.flush_budget();
        self.bump_exec_counters(&env);
        Ok(QueryResult {
            columns: bound.columns,
            rows: rows?,
        })
    }

    /// Plan a query against the frozen catalog without executing it
    /// (the optimized **logical** plan; see [`Database::plan`]).
    pub fn plan(&self, sql: &str) -> Result<BoundQuery, EngineError> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(q) = stmt else {
            return Err(EngineError::new("expected a SELECT statement"));
        };
        let bound = bind_query(&self.catalog, &q)?;
        let plan = optimize(bound.plan, &self.catalog)?;
        Ok(BoundQuery {
            plan,
            columns: bound.columns,
        })
    }

    /// The physical plan a query would execute as against this
    /// snapshot's catalog.
    pub fn physical_plan(&self, sql: &str) -> Result<PhysicalPlan, EngineError> {
        let bound = self.plan(sql)?;
        Ok(crate::optimize::physicalize(bound.plan, &self.catalog))
    }

    /// `EXPLAIN`-style rendering (see [`Database::explain`]).
    pub fn explain(&self, sql: &str) -> Result<String, EngineError> {
        let plan = self.physical_plan(sql)?;
        Ok(render_explain(&plan, &self.catalog))
    }

    /// Evaluate a logical plan that was bound against this snapshot's
    /// catalog through the reference executor.
    pub fn run_plan(&self, plan: &LogicalPlan) -> Result<Vec<Row>, EngineError> {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        crate::exec::execute_read_only(plan, &self.catalog)
    }

    /// Re-execute a **prepared physical plan** with the given parameter
    /// bindings (values for the plan's `Param` placeholders, which must
    /// match the probed columns' types or be `NULL`). This is the
    /// base-mode membership hot path: the probe is compiled to a
    /// physical plan once — access path and all — and this call is a
    /// bucket probe plus a bounded pipeline, with no SQL text, parsing,
    /// binding or optimization anywhere.
    ///
    /// Statistics note: this bumps the shared snapshot counters per
    /// call. A worker issuing thousands of sub-microsecond probes from
    /// many threads should instead execute through
    /// [`crate::exec::execute_physical_params`] against
    /// [`DbSnapshot::catalog`] directly, count locally, and fold its
    /// totals in with one [`DbSnapshot::record_prepared`] at the end —
    /// the prover shards do exactly that, so the accounting stays exact
    /// without per-probe contention on the stats cache line.
    pub fn run_prepared(
        &self,
        plan: &PhysicalPlan,
        params: &[Value],
    ) -> Result<Vec<Row>, EngineError> {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let (idx, scan) = plan.access_paths();
        self.bump_probes(idx, scan);
        execute_physical_params(plan, &self.catalog, params)
    }

    /// Fold a batch of locally-counted prepared executions into this
    /// snapshot lineage's statistics (see [`DbSnapshot::run_prepared`]).
    pub fn record_prepared(&self, queries: usize, index_probes: usize, scan_probes: usize) {
        if queries > 0 {
            self.stats.queries.fetch_add(queries, Ordering::Relaxed);
        }
        self.bump_probes(index_probes, scan_probes);
    }
}

// The whole point of the snapshot: workers may share one `&DbSnapshot`
// (or clone it) across threads. Compile-time proof, not a convention.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<DbSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE emp (name TEXT NOT NULL, dept TEXT, salary INT)")
            .unwrap();
        db.execute(
            "INSERT INTO emp VALUES ('ann', 'cs', 100), ('bob', 'cs', 200), ('cyd', 'ee', 300)",
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_select() {
        let db = db();
        let r = db
            .query("SELECT name FROM emp WHERE salary >= 200 ORDER BY name")
            .unwrap();
        assert_eq!(r.columns, vec!["name"]);
        assert_eq!(
            r.rows,
            vec![vec![Value::text("bob")], vec![Value::text("cyd")]]
        );
    }

    #[test]
    fn join_query() {
        let mut db = db();
        db.execute("CREATE TABLE dept (dname TEXT, budget INT)")
            .unwrap();
        db.execute("INSERT INTO dept VALUES ('cs', 1000), ('ee', 2000)")
            .unwrap();
        let r = db
            .query(
                "SELECT e.name, d.budget FROM emp e, dept d WHERE e.dept = d.dname AND d.budget > 1500",
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::text("cyd"), Value::Int(2000)]]);
    }

    #[test]
    fn union_except_intersect() {
        let db = db();
        let r = db
            .query("SELECT name FROM emp WHERE dept = 'cs' UNION SELECT name FROM emp WHERE salary > 250")
            .unwrap();
        assert_eq!(r.len(), 3);
        let r = db
            .query("SELECT name FROM emp EXCEPT SELECT name FROM emp WHERE dept = 'cs'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::text("cyd")]]);
        let r = db
            .query("SELECT name FROM emp INTERSECT SELECT name FROM emp WHERE salary < 150")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::text("ann")]]);
    }

    #[test]
    fn correlated_not_exists() {
        let db = db();
        // employees with the max salary of their department
        let r = db
            .query(
                "SELECT e.name FROM emp e WHERE NOT EXISTS \
                 (SELECT * FROM emp f WHERE f.dept = e.dept AND f.salary > e.salary) \
                 ORDER BY e.name",
            )
            .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![Value::text("bob")], vec![Value::text("cyd")]]
        );
    }

    #[test]
    fn scalar_subquery_and_in() {
        let db = db();
        let r = db
            .query("SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::text("cyd")]]);
        let r = db
            .query("SELECT name FROM emp WHERE dept IN (SELECT dept FROM emp WHERE salary > 250)")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::text("cyd")]]);
    }

    #[test]
    fn aggregates_group_having() {
        let db = db();
        let r = db
            .query(
                "SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept \
                 HAVING COUNT(*) > 1 ORDER BY dept",
            )
            .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![Value::text("cs"), Value::Int(2), Value::Int(300)]]
        );
    }

    #[test]
    fn dml_roundtrip() {
        let mut db = db();
        let ExecResult::Count(n) = db
            .execute("UPDATE emp SET salary = 999 WHERE dept = 'cs'")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(n, 2);
        let ExecResult::Count(n) = db.execute("DELETE FROM emp WHERE salary = 999").unwrap() else {
            panic!()
        };
        assert_eq!(n, 2);
        let r = db.query("SELECT COUNT(*) FROM emp").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn insert_with_column_order() {
        let mut db = db();
        db.execute("INSERT INTO emp (salary, name, dept) VALUES (50, 'eve', 'me')")
            .unwrap();
        let r = db
            .query("SELECT salary FROM emp WHERE name = 'eve'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(50)]]);
    }

    #[test]
    fn insert_partial_columns_rejected() {
        let mut db = db();
        let err = db
            .execute("INSERT INTO emp (name) VALUES ('x')")
            .unwrap_err();
        assert!(err.message.contains("cover all"), "{err}");
    }

    #[test]
    fn not_null_enforced_via_sql() {
        let mut db = db();
        assert!(db
            .execute("INSERT INTO emp VALUES (NULL, 'cs', 1)")
            .is_err());
    }

    #[test]
    fn script_execution() {
        let mut db = Database::new();
        let r = db
            .execute_script(
                "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2); SELECT COUNT(*) FROM t;",
            )
            .unwrap();
        assert_eq!(
            r,
            ExecResult::Rows(QueryResult {
                columns: vec!["count".into()],
                rows: vec![vec![Value::Int(2)]],
            })
        );
    }

    #[test]
    fn stats_count_queries() {
        let db = db();
        db.reset_stats();
        db.query("SELECT * FROM emp").unwrap();
        db.query("SELECT * FROM emp").unwrap();
        assert_eq!(db.stats().queries, 2);
    }

    #[test]
    fn insert_select_moves_rows() {
        let mut db = db();
        db.execute("CREATE TABLE arch (name TEXT, dept TEXT, salary INT)")
            .unwrap();
        db.execute("INSERT INTO arch SELECT * FROM emp WHERE salary > 150")
            .unwrap();
        let r = db.query("SELECT COUNT(*) FROM arch").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn select_without_from_works() {
        let db = Database::new();
        let r = db.query("SELECT 1 + 2, 'x' || 'y'").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(3), Value::text("xy")]]);
    }

    #[test]
    fn error_on_unknown_table() {
        let db = Database::new();
        assert!(db.query("SELECT * FROM missing").is_err());
    }

    #[test]
    fn distinct_and_limit() {
        let db = db();
        let r = db
            .query("SELECT DISTINCT dept FROM emp ORDER BY dept LIMIT 1")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::text("cs")]]);
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutations() {
        let mut db = db();
        let snap = db.snapshot();
        db.execute("INSERT INTO emp VALUES ('eve', 'cs', 999)")
            .unwrap();
        db.execute("UPDATE emp SET salary = 0 WHERE name = 'ann'")
            .unwrap();
        db.execute("DROP TABLE emp").unwrap();
        // The snapshot still sees the original three rows untouched.
        let r = snap
            .query("SELECT name, salary FROM emp ORDER BY name")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0], vec![Value::text("ann"), Value::Int(100)]);
        // And the live database sees its own changes.
        assert!(db.query("SELECT * FROM emp").is_err(), "table dropped");
    }

    #[test]
    fn snapshot_matches_live_database() {
        let db = db();
        let snap = db.snapshot();
        for q in [
            "SELECT * FROM emp ORDER BY name",
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept",
            "SELECT name FROM emp WHERE NOT EXISTS \
             (SELECT * FROM emp f WHERE f.dept = emp.dept AND f.salary > emp.salary)",
        ] {
            assert_eq!(snap.query(q).unwrap(), db.query(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn snapshot_counts_queries_without_touching_db_stats() {
        let db = db();
        db.reset_stats();
        let snap = db.snapshot();
        let clone = snap.clone();
        snap.query("SELECT * FROM emp").unwrap();
        clone.query("SELECT * FROM emp").unwrap();
        assert_eq!(snap.queries_executed(), 2, "clones share the counter");
        assert_eq!(db.stats().queries, 0, "live stats untouched");
    }

    #[test]
    fn snapshot_is_usable_from_many_threads() {
        let mut db = db();
        let snap = db.snapshot();
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let snap = &snap;
                    s.spawn(move || snap.query("SELECT COUNT(*) FROM emp").unwrap().rows)
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for r in results {
            assert_eq!(r, vec![vec![Value::Int(3)]]);
        }
        // Mutating afterwards copies-on-write; the snapshot is unaffected.
        db.execute("DELETE FROM emp").unwrap();
        assert_eq!(
            snap.query("SELECT COUNT(*) FROM emp").unwrap().rows,
            vec![vec![Value::Int(3)]]
        );
    }

    #[test]
    fn snapshot_rejects_dml() {
        let db = db();
        let snap = db.snapshot();
        assert!(snap.query("DELETE FROM emp").is_err());
        assert!(snap.query("INSERT INTO emp VALUES ('x', 'y', 1)").is_err());
    }

    #[test]
    fn create_index_is_used_by_the_optimizer() {
        let mut db = db();
        // No index yet: the probe scans.
        let plan = db
            .explain("SELECT 1 FROM emp WHERE name = 'ann' LIMIT 1")
            .unwrap();
        assert!(plan.contains("SeqScan"), "{plan}");
        db.execute("CREATE INDEX emp_name ON emp (name)").unwrap();
        let plan = db
            .explain("SELECT 1 FROM emp WHERE name = 'ann' LIMIT 1")
            .unwrap();
        assert!(plan.contains("IndexLookup emp index=(#0)"), "{plan}");
        let r = db
            .query("SELECT salary FROM emp WHERE name = 'ann'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(100)]]);
        // IF NOT EXISTS tolerates re-creation; plain re-create errors.
        db.execute("CREATE INDEX IF NOT EXISTS emp_name ON emp (name)")
            .unwrap();
        assert!(db.execute("CREATE INDEX emp_name ON emp (dept)").is_err());
        assert!(db.execute("CREATE INDEX x ON emp (nope)").is_err());
    }

    #[test]
    fn explain_statement_reports_plan_and_engine() {
        let _g = crate::column::override_guard();
        let mut db = db();
        // EXPLAIN is a real statement: one `plan` column, one row per
        // rendered line, never executing the query (no counters move).
        db.reset_stats();
        let r = db
            .execute("EXPLAIN SELECT name FROM emp WHERE salary >= 200")
            .unwrap();
        let ExecResult::Rows(r) = r else {
            panic!("EXPLAIN must return rows, got {r:?}");
        };
        assert_eq!(r.columns, vec!["plan"]);
        let text: Vec<String> = r
            .rows
            .iter()
            .map(|row| match &row[0] {
                Value::Text(s) => s.to_string(),
                other => panic!("plan lines are text, got {other:?}"),
            })
            .collect();
        assert!(text.iter().any(|l| l.contains("SeqScan")), "{text:?}");
        let engine = text.last().unwrap();
        assert!(
            engine == "execution: vectorized" || engine == "execution: rowmode",
            "{engine}"
        );
        assert_eq!(db.stats(), DbStats::default(), "EXPLAIN never executes");
        // The string API agrees line-for-line with the statement form.
        let api = db
            .explain("SELECT name FROM emp WHERE salary >= 200")
            .unwrap();
        assert_eq!(api.lines().collect::<Vec<_>>(), text);
        // The engine choice tracks the columnar toggle.
        crate::column::set_columnar_override(Some(false));
        let off = db
            .explain("SELECT name FROM emp WHERE salary >= 200")
            .unwrap();
        crate::column::set_columnar_override(None);
        assert!(off.ends_with("execution: rowmode\n"), "{off}");
    }

    #[test]
    fn primary_key_auto_index_serves_point_queries() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT, v INT, PRIMARY KEY (k))")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (1, 30)")
            .unwrap();
        let plan = db.explain("SELECT v FROM t WHERE k = 1").unwrap();
        assert!(plan.contains("IndexLookup"), "{plan}");
        // Duplicate keys are allowed (the CQA setting violates keys);
        // rows come back in slot order, exactly like a scan.
        let r = db.query("SELECT v FROM t WHERE k = 1").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(10)], vec![Value::Int(30)]]);
        db.reset_stats();
        db.query("SELECT v FROM t WHERE k = 2").unwrap();
        db.query("SELECT v FROM t WHERE v = 20").unwrap();
        let s = db.stats();
        assert_eq!((s.index_probes, s.scan_probes), (1, 1));
        // Four rows touched in total (1 via the index probe, 3 by the
        // scan), each counted by exactly one engine — which engine
        // depends on whether columnar execution is enabled, so the
        // split itself is asserted as an invariant, not a constant.
        assert_eq!(s.vectorized_rows + s.rowmode_rows, 4);
        assert_eq!(
            format!("{s}"),
            format!(
                "queries=2 statements=0 index_probes=1 scan_probes=1 \
                 batches_executed={} vectorized_rows={} rowmode_rows={}",
                s.batches_executed, s.vectorized_rows, s.rowmode_rows
            )
        );
    }

    #[test]
    fn index_results_match_scan_results_after_dml() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT, v INT, PRIMARY KEY (k))")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (1, 30), (3, 40)")
            .unwrap();
        db.execute("DELETE FROM t WHERE v = 10").unwrap();
        db.execute("UPDATE t SET k = 1 WHERE v = 40").unwrap();
        for probe in ["SELECT * FROM t WHERE k = 1", "SELECT * FROM t WHERE k = 9"] {
            let got = db.query(probe).unwrap().rows;
            let reference = db.run_plan(&db.plan(probe).unwrap().plan).unwrap();
            assert_eq!(got, reference, "{probe}");
        }
    }

    #[test]
    fn snapshot_prepared_probe_hits_the_index() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT, v INT, PRIMARY KEY (k))")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
        let snap = db.snapshot();
        // Compile the probe once with a parameter placeholder…
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(LogicalPlan::Scan { table: "t".into() }),
                predicate: crate::expr::BoundExpr::Binary {
                    op: hippo_sql::BinaryOp::Eq,
                    left: Box::new(crate::expr::BoundExpr::Column(0)),
                    right: Box::new(crate::expr::BoundExpr::Param(0)),
                },
            }),
            limit: Some(1),
            offset: 0,
        };
        let phys = crate::optimize::physicalize(plan, snap.catalog());
        assert!(phys.uses_index(), "{phys}");
        // …and re-execute it per binding.
        assert!(!snap
            .run_prepared(&phys, &[Value::Int(1)])
            .unwrap()
            .is_empty());
        assert!(snap
            .run_prepared(&phys, &[Value::Int(9)])
            .unwrap()
            .is_empty());
        assert!(
            snap.run_prepared(&phys, &[Value::Null]).unwrap().is_empty(),
            "NULL key matches nothing"
        );
        // A mis-typed binding violates the Param contract and errors
        // loudly instead of silently missing the bucket.
        let err = snap.run_prepared(&phys, &[Value::text("1")]).unwrap_err();
        assert!(err.message.contains("bound a text value"), "{err}");
        let s = snap.stats();
        // Four executions counted (the erroring one included).
        assert_eq!((s.queries, s.index_probes, s.scan_probes), (4, 4, 0));
    }

    #[test]
    fn left_join_via_sql() {
        let mut db = db();
        db.execute("CREATE TABLE dept (dname TEXT, budget INT)")
            .unwrap();
        db.execute("INSERT INTO dept VALUES ('cs', 1000)").unwrap();
        let r = db
            .query(
                "SELECT e.name, d.budget FROM emp e LEFT JOIN dept d ON e.dept = d.dname ORDER BY e.name",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(
            r.rows[2],
            vec![Value::text("cyd"), Value::Null],
            "ee has no dept row"
        );
    }
}
