//! Per-call resource governance: deadlines, row budgets, cooperative
//! cancellation.
//!
//! A [`Budget`] is created once per top-level call (one `Database` query,
//! one consistent-answer computation) and threaded — by shared reference —
//! through every stage that can run long: the physical executor's
//! streaming loops, membership probing, conflict detection and the prover
//! shards. Stages *cooperate*: nothing is preempted; instead each hot
//! loop calls [`Budget::tick`] with a local stride counter and bails out
//! with a structured [`EngineError`] (kind [`crate::schema::ErrorKind::Budget`]
//! or [`crate::schema::ErrorKind::Cancelled`]) when the budget is gone.
//!
//! # Costs and strides
//!
//! A full [`Budget::check`] reads the monotonic clock, which is far too
//! expensive per row (a prover candidate costs ~150ns; `Instant::now`
//! alone is ~25ns). [`Budget::tick`] therefore only performs the full
//! check every [`CHECK_STRIDE`] calls — one well-predicted branch and a
//! local increment otherwise — which keeps the measured governance
//! overhead on the hot benchmark stages under 2% while still bounding
//! the reaction latency to a deadline or cancellation by a few thousand
//! row visits.
//!
//! Row accounting ([`Budget::charge_rows`]) is exact at the points that
//! charge, but because checks are strided a stage may overrun a row
//! budget by up to `CHECK_STRIDE` rows before it notices. That slack is
//! deliberate: budgets bound resource usage, they are not cursors.
//!
//! # Determinism
//!
//! All counters are relaxed atomics summed over deterministic per-shard
//! loops, so when no budget trips, [`Budget::checks`] is identical for
//! any worker-thread count. When a *deadline* trips, the trip point is
//! wall-clock dependent by nature — callers must only rely on the
//! soundness of whatever partial result they assemble, never on where
//! exactly the cut happened.
//!
//! # Cancellation
//!
//! [`Budget::cancel_handle`] returns a cheap cloneable [`CancelHandle`]
//! that another thread can [`CancelHandle::cancel`] at any time; the next
//! strided check in any stage observes the flag and unwinds with an
//! [`crate::schema::ErrorKind::Cancelled`] error. The flag is sticky
//! until [`CancelHandle::reset`].

use crate::schema::EngineError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stride of [`Budget::tick`]: one full check (clock read + flag loads)
/// every this many ticks. Power of two so the stride test is a mask.
/// At ~150ns per prover candidate (the slowest governed unit of work),
/// 256 bounds deadline/cancellation reaction latency to ~40µs while
/// keeping the full check off the hot path entirely.
pub const CHECK_STRIDE: u32 = 256;

/// A cloneable cancellation flag for a [`Budget`].
///
/// Obtained from [`Budget::cancel_handle`]; tripping it makes every
/// stage sharing the budget unwind with a `Cancelled` error at its next
/// cooperative check.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle(Arc<AtomicBool>);

impl CancelHandle {
    /// A fresh, untripped flag (for wiring into [`Budget::with_cancel_flag`]).
    pub fn new() -> CancelHandle {
        CancelHandle::default()
    }

    /// Trip the flag: the owning call unwinds at its next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has the flag been tripped?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Untrip the flag so the same handle can govern a later call.
    pub fn reset(&self) {
        self.0.store(false, Ordering::Relaxed);
    }
}

/// Per-call resource budget: optional deadline, optional row budget,
/// a cancellation flag, and exact check/row accounting.
///
/// Shared by reference (or `Arc`) across every stage of one call; all
/// state is atomic, so shards on different threads check and charge
/// concurrently without locks.
#[derive(Debug)]
pub struct Budget {
    start: Instant,
    deadline: Option<Instant>,
    time_limit: Option<Duration>,
    row_limit: Option<u64>,
    rows: AtomicU64,
    checks: AtomicU64,
    cancel: CancelHandle,
    /// Forced exhaustion (deterministic fault injection).
    forced: AtomicBool,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::new()
    }
}

impl Budget {
    /// An unlimited budget (useful as a base for the builders below; it
    /// never trips unless cancelled or force-tripped).
    pub fn new() -> Budget {
        Budget {
            start: Instant::now(),
            deadline: None,
            time_limit: None,
            row_limit: None,
            rows: AtomicU64::new(0),
            checks: AtomicU64::new(0),
            cancel: CancelHandle::new(),
            forced: AtomicBool::new(false),
        }
    }

    /// Bound the call's wall-clock time, measured from *now*.
    pub fn with_deadline(mut self, limit: Duration) -> Budget {
        self.start = Instant::now();
        self.deadline = Some(self.start + limit);
        self.time_limit = Some(limit);
        self
    }

    /// Bound the number of rows the call may materialise/visit.
    pub fn with_row_limit(mut self, rows: u64) -> Budget {
        self.row_limit = Some(rows);
        self
    }

    /// Share an existing cancellation flag (e.g. one handle governing a
    /// sequence of calls).
    pub fn with_cancel_flag(mut self, handle: CancelHandle) -> Budget {
        self.cancel = handle;
        self
    }

    /// A handle another thread can use to cancel this budget's call.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.clone()
    }

    /// Force the next check to report exhaustion (fault injection).
    pub fn force_trip(&self) {
        self.forced.store(true, Ordering::Relaxed);
    }

    /// Charge `n` rows against the row budget (checked at the next
    /// [`Budget::check`], not here).
    #[inline]
    pub fn charge_rows(&self, n: u64) {
        if self.row_limit.is_some() {
            self.rows.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Rows charged so far.
    pub fn rows_charged(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Full checks performed so far (every stage, every shard).
    pub fn checks(&self) -> u64 {
        self.checks.load(Ordering::Relaxed)
    }

    /// Wall-clock time elapsed since the budget was armed.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Time left before the deadline trips: `None` when no deadline is
    /// configured, `Some(ZERO)` once it has passed. Services use this to
    /// propagate a request deadline across stages — e.g. capping how
    /// long the request may sit in an admission queue before execution
    /// would be pointless.
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// One full cooperative check: counted, then cancellation, forced
    /// trip, deadline and row budget — in that order. `stage` names the
    /// pipeline stage for the structured error.
    pub fn check(&self, stage: &'static str) -> Result<(), EngineError> {
        self.checks.fetch_add(1, Ordering::Relaxed);
        if self.cancel.is_cancelled() {
            return Err(EngineError::cancelled(stage));
        }
        if self.forced.load(Ordering::Relaxed) {
            return Err(EngineError::budget(
                stage,
                self.rows.load(Ordering::Relaxed),
                0,
            ));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                let spent = self.start.elapsed().as_micros() as u64;
                let limit = self.time_limit.unwrap_or_default().as_micros() as u64;
                return Err(EngineError::budget(stage, spent, limit));
            }
        }
        if let Some(limit) = self.row_limit {
            let spent = self.rows.load(Ordering::Relaxed);
            if spent > limit {
                return Err(EngineError::budget(stage, spent, limit));
            }
        }
        Ok(())
    }

    /// Strided check for hot loops: bumps the caller's local `counter`
    /// and runs a full [`Budget::check`] every [`CHECK_STRIDE`] ticks.
    #[inline]
    pub fn tick(&self, counter: &mut u32, stage: &'static str) -> Result<(), EngineError> {
        *counter = counter.wrapping_add(1);
        if *counter & (CHECK_STRIDE - 1) == 0 {
            self.check(stage)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ErrorKind;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::new();
        for _ in 0..1000 {
            b.check("t").unwrap();
        }
        assert_eq!(b.checks(), 1000);
    }

    #[test]
    fn deadline_trips_with_structured_error() {
        let b = Budget::new().with_deadline(Duration::ZERO);
        let err = b.check("prover").unwrap_err();
        match err.kind {
            ErrorKind::Budget { stage, limit, .. } => {
                assert_eq!(stage, "prover");
                assert_eq!(limit, 0);
            }
            ref k => panic!("expected Budget, got {k:?}"),
        }
        assert!(err.is_budget(), "{err}");
        assert!(err.is_governance());
    }

    #[test]
    fn row_budget_trips_after_limit() {
        let b = Budget::new().with_row_limit(10);
        b.charge_rows(10);
        b.check("engine").unwrap();
        b.charge_rows(1);
        let err = b.check("engine").unwrap_err();
        assert_eq!(
            err.kind,
            ErrorKind::Budget {
                stage: "engine",
                spent: 11,
                limit: 10
            }
        );
    }

    #[test]
    fn remaining_time_tracks_the_deadline() {
        assert_eq!(Budget::new().remaining_time(), None);
        let b = Budget::new().with_deadline(Duration::from_secs(3600));
        let left = b.remaining_time().expect("deadline configured");
        assert!(left > Duration::from_secs(3000), "{left:?}");
        let b = Budget::new().with_deadline(Duration::ZERO);
        assert_eq!(b.remaining_time(), Some(Duration::ZERO), "never negative");
    }

    #[test]
    fn rows_not_counted_without_a_limit() {
        let b = Budget::new();
        b.charge_rows(5);
        assert_eq!(b.rows_charged(), 0, "no limit, no accounting");
    }

    #[test]
    fn cancellation_is_sticky_until_reset() {
        let b = Budget::new();
        let h = b.cancel_handle();
        b.check("t").unwrap();
        h.cancel();
        let err = b.check("detect").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Cancelled { stage: "detect" });
        assert!(err.is_cancelled());
        h.reset();
        b.check("t").unwrap();
    }

    #[test]
    fn cancel_handle_works_across_threads() {
        let b = Budget::new();
        let h = b.cancel_handle();
        std::thread::scope(|s| {
            s.spawn(move || h.cancel());
        });
        assert!(b.check("t").is_err());
    }

    #[test]
    fn forced_trip_reports_budget_kind() {
        let b = Budget::new();
        b.force_trip();
        assert!(b.check("corefilter").unwrap_err().is_budget());
    }

    #[test]
    fn tick_checks_only_on_the_stride() {
        let b = Budget::new().with_row_limit(0);
        b.charge_rows(1);
        let mut c = 0u32;
        for i in 1..CHECK_STRIDE {
            assert!(b.tick(&mut c, "t").is_ok(), "tick {i} below stride");
        }
        assert!(b.tick(&mut c, "t").is_err(), "stride boundary checks");
        assert_eq!(b.checks(), 1);
    }
}
