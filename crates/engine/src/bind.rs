//! Name resolution and lowering: SQL AST → [`LogicalPlan`].
//!
//! The binder resolves table/column names against the catalog, expands
//! wildcards, desugars `BETWEEN`, detects aggregation, and produces a plan
//! plus output column names. Correlated subqueries are supported: a column
//! that does not resolve in the current scope is looked up in enclosing
//! scopes and becomes an [`BoundExpr::OuterRef`].

use crate::catalog::Catalog;
use crate::expr::{BoundExpr, ScalarFunc};
use crate::plan::{AggExpr, AggFunc, JoinType, LogicalPlan};
use crate::schema::EngineError;
use hippo_sql::{
    BinaryOp, Expr, JoinKind, Literal, OrderItem, Query, SelectCore, SelectItem, SetOp, TableRef,
};

/// Result of binding a query: the plan and its output column names.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// The logical plan.
    pub plan: LogicalPlan,
    /// Output column names (parallel to the plan's output columns).
    pub columns: Vec<String>,
}

/// One named range in a scope (a table, alias, or subquery binding).
#[derive(Debug, Clone)]
struct ScopeEntry {
    qualifier: Option<String>,
    columns: Vec<String>,
    offset: usize,
}

/// The columns visible at some point of a query.
#[derive(Debug, Clone, Default)]
struct Scope {
    entries: Vec<ScopeEntry>,
}

impl Scope {
    fn width(&self) -> usize {
        self.entries
            .last()
            .map(|e| e.offset + e.columns.len())
            .unwrap_or(0)
    }

    fn add(&mut self, qualifier: Option<String>, columns: Vec<String>) {
        let offset = self.width();
        self.entries.push(ScopeEntry {
            qualifier,
            columns,
            offset,
        });
    }

    /// Resolve a possibly-qualified column to a flat offset.
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Option<usize>, EngineError> {
        let mut found = None;
        for e in &self.entries {
            if let Some(q) = qualifier {
                if e.qualifier.as_deref() != Some(q) {
                    continue;
                }
            }
            if let Some(i) = e.columns.iter().position(|c| c == name) {
                let flat = e.offset + i;
                if found.is_some() {
                    return Err(EngineError::new(format!(
                        "ambiguous column reference {name:?}"
                    )));
                }
                found = Some(flat);
                // With a qualifier, a single entry can still have duplicate
                // names only if the subquery produced them; first wins.
            }
        }
        Ok(found)
    }

    fn all_columns(&self) -> Vec<(Option<String>, String, usize)> {
        let mut out = Vec::new();
        for e in &self.entries {
            for (i, c) in e.columns.iter().enumerate() {
                out.push((e.qualifier.clone(), c.clone(), e.offset + i));
            }
        }
        out
    }
}

/// Bind a query against the catalog (no outer scopes).
pub fn bind_query(catalog: &Catalog, query: &Query) -> Result<BoundQuery, EngineError> {
    Binder {
        catalog,
        scopes: Vec::new(),
    }
    .query(query)
}

/// Bind a standalone expression against a table's row (used by DML filters).
pub fn bind_table_expr(
    catalog: &Catalog,
    table: &str,
    expr: &Expr,
) -> Result<BoundExpr, EngineError> {
    let t = catalog.table(table)?;
    let mut scope = Scope::default();
    scope.add(Some(table.to_string()), t.schema.column_names());
    let mut b = Binder {
        catalog,
        scopes: vec![scope],
    };
    b.expr(expr)
}

/// Bind a constant expression (no columns in scope), e.g. `VALUES` items.
pub fn bind_const_expr(catalog: &Catalog, expr: &Expr) -> Result<BoundExpr, EngineError> {
    let mut b = Binder {
        catalog,
        scopes: vec![Scope::default()],
    };
    b.expr(expr)
}

struct Binder<'a> {
    catalog: &'a Catalog,
    /// Scope stack; innermost (current) last.
    scopes: Vec<Scope>,
}

impl<'a> Binder<'a> {
    fn query(&mut self, query: &Query) -> Result<BoundQuery, EngineError> {
        match query {
            Query::Select(core) => self.select_core(core),
            Query::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let l = self.query(left)?;
                let r = self.query(right)?;
                let la = l.plan.arity(self.catalog)?;
                let ra = r.plan.arity(self.catalog)?;
                if la != ra {
                    return Err(EngineError::new(format!(
                        "set operation arity mismatch: {la} vs {ra}"
                    )));
                }
                let plan = match op {
                    SetOp::Union => LogicalPlan::Union {
                        left: Box::new(l.plan),
                        right: Box::new(r.plan),
                        all: *all,
                    },
                    SetOp::Except => LogicalPlan::Except {
                        left: Box::new(l.plan),
                        right: Box::new(r.plan),
                        all: *all,
                    },
                    SetOp::Intersect => LogicalPlan::Intersect {
                        left: Box::new(l.plan),
                        right: Box::new(r.plan),
                        all: *all,
                    },
                };
                Ok(BoundQuery {
                    plan,
                    columns: l.columns,
                })
            }
        }
    }

    fn select_core(&mut self, core: &SelectCore) -> Result<BoundQuery, EngineError> {
        // ----- FROM -----
        let mut scope = Scope::default();
        let mut plan = None::<LogicalPlan>;
        for tr in &core.from {
            let (p, entries) = self.table_ref(tr, &mut scope)?;
            plan = Some(match plan {
                None => p,
                Some(prev) => LogicalPlan::CrossJoin {
                    left: Box::new(prev),
                    right: Box::new(p),
                },
            });
            // entries already added to scope by table_ref
            let _ = entries;
        }
        let mut plan = plan.unwrap_or_else(LogicalPlan::one_row);

        // Push the FROM scope: WHERE / projection bind against it.
        self.scopes.push(scope);
        let result = self.select_rest(core, &mut plan);
        let scope = self.scopes.pop().expect("scope pushed above");
        let _ = scope;
        result.map(|(plan, columns)| BoundQuery { plan, columns })
    }

    fn select_rest(
        &mut self,
        core: &SelectCore,
        plan: &mut LogicalPlan,
    ) -> Result<(LogicalPlan, Vec<String>), EngineError> {
        // ----- WHERE -----
        if let Some(f) = &core.filter {
            if contains_aggregate(f) {
                return Err(EngineError::new(
                    "aggregate functions are not allowed in WHERE",
                ));
            }
            let predicate = self.expr(f)?;
            *plan = LogicalPlan::Filter {
                input: Box::new(plan.clone()),
                predicate,
            };
        }

        // ----- projection expansion -----
        let mut proj_exprs: Vec<Expr> = Vec::new();
        let mut proj_names: Vec<String> = Vec::new();
        {
            let scope = self.scopes.last().expect("current scope");
            for item in &core.projection {
                match item {
                    SelectItem::Wildcard => {
                        for (_, name, offset) in scope.all_columns() {
                            proj_exprs.push(Expr::Column {
                                qualifier: None,
                                name: name.clone(),
                            });
                            // Remember the offset directly via a marker: we
                            // re-resolve below, which is fine because
                            // wildcard names may be ambiguous; use the
                            // qualified form instead when possible.
                            let _ = offset;
                            proj_names.push(name);
                        }
                        // Replace the just-pushed unqualified forms with
                        // qualified ones to avoid ambiguity errors when two
                        // tables share a column name.
                        let n = scope.all_columns().len();
                        let start = proj_exprs.len() - n;
                        for (k, (q, name, _)) in scope.all_columns().into_iter().enumerate() {
                            if let Some(q) = q {
                                proj_exprs[start + k] = Expr::Column {
                                    qualifier: Some(q),
                                    name,
                                };
                            }
                        }
                    }
                    SelectItem::QualifiedWildcard(q) => {
                        let entry = scope
                            .entries
                            .iter()
                            .find(|e| e.qualifier.as_deref() == Some(q.as_str()))
                            .ok_or_else(|| {
                                EngineError::new(format!("unknown table alias {q:?} in wildcard"))
                            })?;
                        for name in entry.columns.clone() {
                            proj_exprs.push(Expr::Column {
                                qualifier: Some(q.clone()),
                                name: name.clone(),
                            });
                            proj_names.push(name);
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        proj_names.push(match alias {
                            Some(a) => a.clone(),
                            None => default_name(expr),
                        });
                        proj_exprs.push(expr.clone());
                    }
                }
            }
        }

        let has_agg = !core.group_by.is_empty()
            || proj_exprs.iter().any(contains_aggregate)
            || core.having.as_ref().is_some_and(contains_aggregate)
            || core.order_by.iter().any(|o| contains_aggregate(&o.expr));

        let mut plan = plan.clone();
        if has_agg {
            plan = self.bind_aggregate(core, plan, &proj_exprs, &proj_names)?;
        } else {
            if core.having.is_some() {
                return Err(EngineError::new("HAVING requires GROUP BY or aggregates"));
            }
            let bound: Vec<BoundExpr> = proj_exprs
                .iter()
                .map(|e| self.expr(e))
                .collect::<Result<_, _>>()?;
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs: bound,
            };
        }

        if core.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }

        // ----- ORDER BY (binds against the output columns) -----
        if !core.order_by.is_empty() {
            let keys = self.bind_order_by(&core.order_by, &proj_names, &proj_exprs, has_agg)?;
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }

        if core.limit.is_some() || core.offset.is_some() {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                limit: core.limit,
                offset: core.offset.unwrap_or(0),
            };
        }

        Ok((plan, proj_names))
    }

    /// Bind the aggregate path: an `Aggregate` node computing group keys and
    /// aggregate values, then a `Project` (and optional `Filter` for
    /// `HAVING`) re-expressed over the aggregate's output.
    fn bind_aggregate(
        &mut self,
        core: &SelectCore,
        input: LogicalPlan,
        proj_exprs: &[Expr],
        _proj_names: &[String],
    ) -> Result<LogicalPlan, EngineError> {
        // Group expressions, bound over the FROM scope.
        let group_asts: Vec<Expr> = core.group_by.clone();
        let group_bound: Vec<BoundExpr> = group_asts
            .iter()
            .map(|e| self.expr(e))
            .collect::<Result<_, _>>()?;

        // Collect aggregate calls from output positions.
        let mut agg_asts: Vec<Expr> = Vec::new();
        for e in proj_exprs {
            collect_aggregates(e, &mut agg_asts);
        }
        if let Some(h) = &core.having {
            collect_aggregates(h, &mut agg_asts);
        }
        for o in &core.order_by {
            collect_aggregates(&o.expr, &mut agg_asts);
        }
        agg_asts.dedup();
        // Dedup across non-adjacent duplicates too.
        let mut unique: Vec<Expr> = Vec::new();
        for a in agg_asts {
            if !unique.contains(&a) {
                unique.push(a);
            }
        }
        let agg_asts = unique;

        let aggregates: Vec<AggExpr> = agg_asts
            .iter()
            .map(|a| self.bind_agg_call(a))
            .collect::<Result<_, _>>()?;

        let agg_plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group_exprs: group_bound,
            aggregates,
        };

        // HAVING over the aggregate output.
        let mut plan = agg_plan;
        if let Some(h) = &core.having {
            let pred = self.rebind_over_groups(h, &group_asts, &agg_asts)?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: pred,
            };
        }

        // Projection over the aggregate output.
        let exprs: Vec<BoundExpr> = proj_exprs
            .iter()
            .map(|e| self.rebind_over_groups(e, &group_asts, &agg_asts))
            .collect::<Result<_, _>>()?;
        Ok(LogicalPlan::Project {
            input: Box::new(plan),
            exprs,
        })
    }

    /// Rewrite an output expression in terms of the aggregate node's output
    /// row (group keys first, then aggregate values).
    fn rebind_over_groups(
        &mut self,
        e: &Expr,
        group_asts: &[Expr],
        agg_asts: &[Expr],
    ) -> Result<BoundExpr, EngineError> {
        if let Some(i) = group_asts.iter().position(|g| g == e) {
            return Ok(BoundExpr::Column(i));
        }
        if let Some(j) = agg_asts.iter().position(|a| a == e) {
            return Ok(BoundExpr::Column(group_asts.len() + j));
        }
        match e {
            Expr::Literal(l) => Ok(BoundExpr::Literal(literal_value(l))),
            Expr::Column { .. } => Err(EngineError::new(format!(
                "column {e:?} must appear in GROUP BY or be used in an aggregate"
            ))),
            Expr::Binary { op, left, right } => Ok(BoundExpr::Binary {
                op: *op,
                left: Box::new(self.rebind_over_groups(left, group_asts, agg_asts)?),
                right: Box::new(self.rebind_over_groups(right, group_asts, agg_asts)?),
            }),
            Expr::Unary { op, expr } => Ok(BoundExpr::Unary {
                op: *op,
                expr: Box::new(self.rebind_over_groups(expr, group_asts, agg_asts)?),
            }),
            Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                expr: Box::new(self.rebind_over_groups(expr, group_asts, agg_asts)?),
                negated: *negated,
            }),
            Expr::Case {
                branches,
                else_value,
            } => Ok(BoundExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| {
                        Ok((
                            self.rebind_over_groups(c, group_asts, agg_asts)?,
                            self.rebind_over_groups(v, group_asts, agg_asts)?,
                        ))
                    })
                    .collect::<Result<_, EngineError>>()?,
                else_value: match else_value {
                    Some(ev) => Some(Box::new(self.rebind_over_groups(ev, group_asts, agg_asts)?)),
                    None => None,
                },
            }),
            Expr::Function { name, args, .. } if !is_aggregate_name(name) => {
                let func = ScalarFunc::from_name(name)
                    .ok_or_else(|| EngineError::new(format!("unknown function {name:?}")))?;
                Ok(BoundExpr::Function {
                    func,
                    args: args
                        .iter()
                        .map(|a| self.rebind_over_groups(a, group_asts, agg_asts))
                        .collect::<Result<_, _>>()?,
                })
            }
            other => Err(EngineError::new(format!(
                "unsupported expression in aggregate query output: {other:?}"
            ))),
        }
    }

    fn bind_agg_call(&mut self, e: &Expr) -> Result<AggExpr, EngineError> {
        let Expr::Function {
            name,
            args,
            star,
            distinct,
        } = e
        else {
            return Err(EngineError::new("internal: not an aggregate call"));
        };
        if *star {
            if name != "count" {
                return Err(EngineError::new(format!("{name}(*) is not supported")));
            }
            return Ok(AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
            });
        }
        let func = AggFunc::from_name(name)
            .ok_or_else(|| EngineError::new(format!("unknown aggregate {name:?}")))?;
        if args.len() != 1 {
            return Err(EngineError::new(format!(
                "aggregate {name} expects one argument, got {}",
                args.len()
            )));
        }
        if contains_aggregate(&args[0]) {
            return Err(EngineError::new("nested aggregate calls are not allowed"));
        }
        let arg = self.expr(&args[0])?;
        Ok(AggExpr {
            func,
            arg: Some(arg),
            distinct: *distinct,
        })
    }

    fn bind_order_by(
        &mut self,
        order_by: &[OrderItem],
        proj_names: &[String],
        proj_exprs: &[Expr],
        has_agg: bool,
    ) -> Result<Vec<(BoundExpr, bool)>, EngineError> {
        let mut keys = Vec::new();
        for item in order_by {
            let key = match &item.expr {
                // ORDER BY <position>
                Expr::Literal(Literal::Int(k)) => {
                    let k = *k;
                    if k < 1 || k as usize > proj_names.len() {
                        return Err(EngineError::new(format!(
                            "ORDER BY position {k} out of range"
                        )));
                    }
                    BoundExpr::Column(k as usize - 1)
                }
                // ORDER BY <output name>
                Expr::Column {
                    qualifier: None,
                    name,
                } if proj_names.iter().filter(|n| *n == name).count() == 1 => {
                    BoundExpr::Column(proj_names.iter().position(|n| n == name).expect("checked"))
                }
                // ORDER BY <expression that syntactically matches an output>
                e if proj_exprs.iter().any(|p| p == e) => {
                    BoundExpr::Column(proj_exprs.iter().position(|p| p == e).expect("checked"))
                }
                e => {
                    if has_agg {
                        return Err(EngineError::new(
                            "ORDER BY in aggregate queries must reference output columns",
                        ));
                    }
                    return Err(EngineError::new(format!(
                        "ORDER BY expression must reference an output column: {e:?}"
                    )));
                }
            };
            keys.push((key, item.desc));
        }
        Ok(keys)
    }

    /// Bind a FROM item; adds its bindings to `scope` and returns its plan.
    fn table_ref(
        &mut self,
        tr: &TableRef,
        scope: &mut Scope,
    ) -> Result<(LogicalPlan, usize), EngineError> {
        match tr {
            TableRef::Table { name, alias } => {
                let t = self.catalog.table(name)?;
                let columns = t.schema.column_names();
                let qualifier = alias.clone().unwrap_or_else(|| name.clone());
                // Reject duplicate qualifiers in one FROM.
                if scope
                    .entries
                    .iter()
                    .any(|e| e.qualifier.as_deref() == Some(qualifier.as_str()))
                {
                    return Err(EngineError::new(format!(
                        "duplicate table alias {qualifier:?} in FROM"
                    )));
                }
                scope.add(Some(qualifier), columns);
                Ok((
                    LogicalPlan::Scan {
                        table: name.clone(),
                    },
                    1,
                ))
            }
            TableRef::Subquery { query, alias } => {
                // FROM subqueries are uncorrelated: bind with the *outer*
                // scope stack only (standard SQL, no LATERAL).
                let bound = self.query(query)?;
                if scope
                    .entries
                    .iter()
                    .any(|e| e.qualifier.as_deref() == Some(alias.as_str()))
                {
                    return Err(EngineError::new(format!(
                        "duplicate table alias {alias:?} in FROM"
                    )));
                }
                scope.add(Some(alias.clone()), bound.columns);
                Ok((bound.plan, 1))
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let (lp, _) = self.table_ref(left, scope)?;
                let (rp, _) = self.table_ref(right, scope)?;
                match kind {
                    JoinKind::Cross => Ok((
                        LogicalPlan::CrossJoin {
                            left: Box::new(lp),
                            right: Box::new(rp),
                        },
                        2,
                    )),
                    JoinKind::Inner => {
                        let plan = LogicalPlan::CrossJoin {
                            left: Box::new(lp),
                            right: Box::new(rp),
                        };
                        let Some(on) = on else {
                            return Err(EngineError::new("INNER JOIN requires ON"));
                        };
                        // ON binds over the combined scope built so far.
                        self.scopes.push(scope.clone());
                        let pred = self.expr(on);
                        self.scopes.pop();
                        Ok((
                            LogicalPlan::Filter {
                                input: Box::new(plan),
                                predicate: pred?,
                            },
                            2,
                        ))
                    }
                    JoinKind::Left => {
                        let Some(on) = on else {
                            return Err(EngineError::new("LEFT JOIN requires ON"));
                        };
                        self.scopes.push(scope.clone());
                        let pred = self.expr(on);
                        self.scopes.pop();
                        Ok((
                            LogicalPlan::NestedLoopJoin {
                                left: Box::new(lp),
                                right: Box::new(rp),
                                predicate: Some(pred?),
                                join_type: JoinType::Left,
                            },
                            2,
                        ))
                    }
                }
            }
        }
    }

    // ----- expressions -----

    fn expr(&mut self, e: &Expr) -> Result<BoundExpr, EngineError> {
        match e {
            Expr::Literal(l) => Ok(BoundExpr::Literal(literal_value(l))),
            Expr::Column { qualifier, name } => {
                // Current scope first.
                if let Some(scope) = self.scopes.last() {
                    if let Some(i) = scope.resolve(qualifier.as_deref(), name)? {
                        return Ok(BoundExpr::Column(i));
                    }
                }
                // Then enclosing scopes, innermost outward.
                if self.scopes.len() >= 2 {
                    for (level, scope) in self.scopes[..self.scopes.len() - 1]
                        .iter()
                        .rev()
                        .enumerate()
                    {
                        if let Some(i) = scope.resolve(qualifier.as_deref(), name)? {
                            return Ok(BoundExpr::OuterRef { level, index: i });
                        }
                    }
                }
                Err(EngineError::new(format!(
                    "unknown column {}{name}",
                    qualifier
                        .as_deref()
                        .map(|q| format!("{q}."))
                        .unwrap_or_default()
                )))
            }
            Expr::Binary { op, left, right } => Ok(BoundExpr::Binary {
                op: *op,
                left: Box::new(self.expr(left)?),
                right: Box::new(self.expr(right)?),
            }),
            Expr::Unary { op, expr } => Ok(BoundExpr::Unary {
                op: *op,
                expr: Box::new(self.expr(expr)?),
            }),
            Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                expr: Box::new(self.expr(expr)?),
                negated: *negated,
            }),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                // Desugar: e BETWEEN l AND h  ==>  l <= e AND e <= h
                let e_b = self.expr(expr)?;
                let l_b = self.expr(low)?;
                let h_b = self.expr(high)?;
                let ge = BoundExpr::Binary {
                    op: BinaryOp::Ge,
                    left: Box::new(e_b.clone()),
                    right: Box::new(l_b),
                };
                let le = BoundExpr::Binary {
                    op: BinaryOp::Le,
                    left: Box::new(e_b),
                    right: Box::new(h_b),
                };
                let both = ge.and(le);
                Ok(if *negated {
                    BoundExpr::Unary {
                        op: hippo_sql::UnaryOp::Not,
                        expr: Box::new(both),
                    }
                } else {
                    both
                })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Ok(BoundExpr::Like {
                expr: Box::new(self.expr(expr)?),
                pattern: Box::new(self.expr(pattern)?),
                negated: *negated,
            }),
            Expr::InList {
                expr,
                list,
                negated,
            } => Ok(BoundExpr::InList {
                expr: Box::new(self.expr(expr)?),
                list: list
                    .iter()
                    .map(|i| self.expr(i))
                    .collect::<Result<_, _>>()?,
                negated: *negated,
            }),
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let e_b = self.expr(expr)?;
                let sub = self.bind_subquery(query)?;
                if sub.plan.arity(self.catalog)? != 1 {
                    return Err(EngineError::new(
                        "IN subquery must produce exactly one column",
                    ));
                }
                Ok(BoundExpr::InSubquery {
                    expr: Box::new(e_b),
                    plan: Box::new(sub.plan),
                    negated: *negated,
                })
            }
            Expr::Exists { query, negated } => {
                let sub = self.bind_subquery(query)?;
                Ok(BoundExpr::Exists {
                    plan: Box::new(sub.plan),
                    negated: *negated,
                })
            }
            Expr::ScalarSubquery(query) => {
                let sub = self.bind_subquery(query)?;
                if sub.plan.arity(self.catalog)? != 1 {
                    return Err(EngineError::new(
                        "scalar subquery must produce exactly one column",
                    ));
                }
                Ok(BoundExpr::ScalarSubquery(Box::new(sub.plan)))
            }
            Expr::Function {
                name,
                args,
                star,
                distinct,
            } => {
                if is_aggregate_name(name) || *star || *distinct {
                    return Err(EngineError::new(format!(
                        "aggregate {name:?} is not allowed in this context"
                    )));
                }
                let func = ScalarFunc::from_name(name)
                    .ok_or_else(|| EngineError::new(format!("unknown function {name:?}")))?;
                Ok(BoundExpr::Function {
                    func,
                    args: args
                        .iter()
                        .map(|a| self.expr(a))
                        .collect::<Result<_, _>>()?,
                })
            }
            Expr::Case {
                branches,
                else_value,
            } => Ok(BoundExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Ok((self.expr(c)?, self.expr(v)?)))
                    .collect::<Result<_, EngineError>>()?,
                else_value: match else_value {
                    Some(ev) => Some(Box::new(self.expr(ev)?)),
                    None => None,
                },
            }),
        }
    }

    /// Bind a subquery: the current scope becomes an enclosing scope.
    fn bind_subquery(&mut self, query: &Query) -> Result<BoundQuery, EngineError> {
        // self.scopes already holds [outer..., current]; the subquery binder
        // sees all of them as enclosing scopes.
        let mut inner = Binder {
            catalog: self.catalog,
            scopes: self.scopes.clone(),
        };
        inner.query(query)
    }
}

/// Translate an AST literal into a runtime value.
pub fn literal_value(l: &Literal) -> crate::value::Value {
    use crate::value::Value;
    match l {
        Literal::Null => Value::Null,
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::Str(s) => Value::Text(s.clone()),
    }
}

fn is_aggregate_name(name: &str) -> bool {
    AggFunc::from_name(name).is_some()
}

/// Does the expression contain an aggregate function call (not descending
/// into subqueries, which have their own aggregation contexts)?
pub fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Function {
            name, star, args, ..
        } => *star || is_aggregate_name(name) || args.iter().any(contains_aggregate),
        Expr::Literal(_) | Expr::Column { .. } => false,
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        Expr::Like { expr, pattern, .. } => contains_aggregate(expr) || contains_aggregate(pattern),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::InSubquery { expr, .. } => contains_aggregate(expr),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => false,
        Expr::Case {
            branches,
            else_value,
        } => {
            branches
                .iter()
                .any(|(c, v)| contains_aggregate(c) || contains_aggregate(v))
                || else_value.as_ref().is_some_and(|e| contains_aggregate(e))
        }
    }
}

fn collect_aggregates(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Function { name, star, .. } if *star || is_aggregate_name(name) => {
            out.push(e.clone());
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, out);
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => collect_aggregates(expr, out),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(pattern, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for i in list {
                collect_aggregates(i, out);
            }
        }
        Expr::InSubquery { expr, .. } => collect_aggregates(expr, out),
        Expr::Case {
            branches,
            else_value,
        } => {
            for (c, v) in branches {
                collect_aggregates(c, out);
                collect_aggregates(v, out);
            }
            if let Some(ev) = else_value {
                collect_aggregates(ev, out);
            }
        }
    }
}

fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        _ => "?column?".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType, TableSchema};
    use hippo_sql::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "emp",
                vec![
                    Column::new("name", DataType::Text),
                    Column::new("dept", DataType::Text),
                    Column::new("salary", DataType::Int),
                ],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        c.create_table(
            TableSchema::new(
                "dept",
                vec![
                    Column::new("dname", DataType::Text),
                    Column::new("budget", DataType::Int),
                ],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    fn bind(sql: &str) -> Result<BoundQuery, EngineError> {
        let c = catalog();
        bind_query(&c, &parse_query(sql).unwrap())
    }

    #[test]
    fn binds_simple_select() {
        let b = bind("SELECT name, salary FROM emp WHERE salary > 100").unwrap();
        assert_eq!(b.columns, vec!["name", "salary"]);
        let LogicalPlan::Project { exprs, input } = b.plan else {
            panic!()
        };
        assert_eq!(exprs, vec![BoundExpr::Column(0), BoundExpr::Column(2)]);
        assert!(matches!(*input, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn wildcard_expands_in_order() {
        let b = bind("SELECT * FROM emp, dept").unwrap();
        assert_eq!(b.columns, vec!["name", "dept", "salary", "dname", "budget"]);
    }

    #[test]
    fn qualified_wildcard() {
        let b = bind("SELECT d.* FROM emp e, dept d").unwrap();
        assert_eq!(b.columns, vec!["dname", "budget"]);
    }

    #[test]
    fn ambiguous_column_is_error() {
        // Same column name in both tables.
        let mut c = catalog();
        c.create_table(
            TableSchema::new("emp2", vec![Column::new("name", DataType::Text)], &[]).unwrap(),
        )
        .unwrap();
        let q = parse_query("SELECT name FROM emp, emp2").unwrap();
        let err = bind_query(&c, &q).unwrap_err();
        assert!(err.message.contains("ambiguous"), "{err}");
    }

    #[test]
    fn unknown_column_is_error() {
        let err = bind("SELECT nope FROM emp").unwrap_err();
        assert!(err.message.contains("unknown column"));
    }

    #[test]
    fn unknown_table_is_error() {
        assert!(bind("SELECT * FROM missing").is_err());
    }

    #[test]
    fn duplicate_alias_is_error() {
        let err = bind("SELECT * FROM emp e, dept e").unwrap_err();
        assert!(err.message.contains("duplicate table alias"));
    }

    #[test]
    fn aliases_shadow_table_names() {
        let b = bind("SELECT e.salary FROM emp e").unwrap();
        assert_eq!(b.columns, vec!["salary"]);
        // Original name no longer available once aliased.
        assert!(bind("SELECT emp.salary FROM emp e").is_err());
    }

    #[test]
    fn set_op_arity_mismatch_is_error() {
        let err = bind("SELECT name FROM emp UNION SELECT dname, budget FROM dept").unwrap_err();
        assert!(err.message.contains("arity mismatch"));
    }

    #[test]
    fn between_desugars() {
        let b = bind("SELECT name FROM emp WHERE salary BETWEEN 1 AND 2").unwrap();
        let LogicalPlan::Project { input, .. } = b.plan else {
            panic!()
        };
        let LogicalPlan::Filter { predicate, .. } = *input else {
            panic!()
        };
        assert!(matches!(
            predicate,
            BoundExpr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn correlated_subquery_gets_outer_ref() {
        let b = bind(
            "SELECT name FROM emp e WHERE EXISTS (SELECT * FROM dept d WHERE d.dname = e.dept)",
        )
        .unwrap();
        // find the Exists expression and check it contains an OuterRef
        let LogicalPlan::Project { input, .. } = b.plan else {
            panic!()
        };
        let LogicalPlan::Filter { predicate, .. } = *input else {
            panic!()
        };
        let BoundExpr::Exists { plan, .. } = predicate else {
            panic!("{predicate:?}")
        };
        let LogicalPlan::Project { input, .. } = *plan else {
            panic!()
        };
        let LogicalPlan::Filter { predicate, .. } = *input else {
            panic!()
        };
        let mut saw_outer = false;
        predicate.visit(&mut |e| {
            if matches!(e, BoundExpr::OuterRef { level: 0, .. }) {
                saw_outer = true;
            }
        });
        assert!(saw_outer, "{predicate:?}");
    }

    #[test]
    fn aggregate_query_binds() {
        let b =
            bind("SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept HAVING COUNT(*) > 1")
                .unwrap();
        assert_eq!(b.columns, vec!["dept", "count", "sum"]);
        let LogicalPlan::Project { input, .. } = &b.plan else {
            panic!()
        };
        let LogicalPlan::Filter { input: agg, .. } = &**input else {
            panic!()
        };
        let LogicalPlan::Aggregate {
            group_exprs,
            aggregates,
            ..
        } = &**agg
        else {
            panic!()
        };
        assert_eq!(group_exprs.len(), 1);
        assert_eq!(aggregates.len(), 2);
    }

    #[test]
    fn bare_column_outside_group_by_is_error() {
        let err = bind("SELECT name, COUNT(*) FROM emp GROUP BY dept").unwrap_err();
        assert!(err.message.contains("GROUP BY"), "{err}");
    }

    #[test]
    fn aggregate_in_where_is_error() {
        let err = bind("SELECT name FROM emp WHERE COUNT(*) > 1").unwrap_err();
        assert!(err.message.contains("not allowed in WHERE"), "{err}");
    }

    #[test]
    fn order_by_position_and_alias() {
        let b = bind("SELECT name AS n, salary FROM emp ORDER BY 2 DESC, n").unwrap();
        let LogicalPlan::Sort { keys, .. } = &b.plan else {
            panic!()
        };
        assert_eq!(keys[0], (BoundExpr::Column(1), true));
        assert_eq!(keys[1], (BoundExpr::Column(0), false));
    }

    #[test]
    fn order_by_out_of_range_position() {
        assert!(bind("SELECT name FROM emp ORDER BY 5").is_err());
        assert!(bind("SELECT name FROM emp ORDER BY 0").is_err());
    }

    #[test]
    fn select_without_from() {
        let b = bind("SELECT 1, 'x'").unwrap();
        let LogicalPlan::Project { input, exprs } = b.plan else {
            panic!()
        };
        assert_eq!(exprs.len(), 2);
        assert!(matches!(*input, LogicalPlan::Values { .. }));
    }

    #[test]
    fn from_subquery_binds_alias() {
        let b = bind("SELECT s.n FROM (SELECT name AS n FROM emp) s").unwrap();
        assert_eq!(b.columns, vec!["n"]);
    }

    #[test]
    fn inner_join_lowered_to_filter_over_cross() {
        let b = bind("SELECT * FROM emp e INNER JOIN dept d ON e.dept = d.dname").unwrap();
        let LogicalPlan::Project { input, .. } = b.plan else {
            panic!()
        };
        let LogicalPlan::Filter { input: cj, .. } = *input else {
            panic!()
        };
        assert!(matches!(*cj, LogicalPlan::CrossJoin { .. }));
    }

    #[test]
    fn left_join_becomes_nested_loop_left() {
        let b = bind("SELECT * FROM emp e LEFT JOIN dept d ON e.dept = d.dname").unwrap();
        let LogicalPlan::Project { input, .. } = b.plan else {
            panic!()
        };
        assert!(matches!(
            *input,
            LogicalPlan::NestedLoopJoin {
                join_type: JoinType::Left,
                ..
            }
        ));
    }

    #[test]
    fn in_subquery_arity_checked() {
        let err = bind("SELECT name FROM emp WHERE name IN (SELECT dname, budget FROM dept)")
            .unwrap_err();
        assert!(err.message.contains("one column"));
    }
}
