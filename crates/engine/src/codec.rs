//! Binary codec for values, rows, schemas and whole catalogs, plus the
//! CRC32 the durability layer checksums every frame with.
//!
//! The write-ahead log and checkpoint files of `crates/server` are built
//! from these primitives. The encoding is deliberately boring:
//! little-endian fixed-width integers, `u32` length prefixes for strings
//! and sequences, and one tag byte per [`Value`] variant. Two properties
//! matter more than compactness:
//!
//! * **Determinism** — encoding the same catalog twice yields identical
//!   bytes (index sets and names are sorted before writing), so a
//!   checkpoint's CRC is reproducible and recovery tests can compare
//!   files bit-for-bit.
//! * **Slot fidelity** — a table is serialized *slot by slot*, tombstones
//!   included. [`crate::table::TupleId`]s are slot indices; preserving
//!   the slot structure means a recovered table hands out exactly the
//!   ids the pre-crash table would have, which is what lets log replay
//!   assert the ids it recorded.
//!
//! Decoding never panics on corrupt input: every read is bounds-checked
//! and returns a structured [`EngineError`] ("codec: …"). The caller
//! (WAL scan, checkpoint load) decides whether corruption is fatal or a
//! torn tail to truncate.

use crate::schema::{Column, DataType, EngineError, TableSchema};
use crate::table::Table;
use crate::value::{Row, Value};
use crate::Catalog;

/// CRC32 (IEEE 802.3, reflected, init `!0`), the checksum every WAL
/// frame and checkpoint body carries. Table-driven, built at compile
/// time — no dependency on an external crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

fn corrupt(what: &str) -> EngineError {
    EngineError::new(format!("codec: corrupt or truncated input ({what})"))
}

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

/// Append a `u32` (little-endian).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (little-endian).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Checked frames
// ---------------------------------------------------------------------------

/// Bytes of envelope before a checked frame's payload (len + crc).
pub const CHECKED_FRAME_OVERHEAD: usize = 8;

/// Wrap `payload` in the shared checked-frame envelope the WAL and the
/// replication transport both speak: `len u32 · crc32(payload) u32 ·
/// payload`.
pub fn encode_checked(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CHECKED_FRAME_OVERHEAD + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Append the checked-frame envelope + payload to `out` (the allocation-
/// free sibling of [`encode_checked`], for batched writers).
pub fn put_checked(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// Try to split one checked frame off the front of `bytes`.
///
/// * `Ok(Some((payload, consumed)))` — a complete frame whose CRC
///   verifies; `consumed` covers envelope + payload.
/// * `Ok(None)` — `bytes` is a (possibly empty) prefix of a frame: more
///   input is needed. A torn file tail and a half-received network
///   buffer look identical here, by design.
/// * `Err(_)` — the envelope is present but lies: the length exceeds
///   `max_len` (a hostile or garbage prefix that must not drive an
///   allocation) or the CRC does not match the payload.
pub fn split_checked(bytes: &[u8], max_len: u32) -> Result<Option<(&[u8], usize)>, EngineError> {
    if bytes.len() < CHECKED_FRAME_OVERHEAD {
        return Ok(None);
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if len > max_len {
        return Err(corrupt(&format!(
            "checked frame claims {len} bytes (max {max_len})"
        )));
    }
    let total = CHECKED_FRAME_OVERHEAD + len as usize;
    if bytes.len() < total {
        return Ok(None);
    }
    let payload = &bytes[CHECKED_FRAME_OVERHEAD..total];
    if crc32(payload) != crc {
        return Err(corrupt("checked frame crc mismatch"));
    }
    Ok(Some((payload, total)))
}

// ---------------------------------------------------------------------------
// Bounds-checked reader
// ---------------------------------------------------------------------------

/// A cursor over an encoded byte slice. Every read is bounds-checked;
/// running off the end yields a "codec:" [`EngineError`], never a panic.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        if self.remaining() < n {
            return Err(corrupt("unexpected end of input"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, EngineError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, EngineError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, EngineError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, EngineError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its IEEE bit pattern (NaN payloads survive).
    pub fn f64(&mut self) -> Result<f64, EngineError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, EngineError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid UTF-8 in string"))
    }

    /// Read a `u32` count and fail fast if the buffer cannot possibly
    /// hold that many elements of at least `min_elem_size` bytes — the
    /// guard that keeps a corrupt length prefix from allocating gigabytes.
    pub fn count(&mut self, min_elem_size: usize) -> Result<usize, EngineError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_size.max(1)) > self.remaining() {
            return Err(corrupt("length prefix exceeds input"));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Value / Row
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_TEXT: u8 = 4;

/// Append one [`Value`] (tag byte + payload).
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            put_str(out, s);
        }
    }
}

/// Decode one [`Value`].
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value, EngineError> {
    match r.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => match r.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            _ => Err(corrupt("bool payload")),
        },
        TAG_INT => Ok(Value::Int(r.i64()?)),
        TAG_FLOAT => Ok(Value::Float(r.f64()?)),
        TAG_TEXT => Ok(Value::Text(r.str()?)),
        _ => Err(corrupt("unknown value tag")),
    }
}

/// Append a [`Row`] (`u32` arity + values).
pub fn encode_row(out: &mut Vec<u8>, row: &[Value]) {
    put_u32(out, row.len() as u32);
    for v in row {
        encode_value(out, v);
    }
}

/// Decode a [`Row`].
pub fn decode_row(r: &mut Reader<'_>) -> Result<Row, EngineError> {
    let n = r.count(1)?;
    (0..n).map(|_| decode_value(r)).collect()
}

// ---------------------------------------------------------------------------
// Schema / Table / Catalog
// ---------------------------------------------------------------------------

fn encode_schema(out: &mut Vec<u8>, s: &TableSchema) {
    put_str(out, &s.name);
    put_u32(out, s.columns.len() as u32);
    for c in &s.columns {
        put_str(out, &c.name);
        out.push(match c.ty {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Text => 2,
            DataType::Bool => 3,
        });
        out.push(c.not_null as u8);
    }
    put_u32(out, s.primary_key.len() as u32);
    for &pk in &s.primary_key {
        put_u32(out, pk as u32);
    }
}

fn decode_schema(r: &mut Reader<'_>) -> Result<TableSchema, EngineError> {
    let name = r.str()?;
    let ncols = r.count(6)?;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let cname = r.str()?;
        let ty = match r.u8()? {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Text,
            3 => DataType::Bool,
            _ => return Err(corrupt("unknown column type tag")),
        };
        let not_null = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(corrupt("not-null flag")),
        };
        let mut col = Column::new(cname, ty);
        if not_null {
            col = col.not_null();
        }
        columns.push(col);
    }
    let npk = r.count(4)?;
    let mut pk_indices = Vec::with_capacity(npk);
    for _ in 0..npk {
        let i = r.u32()? as usize;
        if i >= columns.len() {
            return Err(corrupt("primary-key column out of range"));
        }
        pk_indices.push(i);
    }
    // Reconstruct through the validating constructor so a decoded schema
    // upholds the same invariants as a hand-built one.
    let pk_names: Vec<String> = pk_indices
        .iter()
        .map(|&i| columns[i].name.clone())
        .collect();
    let pk_refs: Vec<&str> = pk_names.iter().map(String::as_str).collect();
    let schema = TableSchema::new(name, columns, &pk_refs)
        .map_err(|e| corrupt(&format!("schema rejected: {}", e.message)))?;
    if schema.primary_key != pk_indices {
        return Err(corrupt("primary-key indices are ambiguous"));
    }
    Ok(schema)
}

fn encode_table(out: &mut Vec<u8>, t: &Table) {
    encode_schema(out, &t.schema);
    let slots = t.slot_entries();
    put_u64(out, slots.len() as u64);
    for slot in slots {
        match slot {
            Some(row) => {
                out.push(1);
                encode_row(out, row);
            }
            None => out.push(0),
        }
    }
    // Index structure, sorted for deterministic bytes (the maps hash).
    let mut sets: Vec<Vec<usize>> = t.index_column_sets().cloned().collect();
    sets.sort();
    put_u32(out, sets.len() as u32);
    for cols in &sets {
        put_u32(out, cols.len() as u32);
        for &c in cols {
            put_u32(out, c as u32);
        }
    }
    let mut names: Vec<(String, Vec<usize>)> = t
        .named_index_entries()
        .map(|(n, c)| (n.clone(), c.clone()))
        .collect();
    names.sort();
    put_u32(out, names.len() as u32);
    for (name, cols) in &names {
        put_str(out, name);
        put_u32(out, cols.len() as u32);
        for &c in cols {
            put_u32(out, c as u32);
        }
    }
}

fn decode_cols(r: &mut Reader<'_>) -> Result<Vec<usize>, EngineError> {
    let n = r.count(4)?;
    (0..n).map(|_| Ok(r.u32()? as usize)).collect()
}

fn decode_table(r: &mut Reader<'_>) -> Result<Table, EngineError> {
    let schema = decode_schema(r)?;
    let nslots = r.u64()?;
    if nslots > u32::MAX as u64 || nslots.saturating_mul(1) > r.remaining() as u64 {
        return Err(corrupt("slot count exceeds input"));
    }
    let mut slots = Vec::with_capacity(nslots as usize);
    for _ in 0..nslots {
        match r.u8()? {
            0 => slots.push(None),
            1 => {
                let row = decode_row(r)?;
                if row.len() != schema.arity() {
                    return Err(corrupt("row arity does not match schema"));
                }
                slots.push(Some(row));
            }
            _ => return Err(corrupt("slot presence flag")),
        }
    }
    let nsets = r.count(4)?;
    let mut sets = Vec::with_capacity(nsets);
    for _ in 0..nsets {
        sets.push(decode_cols(r)?);
    }
    let nnames = r.count(8)?;
    let mut names = Vec::with_capacity(nnames);
    for _ in 0..nnames {
        let name = r.str()?;
        names.push((name, decode_cols(r)?));
    }
    Table::from_parts(schema, slots, sets, names)
        .map_err(|e| corrupt(&format!("table rejected: {}", e.message)))
}

/// Magic + version prefix of an encoded catalog.
const CATALOG_MAGIC: &[u8; 8] = b"HIPPOCAT";
const CATALOG_VERSION: u32 = 1;

/// Serialize a whole [`Catalog`] — every table with its slot structure
/// (tombstones included) and index definitions — to deterministic bytes.
pub fn encode_catalog(catalog: &Catalog) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CATALOG_MAGIC);
    put_u32(&mut out, CATALOG_VERSION);
    let tables: Vec<_> = catalog.iter().collect();
    put_u32(&mut out, tables.len() as u32);
    for (_, t) in tables {
        encode_table(&mut out, t);
    }
    out
}

/// Decode a catalog produced by [`encode_catalog`]. Bounds-checked
/// throughout; corrupt input yields a "codec:" error, never a panic.
pub fn decode_catalog(bytes: &[u8]) -> Result<Catalog, EngineError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != CATALOG_MAGIC {
        return Err(corrupt("bad catalog magic"));
    }
    let version = r.u32()?;
    if version != CATALOG_VERSION {
        return Err(corrupt(&format!("unsupported catalog version {version}")));
    }
    let ntables = r.count(1)?;
    let mut catalog = Catalog::new();
    for _ in 0..ntables {
        let table = decode_table(&mut r)?;
        let name = table.schema.name.clone();
        catalog
            .adopt_table(table)
            .map_err(|_| corrupt(&format!("duplicate table {name:?}")))?;
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes after catalog"));
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};

    fn roundtrip_value(v: Value) {
        let mut buf = Vec::new();
        encode_value(&mut buf, &v);
        let mut r = Reader::new(&buf);
        let got = decode_value(&mut r).unwrap();
        assert!(r.is_empty());
        // Bit-exact for floats (Eq unifies 1 == 1.0; check bits too).
        if let (Value::Float(a), Value::Float(b)) = (&v, &got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(v, got);
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Bool(false));
        roundtrip_value(Value::Int(0));
        roundtrip_value(Value::Int(i64::MIN));
        roundtrip_value(Value::Int(i64::MAX));
        roundtrip_value(Value::Float(0.0));
        roundtrip_value(Value::Float(-0.0));
        roundtrip_value(Value::Float(f64::NAN));
        roundtrip_value(Value::Float(f64::NEG_INFINITY));
        roundtrip_value(Value::text(""));
        roundtrip_value(Value::text("héllo \u{1F40E}"));
    }

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn catalog_roundtrips_with_tombstones_and_indexes() {
        let mut catalog = Catalog::new();
        catalog
            .create_table(
                TableSchema::new(
                    "t",
                    vec![
                        Column::new("k", DataType::Int),
                        Column::new("v", DataType::Text).not_null(),
                    ],
                    &["k"],
                )
                .unwrap(),
            )
            .unwrap();
        let t = catalog.table_mut("t").unwrap();
        let a = t.insert(vec![Value::Int(1), Value::text("a")]).unwrap();
        t.insert(vec![Value::Int(2), Value::text("b")]).unwrap();
        t.delete(a);
        t.create_named_index("v_ix".into(), vec![1]).unwrap();

        let bytes = encode_catalog(&catalog);
        assert_eq!(bytes, encode_catalog(&catalog), "deterministic");
        let back = decode_catalog(&bytes).unwrap();
        let bt = back.table("t").unwrap();
        assert_eq!(bt.slot_count(), 2, "tombstone slot preserved");
        assert_eq!(bt.len(), 1);
        assert!(bt.get(a).is_none(), "tombstone stays dead");
        assert_eq!(bt.named_index("v_ix"), Some(&vec![1]));
        assert!(bt.has_index(&[0]) && bt.has_index(&[1]));
        // Fresh inserts continue at the same slot index pre- and
        // post-roundtrip — the TupleId-stability property recovery needs.
        let mut orig = catalog.clone();
        let mut back = back;
        let id1 = orig
            .table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(3), Value::text("c")])
            .unwrap();
        let id2 = back
            .table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(3), Value::text("c")])
            .unwrap();
        assert_eq!(id1, id2);
    }

    #[test]
    fn corrupt_input_errors_never_panics() {
        let mut catalog = Catalog::new();
        catalog
            .create_table(
                TableSchema::new("t", vec![Column::new("a", DataType::Int)], &[]).unwrap(),
            )
            .unwrap();
        let bytes = encode_catalog(&catalog);
        // Truncate at every prefix and flip a byte at every position:
        // decoding must return Err or a (different) valid catalog, never panic.
        for cut in 0..bytes.len() {
            let _ = decode_catalog(&bytes[..cut]);
        }
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            let _ = decode_catalog(&b);
        }
        assert!(decode_catalog(b"HIPPOCATxxxx").is_err());
        assert!(decode_catalog(b"").is_err());
    }

    #[test]
    fn checked_frames_roundtrip_and_reject_corruption() {
        let payload = b"hello frames".as_slice();
        let framed = encode_checked(payload);
        assert_eq!(framed.len(), CHECKED_FRAME_OVERHEAD + payload.len());
        let mut batched = Vec::new();
        put_checked(&mut batched, payload);
        assert_eq!(framed, batched, "both writers produce identical bytes");
        let (got, consumed) = split_checked(&framed, 1 << 20).unwrap().unwrap();
        assert_eq!((got, consumed), (payload, framed.len()));
        // Every strict prefix is "incomplete", never an error or panic.
        for cut in 0..framed.len() {
            assert!(split_checked(&framed[..cut], 1 << 20).unwrap().is_none());
        }
        // Flipping any payload or crc byte is caught.
        for i in 4..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0xFF;
            assert!(split_checked(&bad, 1 << 20).is_err(), "byte {i}");
        }
        // A hostile length is rejected before any allocation.
        let mut hostile = Vec::new();
        put_u32(&mut hostile, u32::MAX);
        put_u32(&mut hostile, 0);
        assert!(split_checked(&hostile, 1 << 20).is_err());
    }

    #[test]
    fn hostile_length_prefix_rejected_cheaply() {
        let mut buf = Vec::new();
        buf.extend_from_slice(CATALOG_MAGIC);
        put_u32(&mut buf, CATALOG_VERSION);
        put_u32(&mut buf, u32::MAX); // absurd table count
        assert!(decode_catalog(&buf).is_err());
    }
}
