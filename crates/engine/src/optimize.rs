//! The optimizer: logical rewrites, then logical → physical lowering
//! with access-path selection.
//!
//! **Logical passes** ([`optimize`]), applied bottom-up (one traversal
//! is enough for the shapes the binder emits):
//!
//! 1. **Constant folding** — literal-only expressions collapse to literals.
//! 2. **Predicate pushdown** — conjuncts of a `Filter` over a `CrossJoin`
//!    that reference only one side move below the join.
//! 3. **Join conversion** — remaining equi-conjuncts across the two sides
//!    turn `Filter(CrossJoin)` into a `HashJoin`.
//!
//! Expressions containing subqueries are never moved (their `OuterRef`
//! levels are position-dependent).
//!
//! **Physical lowering** ([`physicalize`]) maps the optimized logical
//! tree onto [`PhysicalPlan`] operators 1:1, except for **access-path
//! selection**: a `Filter` directly over a `Scan` whose equality
//! conjuncts pin every column of one of the table's hash indexes
//! becomes an [`PhysicalPlan::IndexLookup`] (largest covered index
//! wins; leftover conjuncts stay as a residual `FilterExec`). Key
//! expressions must be row-independent (literals of exactly the
//! column's type, or [`BoundExpr::Param`] placeholders whose bindings
//! the prepared-plan caller guarantees to be type-matching or `NULL`);
//! `Float` columns are never index-probed, because hash-key identity
//! and SQL numeric equality disagree on them (`0.0` vs `-0.0`,
//! int-widening). Those rules make the chosen access path produce the
//! **same rows in the same order** (slot order) as the sequential
//! scan it replaces — which the `prop_physical` differential suite
//! checks. The one observable difference is deliberate and standard:
//! residual conjuncts are only evaluated on the rows the index
//! returns, so a residual that would raise a *runtime* error (e.g. an
//! incomparable-type comparison) on a row the key excludes is simply
//! never evaluated — SQL leaves `WHERE` evaluation order unspecified,
//! and an index can skip errors but never introduce one (key
//! expressions are type-checked at plan time).
//!
//! Expression subqueries (`EXISTS`/`IN`/scalar) keep their logical
//! subplans: they are evaluated by the reference executor through
//! [`crate::expr::EvalEnv`]'s correlated-`EXISTS` hash memo, which
//! already gives the hot membership-flag shape its O(1) probe.

use crate::catalog::Catalog;
use crate::expr::{eval, BoundExpr, EvalEnv};
use crate::plan::{JoinType, LogicalPlan, PhysicalPlan};
use crate::schema::{DataType, EngineError, TableSchema};
use crate::value::Value;
use hippo_sql::BinaryOp;

/// Optimize a plan.
pub fn optimize(plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan, EngineError> {
    let plan = rewrite(plan, catalog)?;
    Ok(plan)
}

/// Options controlling logical → physical lowering.
#[derive(Debug, Clone, Copy)]
pub struct PhysicalOptions {
    /// Rewrite equality predicates over indexed columns into
    /// [`PhysicalPlan::IndexLookup`] access paths. On by default; the
    /// differential tests and the index-ablation experiments turn it
    /// off to get the sequential-scan plan with everything else
    /// unchanged.
    pub use_indexes: bool,
}

impl Default for PhysicalOptions {
    fn default() -> Self {
        PhysicalOptions { use_indexes: true }
    }
}

/// Lower an optimized logical plan to a physical plan with default
/// options (index access paths enabled).
pub fn physicalize(plan: LogicalPlan, catalog: &Catalog) -> PhysicalPlan {
    physicalize_with(plan, catalog, &PhysicalOptions::default())
}

/// Lower an optimized logical plan to a physical plan.
pub fn physicalize_with(
    plan: LogicalPlan,
    catalog: &Catalog,
    opts: &PhysicalOptions,
) -> PhysicalPlan {
    match plan {
        LogicalPlan::Empty { arity } => PhysicalPlan::Empty { arity },
        LogicalPlan::Values { rows, arity } => PhysicalPlan::Values { rows, arity },
        LogicalPlan::Scan { table } => PhysicalPlan::SeqScan { table },
        LogicalPlan::Filter { input, predicate } => {
            if let LogicalPlan::Scan { table } = &*input {
                if opts.use_indexes {
                    if let Some(p) = index_access_path(table, &predicate, catalog) {
                        return p;
                    }
                }
            }
            PhysicalPlan::FilterExec {
                input: Box::new(physicalize_with(*input, catalog, opts)),
                predicate,
            }
        }
        LogicalPlan::Project { input, exprs } => PhysicalPlan::ProjectExec {
            input: Box::new(physicalize_with(*input, catalog, opts)),
            exprs,
        },
        LogicalPlan::CrossJoin { left, right } => PhysicalPlan::CrossJoinExec {
            left: Box::new(physicalize_with(*left, catalog, opts)),
            right: Box::new(physicalize_with(*right, catalog, opts)),
        },
        LogicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            join_type,
        } => PhysicalPlan::HashJoinExec {
            left: Box::new(physicalize_with(*left, catalog, opts)),
            right: Box::new(physicalize_with(*right, catalog, opts)),
            left_keys,
            right_keys,
            residual,
            join_type,
        },
        LogicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
            join_type,
        } => PhysicalPlan::NestedLoopJoinExec {
            left: Box::new(physicalize_with(*left, catalog, opts)),
            right: Box::new(physicalize_with(*right, catalog, opts)),
            predicate,
            join_type,
        },
        LogicalPlan::Union { left, right, all } => PhysicalPlan::UnionExec {
            left: Box::new(physicalize_with(*left, catalog, opts)),
            right: Box::new(physicalize_with(*right, catalog, opts)),
            all,
        },
        LogicalPlan::Except { left, right, all } => PhysicalPlan::ExceptExec {
            left: Box::new(physicalize_with(*left, catalog, opts)),
            right: Box::new(physicalize_with(*right, catalog, opts)),
            all,
        },
        LogicalPlan::Intersect { left, right, all } => PhysicalPlan::IntersectExec {
            left: Box::new(physicalize_with(*left, catalog, opts)),
            right: Box::new(physicalize_with(*right, catalog, opts)),
            all,
        },
        LogicalPlan::Distinct { input } => PhysicalPlan::DistinctExec {
            input: Box::new(physicalize_with(*input, catalog, opts)),
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => PhysicalPlan::AggregateExec {
            input: Box::new(physicalize_with(*input, catalog, opts)),
            group_exprs,
            aggregates,
        },
        LogicalPlan::Sort { input, keys } => PhysicalPlan::SortExec {
            input: Box::new(physicalize_with(*input, catalog, opts)),
            keys,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => PhysicalPlan::LimitExec {
            input: Box::new(physicalize_with(*input, catalog, opts)),
            limit,
            offset,
        },
    }
}

/// Access-path selection for `Filter(Scan)`: pick the largest index of
/// `table` whose every column is pinned by an index-safe equality
/// conjunct, emit an `IndexLookup` keyed by those expressions and keep
/// the remaining conjuncts as a residual filter. Ties between
/// equal-length indexes break to the lexicographically smallest column
/// set, so plan choice is deterministic.
fn index_access_path(
    table: &str,
    predicate: &BoundExpr,
    catalog: &Catalog,
) -> Option<PhysicalPlan> {
    let t = catalog.table(table).ok()?;
    let conjuncts = split_conjuncts(predicate);
    // column → (conjunct index, key expression); first conjunct wins.
    let mut eq: std::collections::BTreeMap<usize, (usize, &BoundExpr)> =
        std::collections::BTreeMap::new();
    for (i, c) in conjuncts.iter().enumerate() {
        if let Some((col, key)) = as_index_key(c, &t.schema) {
            eq.entry(col).or_insert((i, key));
        }
    }
    if eq.is_empty() {
        return None;
    }
    let mut best: Option<&Vec<usize>> = None;
    for cols in t.index_column_sets() {
        if !cols.iter().all(|c| eq.contains_key(c)) {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => cols.len() > b.len() || (cols.len() == b.len() && cols < b),
        };
        if better {
            best = Some(cols);
        }
    }
    let index_cols = best?.clone();
    let mut used = vec![false; conjuncts.len()];
    let key: Vec<BoundExpr> = index_cols
        .iter()
        .map(|c| {
            let (ci, e) = eq[c];
            used[ci] = true;
            e.clone()
        })
        .collect();
    let residual: Vec<BoundExpr> = conjuncts
        .into_iter()
        .zip(&used)
        .filter(|(_, consumed)| !**consumed)
        .map(|(c, _)| c)
        .collect();
    let lookup = PhysicalPlan::IndexLookup {
        table: table.to_string(),
        index_cols,
        key,
    };
    Some(if residual.is_empty() {
        lookup
    } else {
        PhysicalPlan::FilterExec {
            input: Box::new(lookup),
            predicate: BoundExpr::conjoin(residual),
        }
    })
}

/// Is `c` an equality pinning one column of `schema` to a
/// row-independent, index-safe key expression? Literals must inhabit
/// the column's type exactly (so hash-key identity coincides with SQL
/// equality); `Param`s are accepted on the caller's type contract;
/// `Float` columns are never index-safe.
fn as_index_key<'a>(c: &'a BoundExpr, schema: &TableSchema) -> Option<(usize, &'a BoundExpr)> {
    let BoundExpr::Binary {
        op: BinaryOp::Eq,
        left,
        right,
    } = c
    else {
        return None;
    };
    let (col, key) = match (&**left, &**right) {
        (BoundExpr::Column(c), e) => (*c, e),
        (e, BoundExpr::Column(c)) => (*c, e),
        _ => return None,
    };
    let ty = schema.columns.get(col)?.ty;
    if ty == DataType::Float {
        return None;
    }
    match key {
        BoundExpr::Param(_) => Some((col, key)),
        BoundExpr::Literal(v) => matches!(
            (ty, v),
            (DataType::Int, Value::Int(_))
                | (DataType::Text, Value::Text(_))
                | (DataType::Bool, Value::Bool(_))
        )
        .then_some((col, key)),
        _ => None,
    }
}

fn rewrite(plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan, EngineError> {
    // Recurse first (bottom-up).
    let plan = match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = rewrite(*input, catalog)?;
            let predicate = fold_expr(predicate, catalog);
            // Drop trivially-true filters; empty out trivially-false ones.
            match &predicate {
                BoundExpr::Literal(crate::value::Value::Bool(true)) => return Ok(input),
                BoundExpr::Literal(
                    crate::value::Value::Bool(false) | crate::value::Value::Null,
                ) => {
                    let arity = input.arity(catalog)?;
                    return Ok(LogicalPlan::Empty { arity });
                }
                _ => {}
            }
            push_filter(input, predicate, catalog)?
        }
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(rewrite(*input, catalog)?),
            exprs: exprs.into_iter().map(|e| fold_expr(e, catalog)).collect(),
        },
        LogicalPlan::CrossJoin { left, right } => LogicalPlan::CrossJoin {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
        },
        LogicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            join_type,
        } => LogicalPlan::HashJoin {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
            left_keys,
            right_keys,
            residual,
            join_type,
        },
        LogicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
            join_type,
        } => {
            let left = rewrite(*left, catalog)?;
            let right = rewrite(*right, catalog)?;
            // Try converting a LEFT nested-loop with pure equi predicate
            // into a left hash join.
            if join_type == JoinType::Left {
                if let Some(pred) = &predicate {
                    if !pred.contains_subquery() {
                        let la = left.arity(catalog)?;
                        let (equi, residual) = split_equi(pred, la);
                        if !equi.is_empty() {
                            return Ok(LogicalPlan::HashJoin {
                                left: Box::new(left),
                                right: Box::new(right),
                                left_keys: equi.iter().map(|(l, _)| l.clone()).collect(),
                                right_keys: equi.iter().map(|(_, r)| r.clone()).collect(),
                                residual,
                                join_type: JoinType::Left,
                            });
                        }
                    }
                }
            }
            LogicalPlan::NestedLoopJoin {
                left: Box::new(left),
                right: Box::new(right),
                predicate,
                join_type,
            }
        }
        LogicalPlan::Union { left, right, all } => LogicalPlan::Union {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
            all,
        },
        LogicalPlan::Except { left, right, all } => LogicalPlan::Except {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
            all,
        },
        LogicalPlan::Intersect { left, right, all } => LogicalPlan::Intersect {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
            all,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(rewrite(*input, catalog)?),
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite(*input, catalog)?),
            group_exprs,
            aggregates,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite(*input, catalog)?),
            keys,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(rewrite(*input, catalog)?),
            limit,
            offset,
        },
        leaf @ (LogicalPlan::Empty { .. }
        | LogicalPlan::Values { .. }
        | LogicalPlan::Scan { .. }) => leaf,
    };
    Ok(plan)
}

/// Place a filter above `input`, pushing conjuncts down / converting joins.
fn push_filter(
    input: LogicalPlan,
    predicate: BoundExpr,
    catalog: &Catalog,
) -> Result<LogicalPlan, EngineError> {
    match input {
        // Filters commute with duplicate elimination.
        LogicalPlan::Distinct { input } => Ok(LogicalPlan::Distinct {
            input: Box::new(push_filter(*input, predicate, catalog)?),
        }),
        // Push through a projection when every column the predicate reads
        // maps to a plain column of the input (no computed expressions),
        // so the join-conversion rule can see the cross join underneath.
        LogicalPlan::Project {
            input: proj_input,
            exprs,
        } if !predicate.contains_subquery() && remappable(&predicate, &exprs) => {
            let mapped = predicate.map_columns(&|i| match &exprs[i] {
                BoundExpr::Column(c) => *c,
                _ => unreachable!("remappable() checked"),
            });
            Ok(LogicalPlan::Project {
                input: Box::new(push_filter(*proj_input, mapped, catalog)?),
                exprs,
            })
        }
        LogicalPlan::CrossJoin { left, right } => {
            let la = left.arity(catalog)?;
            let conjuncts = split_conjuncts(&predicate);

            let mut left_preds = Vec::new();
            let mut right_preds = Vec::new();
            let mut equi: Vec<(BoundExpr, BoundExpr)> = Vec::new();
            let mut rest = Vec::new();

            for c in conjuncts {
                if c.contains_subquery() {
                    rest.push(c);
                    continue;
                }
                let mut cols = Vec::new();
                c.collect_columns(&mut cols);
                let all_left = cols.iter().all(|&i| i < la);
                let all_right = cols.iter().all(|&i| i >= la);
                if all_left && !cols.is_empty() {
                    left_preds.push(c);
                } else if all_right {
                    right_preds.push(c.map_columns(&|i| i - la));
                } else if let Some((lk, rk)) = as_equi(&c, la) {
                    equi.push((lk, rk));
                } else {
                    rest.push(c);
                }
            }

            let mut l = *left;
            if !left_preds.is_empty() {
                l = LogicalPlan::Filter {
                    input: Box::new(l),
                    predicate: BoundExpr::conjoin(left_preds),
                };
            }
            let mut r = *right;
            if !right_preds.is_empty() {
                r = LogicalPlan::Filter {
                    input: Box::new(r),
                    predicate: BoundExpr::conjoin(right_preds),
                };
            }

            let joined = if equi.is_empty() {
                LogicalPlan::CrossJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                }
            } else {
                LogicalPlan::HashJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    left_keys: equi.iter().map(|(lk, _)| lk.clone()).collect(),
                    right_keys: equi
                        .iter()
                        .map(|(_, rk)| rk.map_columns(&|i| i - la))
                        .collect(),
                    residual: None,
                    join_type: JoinType::Inner,
                }
            };
            if rest.is_empty() {
                Ok(joined)
            } else {
                Ok(LogicalPlan::Filter {
                    input: Box::new(joined),
                    predicate: BoundExpr::conjoin(rest),
                })
            }
        }
        other => Ok(LogicalPlan::Filter {
            input: Box::new(other),
            predicate,
        }),
    }
}

/// Does every column the predicate references map to a plain column in the
/// projection list?
fn remappable(predicate: &BoundExpr, exprs: &[BoundExpr]) -> bool {
    let mut cols = Vec::new();
    predicate.collect_columns(&mut cols);
    cols.iter()
        .all(|&i| matches!(exprs.get(i), Some(BoundExpr::Column(_))))
}

/// Split an `AND` tree into conjuncts.
pub fn split_conjuncts(e: &BoundExpr) -> Vec<BoundExpr> {
    match e {
        BoundExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// Is `e` an equality between a left-only and a right-only expression
/// (relative to a split at column `la`)? Returns (left key, right key in
/// combined offsets).
fn as_equi(e: &BoundExpr, la: usize) -> Option<(BoundExpr, BoundExpr)> {
    let BoundExpr::Binary {
        op: BinaryOp::Eq,
        left,
        right,
    } = e
    else {
        return None;
    };
    if left.contains_subquery() || right.contains_subquery() {
        return None;
    }
    let side = |x: &BoundExpr| -> Option<bool> {
        // Some(true) = all-left, Some(false) = all-right, None = mixed/none
        let mut cols = Vec::new();
        x.collect_columns(&mut cols);
        if cols.is_empty() {
            return None;
        }
        if cols.iter().all(|&i| i < la) {
            Some(true)
        } else if cols.iter().all(|&i| i >= la) {
            Some(false)
        } else {
            None
        }
    };
    match (side(left), side(right)) {
        (Some(true), Some(false)) => Some((*left.clone(), *right.clone())),
        (Some(false), Some(true)) => Some((*right.clone(), *left.clone())),
        _ => None,
    }
}

/// Split a predicate over a join into equi pairs (left expr, right expr in
/// right-local offsets) and a residual.
fn split_equi(pred: &BoundExpr, la: usize) -> (Vec<(BoundExpr, BoundExpr)>, Option<BoundExpr>) {
    let mut equi = Vec::new();
    let mut rest = Vec::new();
    for c in split_conjuncts(pred) {
        match as_equi(&c, la) {
            Some((l, r)) => equi.push((l, r.map_columns(&|i| i - la))),
            None => rest.push(c),
        }
    }
    let residual = if rest.is_empty() {
        None
    } else {
        Some(BoundExpr::conjoin(rest))
    };
    (equi, residual)
}

/// Fold literal-only expressions into literals (best effort; errors and
/// anything touching columns/subqueries are left intact).
fn fold_expr(e: BoundExpr, catalog: &Catalog) -> BoundExpr {
    if matches!(e, BoundExpr::Literal(_)) {
        return e;
    }
    if e.references_columns() || e.contains_subquery() || contains_outer_ref(&e) {
        // Fold children of AND/OR even if the whole can't fold.
        if let BoundExpr::Binary { op, left, right } = e {
            return BoundExpr::Binary {
                op,
                left: Box::new(fold_expr(*left, catalog)),
                right: Box::new(fold_expr(*right, catalog)),
            };
        }
        return e;
    }
    let mut env = EvalEnv::new(catalog);
    match eval(&e, &[], &mut env) {
        Ok(v) => BoundExpr::Literal(v),
        Err(_) => e, // leave runtime errors to execution time
    }
}

fn contains_outer_ref(e: &BoundExpr) -> bool {
    let mut found = false;
    e.visit(&mut |x| {
        if matches!(x, BoundExpr::OuterRef { .. }) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType, TableSchema};
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, cols) in [("r", 2usize), ("s", 2)] {
            let columns: Vec<Column> = (0..cols)
                .map(|i| Column::new(format!("c{i}"), DataType::Int))
                .collect();
            c.create_table(TableSchema::new(name, columns, &[]).unwrap())
                .unwrap();
        }
        c
    }

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column(i)
    }

    fn eq(l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn lit(v: i64) -> BoundExpr {
        BoundExpr::Literal(Value::Int(v))
    }

    #[test]
    fn filter_over_cross_becomes_hash_join() {
        let c = catalog();
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::CrossJoin {
                left: Box::new(LogicalPlan::Scan { table: "r".into() }),
                right: Box::new(LogicalPlan::Scan { table: "s".into() }),
            }),
            predicate: eq(col(0), col(2)),
        };
        let opt = optimize(plan, &c).unwrap();
        let LogicalPlan::HashJoin {
            left_keys,
            right_keys,
            ..
        } = opt
        else {
            panic!("expected hash join, got {opt:?}")
        };
        assert_eq!(left_keys, vec![col(0)]);
        assert_eq!(right_keys, vec![col(0)], "right key rebased to right side");
    }

    #[test]
    fn single_side_conjuncts_push_down() {
        let c = catalog();
        let pred = eq(col(0), col(2))
            .and(eq(col(1), lit(5)))
            .and(eq(col(3), lit(7)));
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::CrossJoin {
                left: Box::new(LogicalPlan::Scan { table: "r".into() }),
                right: Box::new(LogicalPlan::Scan { table: "s".into() }),
            }),
            predicate: pred,
        };
        let opt = optimize(plan, &c).unwrap();
        let LogicalPlan::HashJoin { left, right, .. } = opt else {
            panic!("{opt:?}")
        };
        assert!(
            matches!(*left, LogicalPlan::Filter { .. }),
            "left filter pushed"
        );
        let LogicalPlan::Filter { predicate, .. } = *right else {
            panic!()
        };
        // right-side predicate rebased: col(3) -> col(1)
        assert_eq!(predicate, eq(col(1), lit(7)));
    }

    #[test]
    fn non_equi_stays_as_residual_filter() {
        let c = catalog();
        let pred = BoundExpr::Binary {
            op: BinaryOp::Lt,
            left: Box::new(col(0)),
            right: Box::new(col(2)),
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::CrossJoin {
                left: Box::new(LogicalPlan::Scan { table: "r".into() }),
                right: Box::new(LogicalPlan::Scan { table: "s".into() }),
            }),
            predicate: pred.clone(),
        };
        let opt = optimize(plan, &c).unwrap();
        let LogicalPlan::Filter { input, predicate } = opt else {
            panic!("{opt:?}")
        };
        assert_eq!(predicate, pred);
        assert!(matches!(*input, LogicalPlan::CrossJoin { .. }));
    }

    #[test]
    fn constant_folding_collapses_filters() {
        let c = catalog();
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan { table: "r".into() }),
            predicate: eq(lit(1), lit(1)),
        };
        let opt = optimize(plan, &c).unwrap();
        assert!(
            matches!(opt, LogicalPlan::Scan { .. }),
            "true filter removed: {opt:?}"
        );
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan { table: "r".into() }),
            predicate: eq(lit(1), lit(2)),
        };
        let opt = optimize(plan, &c).unwrap();
        assert!(
            matches!(opt, LogicalPlan::Empty { arity: 2 }),
            "false filter empties: {opt:?}"
        );
    }

    #[test]
    fn left_nested_loop_with_equi_becomes_left_hash_join() {
        let c = catalog();
        let plan = LogicalPlan::NestedLoopJoin {
            left: Box::new(LogicalPlan::Scan { table: "r".into() }),
            right: Box::new(LogicalPlan::Scan { table: "s".into() }),
            predicate: Some(eq(col(0), col(2))),
            join_type: JoinType::Left,
        };
        let opt = optimize(plan, &c).unwrap();
        assert!(
            matches!(
                opt,
                LogicalPlan::HashJoin {
                    join_type: JoinType::Left,
                    ..
                }
            ),
            "{opt:?}"
        );
    }

    #[test]
    fn filter_pushes_through_project_and_distinct() {
        // Filter(Project(CrossJoin)) with a column-only projection becomes
        // Project(HashJoin) — the shape SJUD SQL rendering produces.
        let c = catalog();
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(LogicalPlan::CrossJoin {
                    left: Box::new(LogicalPlan::Scan { table: "r".into() }),
                    right: Box::new(LogicalPlan::Scan { table: "s".into() }),
                }),
                exprs: vec![col(1), col(0), col(2), col(3)], // permuted columns
            }),
            predicate: eq(col(1), col(2)), // output cols 1,2 = input cols 0,2
        };
        let opt = optimize(plan, &c).unwrap();
        let LogicalPlan::Project { input, .. } = opt else {
            panic!("{opt:?}")
        };
        let LogicalPlan::HashJoin {
            left_keys,
            right_keys,
            ..
        } = *input
        else {
            panic!("expected hash join under project: {input:?}")
        };
        assert_eq!(left_keys, vec![col(0)]);
        assert_eq!(right_keys, vec![col(0)]);

        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Distinct {
                input: Box::new(LogicalPlan::CrossJoin {
                    left: Box::new(LogicalPlan::Scan { table: "r".into() }),
                    right: Box::new(LogicalPlan::Scan { table: "s".into() }),
                }),
            }),
            predicate: eq(col(0), col(2)),
        };
        let opt = optimize(plan, &c).unwrap();
        let LogicalPlan::Distinct { input } = opt else {
            panic!("{opt:?}")
        };
        assert!(matches!(*input, LogicalPlan::HashJoin { .. }));
    }

    #[test]
    fn filter_not_pushed_through_computed_projection() {
        let c = catalog();
        let computed = BoundExpr::Binary {
            op: BinaryOp::Add,
            left: Box::new(col(0)),
            right: Box::new(lit(1)),
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(LogicalPlan::Scan { table: "r".into() }),
                exprs: vec![computed],
            }),
            predicate: eq(col(0), lit(5)),
        };
        let opt = optimize(plan, &c).unwrap();
        assert!(
            matches!(opt, LogicalPlan::Filter { .. }),
            "computed projections block pushdown: {opt:?}"
        );
    }

    fn indexed_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "t",
                vec![
                    Column::new("k", DataType::Int),
                    Column::new("v", DataType::Int),
                    Column::new("f", DataType::Float),
                ],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    fn filter_scan(pred: BoundExpr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan { table: "t".into() }),
            predicate: pred,
        }
    }

    #[test]
    fn equality_on_indexed_key_becomes_index_lookup() {
        let c = indexed_catalog();
        let phys = physicalize(filter_scan(eq(col(0), lit(5))), &c);
        let PhysicalPlan::IndexLookup {
            table,
            index_cols,
            key,
        } = phys
        else {
            panic!("expected IndexLookup, got:\n{phys}")
        };
        assert_eq!(table, "t");
        assert_eq!(index_cols, vec![0]);
        assert_eq!(key, vec![lit(5)]);
    }

    #[test]
    fn extra_conjuncts_stay_as_residual_over_the_lookup() {
        let c = indexed_catalog();
        let pred = eq(col(0), lit(5)).and(BoundExpr::Binary {
            op: BinaryOp::Gt,
            left: Box::new(col(1)),
            right: Box::new(lit(7)),
        });
        let phys = physicalize(filter_scan(pred), &c);
        let PhysicalPlan::FilterExec { input, .. } = phys else {
            panic!("expected residual filter, got:\n{phys}")
        };
        assert!(matches!(*input, PhysicalPlan::IndexLookup { .. }));
    }

    #[test]
    fn param_keys_are_index_safe() {
        let c = indexed_catalog();
        let phys = physicalize(filter_scan(eq(col(0), BoundExpr::Param(0))), &c);
        assert!(matches!(phys, PhysicalPlan::IndexLookup { .. }), "{phys}");
    }

    #[test]
    fn unsafe_keys_fall_back_to_scan() {
        let c = indexed_catalog();
        // Type-mismatched literal: hash identity would not coincide
        // with SQL equality semantics.
        let phys = physicalize(
            filter_scan(eq(col(0), BoundExpr::Literal(Value::text("x")))),
            &c,
        );
        assert!(matches!(
            phys,
            PhysicalPlan::FilterExec {
                ref input,
                ..
            } if matches!(**input, PhysicalPlan::SeqScan { .. })
        ));
        // Column = column is row-dependent.
        let phys = physicalize(filter_scan(eq(col(0), col(1))), &c);
        assert!(matches!(phys, PhysicalPlan::FilterExec { .. }));
        // Non-equality never probes.
        let phys = physicalize(
            filter_scan(BoundExpr::Binary {
                op: BinaryOp::Lt,
                left: Box::new(col(0)),
                right: Box::new(lit(5)),
            }),
            &c,
        );
        assert!(matches!(phys, PhysicalPlan::FilterExec { .. }));
    }

    #[test]
    fn float_columns_are_never_index_probed() {
        let mut c = indexed_catalog();
        c.table_mut("t").unwrap().create_index(vec![2]).unwrap();
        let phys = physicalize(
            filter_scan(eq(col(2), BoundExpr::Literal(Value::Float(1.0)))),
            &c,
        );
        assert!(matches!(phys, PhysicalPlan::FilterExec { .. }), "{phys}");
    }

    #[test]
    fn largest_covered_index_wins() {
        let mut c = indexed_catalog();
        c.table_mut("t").unwrap().create_index(vec![0, 1]).unwrap();
        let pred = eq(col(0), lit(5)).and(eq(col(1), lit(7)));
        let phys = physicalize(filter_scan(pred), &c);
        let PhysicalPlan::IndexLookup { index_cols, .. } = phys else {
            panic!("expected IndexLookup, got:\n{phys}")
        };
        assert_eq!(index_cols, vec![0, 1], "two-column index preferred");
    }

    #[test]
    fn physical_options_can_disable_index_selection() {
        let c = indexed_catalog();
        let phys = physicalize_with(
            filter_scan(eq(col(0), lit(5))),
            &c,
            &PhysicalOptions { use_indexes: false },
        );
        assert!(matches!(phys, PhysicalPlan::FilterExec { .. }), "{phys}");
    }

    #[test]
    fn subquery_predicates_are_not_moved() {
        let c = catalog();
        let sub = BoundExpr::Exists {
            plan: Box::new(LogicalPlan::Scan { table: "s".into() }),
            negated: false,
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::CrossJoin {
                left: Box::new(LogicalPlan::Scan { table: "r".into() }),
                right: Box::new(LogicalPlan::Scan { table: "s".into() }),
            }),
            predicate: sub.clone(),
        };
        let opt = optimize(plan, &c).unwrap();
        let LogicalPlan::Filter { predicate, .. } = opt else {
            panic!("{opt:?}")
        };
        assert_eq!(predicate, sub);
    }
}
