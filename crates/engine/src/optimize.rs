//! Rule-based plan rewrites.
//!
//! Three passes, applied bottom-up until fixpoint-ish (one traversal is
//! enough for the shapes the binder emits):
//!
//! 1. **Constant folding** — literal-only expressions collapse to literals.
//! 2. **Predicate pushdown** — conjuncts of a `Filter` over a `CrossJoin`
//!    that reference only one side move below the join.
//! 3. **Join conversion** — remaining equi-conjuncts across the two sides
//!    turn `Filter(CrossJoin)` into a `HashJoin`.
//!
//! Expressions containing subqueries are never moved (their `OuterRef`
//! levels are position-dependent).

use crate::catalog::Catalog;
use crate::expr::{eval, BoundExpr, EvalEnv};
use crate::plan::{JoinType, LogicalPlan};
use crate::schema::EngineError;
use hippo_sql::BinaryOp;

/// Optimize a plan.
pub fn optimize(plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan, EngineError> {
    let plan = rewrite(plan, catalog)?;
    Ok(plan)
}

fn rewrite(plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan, EngineError> {
    // Recurse first (bottom-up).
    let plan = match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = rewrite(*input, catalog)?;
            let predicate = fold_expr(predicate, catalog);
            // Drop trivially-true filters; empty out trivially-false ones.
            match &predicate {
                BoundExpr::Literal(crate::value::Value::Bool(true)) => return Ok(input),
                BoundExpr::Literal(
                    crate::value::Value::Bool(false) | crate::value::Value::Null,
                ) => {
                    let arity = input.arity(catalog)?;
                    return Ok(LogicalPlan::Empty { arity });
                }
                _ => {}
            }
            push_filter(input, predicate, catalog)?
        }
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(rewrite(*input, catalog)?),
            exprs: exprs.into_iter().map(|e| fold_expr(e, catalog)).collect(),
        },
        LogicalPlan::CrossJoin { left, right } => LogicalPlan::CrossJoin {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
        },
        LogicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            join_type,
        } => LogicalPlan::HashJoin {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
            left_keys,
            right_keys,
            residual,
            join_type,
        },
        LogicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
            join_type,
        } => {
            let left = rewrite(*left, catalog)?;
            let right = rewrite(*right, catalog)?;
            // Try converting a LEFT nested-loop with pure equi predicate
            // into a left hash join.
            if join_type == JoinType::Left {
                if let Some(pred) = &predicate {
                    if !pred.contains_subquery() {
                        let la = left.arity(catalog)?;
                        let (equi, residual) = split_equi(pred, la);
                        if !equi.is_empty() {
                            return Ok(LogicalPlan::HashJoin {
                                left: Box::new(left),
                                right: Box::new(right),
                                left_keys: equi.iter().map(|(l, _)| l.clone()).collect(),
                                right_keys: equi.iter().map(|(_, r)| r.clone()).collect(),
                                residual,
                                join_type: JoinType::Left,
                            });
                        }
                    }
                }
            }
            LogicalPlan::NestedLoopJoin {
                left: Box::new(left),
                right: Box::new(right),
                predicate,
                join_type,
            }
        }
        LogicalPlan::Union { left, right, all } => LogicalPlan::Union {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
            all,
        },
        LogicalPlan::Except { left, right, all } => LogicalPlan::Except {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
            all,
        },
        LogicalPlan::Intersect { left, right, all } => LogicalPlan::Intersect {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
            all,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(rewrite(*input, catalog)?),
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite(*input, catalog)?),
            group_exprs,
            aggregates,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite(*input, catalog)?),
            keys,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(rewrite(*input, catalog)?),
            limit,
            offset,
        },
        leaf @ (LogicalPlan::Empty { .. }
        | LogicalPlan::Values { .. }
        | LogicalPlan::Scan { .. }) => leaf,
    };
    Ok(plan)
}

/// Place a filter above `input`, pushing conjuncts down / converting joins.
fn push_filter(
    input: LogicalPlan,
    predicate: BoundExpr,
    catalog: &Catalog,
) -> Result<LogicalPlan, EngineError> {
    match input {
        // Filters commute with duplicate elimination.
        LogicalPlan::Distinct { input } => Ok(LogicalPlan::Distinct {
            input: Box::new(push_filter(*input, predicate, catalog)?),
        }),
        // Push through a projection when every column the predicate reads
        // maps to a plain column of the input (no computed expressions),
        // so the join-conversion rule can see the cross join underneath.
        LogicalPlan::Project {
            input: proj_input,
            exprs,
        } if !predicate.contains_subquery() && remappable(&predicate, &exprs) => {
            let mapped = predicate.map_columns(&|i| match &exprs[i] {
                BoundExpr::Column(c) => *c,
                _ => unreachable!("remappable() checked"),
            });
            Ok(LogicalPlan::Project {
                input: Box::new(push_filter(*proj_input, mapped, catalog)?),
                exprs,
            })
        }
        LogicalPlan::CrossJoin { left, right } => {
            let la = left.arity(catalog)?;
            let conjuncts = split_conjuncts(&predicate);

            let mut left_preds = Vec::new();
            let mut right_preds = Vec::new();
            let mut equi: Vec<(BoundExpr, BoundExpr)> = Vec::new();
            let mut rest = Vec::new();

            for c in conjuncts {
                if c.contains_subquery() {
                    rest.push(c);
                    continue;
                }
                let mut cols = Vec::new();
                c.collect_columns(&mut cols);
                let all_left = cols.iter().all(|&i| i < la);
                let all_right = cols.iter().all(|&i| i >= la);
                if all_left && !cols.is_empty() {
                    left_preds.push(c);
                } else if all_right {
                    right_preds.push(c.map_columns(&|i| i - la));
                } else if let Some((lk, rk)) = as_equi(&c, la) {
                    equi.push((lk, rk));
                } else {
                    rest.push(c);
                }
            }

            let mut l = *left;
            if !left_preds.is_empty() {
                l = LogicalPlan::Filter {
                    input: Box::new(l),
                    predicate: BoundExpr::conjoin(left_preds),
                };
            }
            let mut r = *right;
            if !right_preds.is_empty() {
                r = LogicalPlan::Filter {
                    input: Box::new(r),
                    predicate: BoundExpr::conjoin(right_preds),
                };
            }

            let joined = if equi.is_empty() {
                LogicalPlan::CrossJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                }
            } else {
                LogicalPlan::HashJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    left_keys: equi.iter().map(|(lk, _)| lk.clone()).collect(),
                    right_keys: equi
                        .iter()
                        .map(|(_, rk)| rk.map_columns(&|i| i - la))
                        .collect(),
                    residual: None,
                    join_type: JoinType::Inner,
                }
            };
            if rest.is_empty() {
                Ok(joined)
            } else {
                Ok(LogicalPlan::Filter {
                    input: Box::new(joined),
                    predicate: BoundExpr::conjoin(rest),
                })
            }
        }
        other => Ok(LogicalPlan::Filter {
            input: Box::new(other),
            predicate,
        }),
    }
}

/// Does every column the predicate references map to a plain column in the
/// projection list?
fn remappable(predicate: &BoundExpr, exprs: &[BoundExpr]) -> bool {
    let mut cols = Vec::new();
    predicate.collect_columns(&mut cols);
    cols.iter()
        .all(|&i| matches!(exprs.get(i), Some(BoundExpr::Column(_))))
}

/// Split an `AND` tree into conjuncts.
pub fn split_conjuncts(e: &BoundExpr) -> Vec<BoundExpr> {
    match e {
        BoundExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// Is `e` an equality between a left-only and a right-only expression
/// (relative to a split at column `la`)? Returns (left key, right key in
/// combined offsets).
fn as_equi(e: &BoundExpr, la: usize) -> Option<(BoundExpr, BoundExpr)> {
    let BoundExpr::Binary {
        op: BinaryOp::Eq,
        left,
        right,
    } = e
    else {
        return None;
    };
    if left.contains_subquery() || right.contains_subquery() {
        return None;
    }
    let side = |x: &BoundExpr| -> Option<bool> {
        // Some(true) = all-left, Some(false) = all-right, None = mixed/none
        let mut cols = Vec::new();
        x.collect_columns(&mut cols);
        if cols.is_empty() {
            return None;
        }
        if cols.iter().all(|&i| i < la) {
            Some(true)
        } else if cols.iter().all(|&i| i >= la) {
            Some(false)
        } else {
            None
        }
    };
    match (side(left), side(right)) {
        (Some(true), Some(false)) => Some((*left.clone(), *right.clone())),
        (Some(false), Some(true)) => Some((*right.clone(), *left.clone())),
        _ => None,
    }
}

/// Split a predicate over a join into equi pairs (left expr, right expr in
/// right-local offsets) and a residual.
fn split_equi(pred: &BoundExpr, la: usize) -> (Vec<(BoundExpr, BoundExpr)>, Option<BoundExpr>) {
    let mut equi = Vec::new();
    let mut rest = Vec::new();
    for c in split_conjuncts(pred) {
        match as_equi(&c, la) {
            Some((l, r)) => equi.push((l, r.map_columns(&|i| i - la))),
            None => rest.push(c),
        }
    }
    let residual = if rest.is_empty() {
        None
    } else {
        Some(BoundExpr::conjoin(rest))
    };
    (equi, residual)
}

/// Fold literal-only expressions into literals (best effort; errors and
/// anything touching columns/subqueries are left intact).
fn fold_expr(e: BoundExpr, catalog: &Catalog) -> BoundExpr {
    if matches!(e, BoundExpr::Literal(_)) {
        return e;
    }
    if e.references_columns() || e.contains_subquery() || contains_outer_ref(&e) {
        // Fold children of AND/OR even if the whole can't fold.
        if let BoundExpr::Binary { op, left, right } = e {
            return BoundExpr::Binary {
                op,
                left: Box::new(fold_expr(*left, catalog)),
                right: Box::new(fold_expr(*right, catalog)),
            };
        }
        return e;
    }
    let mut env = EvalEnv::new(catalog);
    match eval(&e, &[], &mut env) {
        Ok(v) => BoundExpr::Literal(v),
        Err(_) => e, // leave runtime errors to execution time
    }
}

fn contains_outer_ref(e: &BoundExpr) -> bool {
    let mut found = false;
    e.visit(&mut |x| {
        if matches!(x, BoundExpr::OuterRef { .. }) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType, TableSchema};
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, cols) in [("r", 2usize), ("s", 2)] {
            let columns: Vec<Column> = (0..cols)
                .map(|i| Column::new(format!("c{i}"), DataType::Int))
                .collect();
            c.create_table(TableSchema::new(name, columns, &[]).unwrap())
                .unwrap();
        }
        c
    }

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column(i)
    }

    fn eq(l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn lit(v: i64) -> BoundExpr {
        BoundExpr::Literal(Value::Int(v))
    }

    #[test]
    fn filter_over_cross_becomes_hash_join() {
        let c = catalog();
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::CrossJoin {
                left: Box::new(LogicalPlan::Scan { table: "r".into() }),
                right: Box::new(LogicalPlan::Scan { table: "s".into() }),
            }),
            predicate: eq(col(0), col(2)),
        };
        let opt = optimize(plan, &c).unwrap();
        let LogicalPlan::HashJoin {
            left_keys,
            right_keys,
            ..
        } = opt
        else {
            panic!("expected hash join, got {opt:?}")
        };
        assert_eq!(left_keys, vec![col(0)]);
        assert_eq!(right_keys, vec![col(0)], "right key rebased to right side");
    }

    #[test]
    fn single_side_conjuncts_push_down() {
        let c = catalog();
        let pred = eq(col(0), col(2))
            .and(eq(col(1), lit(5)))
            .and(eq(col(3), lit(7)));
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::CrossJoin {
                left: Box::new(LogicalPlan::Scan { table: "r".into() }),
                right: Box::new(LogicalPlan::Scan { table: "s".into() }),
            }),
            predicate: pred,
        };
        let opt = optimize(plan, &c).unwrap();
        let LogicalPlan::HashJoin { left, right, .. } = opt else {
            panic!("{opt:?}")
        };
        assert!(
            matches!(*left, LogicalPlan::Filter { .. }),
            "left filter pushed"
        );
        let LogicalPlan::Filter { predicate, .. } = *right else {
            panic!()
        };
        // right-side predicate rebased: col(3) -> col(1)
        assert_eq!(predicate, eq(col(1), lit(7)));
    }

    #[test]
    fn non_equi_stays_as_residual_filter() {
        let c = catalog();
        let pred = BoundExpr::Binary {
            op: BinaryOp::Lt,
            left: Box::new(col(0)),
            right: Box::new(col(2)),
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::CrossJoin {
                left: Box::new(LogicalPlan::Scan { table: "r".into() }),
                right: Box::new(LogicalPlan::Scan { table: "s".into() }),
            }),
            predicate: pred.clone(),
        };
        let opt = optimize(plan, &c).unwrap();
        let LogicalPlan::Filter { input, predicate } = opt else {
            panic!("{opt:?}")
        };
        assert_eq!(predicate, pred);
        assert!(matches!(*input, LogicalPlan::CrossJoin { .. }));
    }

    #[test]
    fn constant_folding_collapses_filters() {
        let c = catalog();
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan { table: "r".into() }),
            predicate: eq(lit(1), lit(1)),
        };
        let opt = optimize(plan, &c).unwrap();
        assert!(
            matches!(opt, LogicalPlan::Scan { .. }),
            "true filter removed: {opt:?}"
        );
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan { table: "r".into() }),
            predicate: eq(lit(1), lit(2)),
        };
        let opt = optimize(plan, &c).unwrap();
        assert!(
            matches!(opt, LogicalPlan::Empty { arity: 2 }),
            "false filter empties: {opt:?}"
        );
    }

    #[test]
    fn left_nested_loop_with_equi_becomes_left_hash_join() {
        let c = catalog();
        let plan = LogicalPlan::NestedLoopJoin {
            left: Box::new(LogicalPlan::Scan { table: "r".into() }),
            right: Box::new(LogicalPlan::Scan { table: "s".into() }),
            predicate: Some(eq(col(0), col(2))),
            join_type: JoinType::Left,
        };
        let opt = optimize(plan, &c).unwrap();
        assert!(
            matches!(
                opt,
                LogicalPlan::HashJoin {
                    join_type: JoinType::Left,
                    ..
                }
            ),
            "{opt:?}"
        );
    }

    #[test]
    fn filter_pushes_through_project_and_distinct() {
        // Filter(Project(CrossJoin)) with a column-only projection becomes
        // Project(HashJoin) — the shape SJUD SQL rendering produces.
        let c = catalog();
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(LogicalPlan::CrossJoin {
                    left: Box::new(LogicalPlan::Scan { table: "r".into() }),
                    right: Box::new(LogicalPlan::Scan { table: "s".into() }),
                }),
                exprs: vec![col(1), col(0), col(2), col(3)], // permuted columns
            }),
            predicate: eq(col(1), col(2)), // output cols 1,2 = input cols 0,2
        };
        let opt = optimize(plan, &c).unwrap();
        let LogicalPlan::Project { input, .. } = opt else {
            panic!("{opt:?}")
        };
        let LogicalPlan::HashJoin {
            left_keys,
            right_keys,
            ..
        } = *input
        else {
            panic!("expected hash join under project: {input:?}")
        };
        assert_eq!(left_keys, vec![col(0)]);
        assert_eq!(right_keys, vec![col(0)]);

        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Distinct {
                input: Box::new(LogicalPlan::CrossJoin {
                    left: Box::new(LogicalPlan::Scan { table: "r".into() }),
                    right: Box::new(LogicalPlan::Scan { table: "s".into() }),
                }),
            }),
            predicate: eq(col(0), col(2)),
        };
        let opt = optimize(plan, &c).unwrap();
        let LogicalPlan::Distinct { input } = opt else {
            panic!("{opt:?}")
        };
        assert!(matches!(*input, LogicalPlan::HashJoin { .. }));
    }

    #[test]
    fn filter_not_pushed_through_computed_projection() {
        let c = catalog();
        let computed = BoundExpr::Binary {
            op: BinaryOp::Add,
            left: Box::new(col(0)),
            right: Box::new(lit(1)),
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(LogicalPlan::Scan { table: "r".into() }),
                exprs: vec![computed],
            }),
            predicate: eq(col(0), lit(5)),
        };
        let opt = optimize(plan, &c).unwrap();
        assert!(
            matches!(opt, LogicalPlan::Filter { .. }),
            "computed projections block pushdown: {opt:?}"
        );
    }

    #[test]
    fn subquery_predicates_are_not_moved() {
        let c = catalog();
        let sub = BoundExpr::Exists {
            plan: Box::new(LogicalPlan::Scan { table: "s".into() }),
            negated: false,
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::CrossJoin {
                left: Box::new(LogicalPlan::Scan { table: "r".into() }),
                right: Box::new(LogicalPlan::Scan { table: "s".into() }),
            }),
            predicate: sub.clone(),
        };
        let opt = optimize(plan, &c).unwrap();
        let LogicalPlan::Filter { predicate, .. } = opt else {
            panic!("{opt:?}")
        };
        assert_eq!(predicate, sub);
    }
}
