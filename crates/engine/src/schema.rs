//! Column types, table schemas and the shared error type.

use crate::value::Value;
use hippo_sql::TypeName;
use std::fmt;

/// Engine column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Does `value` inhabit this type (NULL inhabits all)?
    pub fn admits(self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) => true,
            (DataType::Int, Value::Int(_)) => true,
            // Integers are accepted into float columns (widening).
            (DataType::Float, Value::Float(_) | Value::Int(_)) => true,
            (DataType::Text, Value::Text(_)) => true,
            (DataType::Bool, Value::Bool(_)) => true,
            _ => false,
        }
    }

    /// Coerce `value` for storage in a column of this type (int → float
    /// widening only). Returns `None` when the value does not fit.
    pub fn coerce(self, value: Value) -> Option<Value> {
        match (self, value) {
            (_, Value::Null) => Some(Value::Null),
            (DataType::Float, Value::Int(v)) => Some(Value::Float(v as f64)),
            (ty, v) if ty.admits(&v) => Some(v),
            _ => None,
        }
    }
}

impl From<TypeName> for DataType {
    fn from(t: TypeName) -> Self {
        match t {
            TypeName::Int => DataType::Int,
            TypeName::Float => DataType::Float,
            TypeName::Text => DataType::Text,
            TypeName::Bool => DataType::Bool,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "BIGINT"),
            DataType::Float => write!(f, "DOUBLE PRECISION"),
            DataType::Text => write!(f, "TEXT"),
            DataType::Bool => write!(f, "BOOLEAN"),
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lower-cased unless the user quoted it).
    pub name: String,
    /// Column type.
    pub ty: DataType,
    /// `NOT NULL` constraint.
    pub not_null: bool,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into(),
            ty,
            not_null: false,
        }
    }

    /// Mark the column `NOT NULL`.
    pub fn not_null(mut self) -> Column {
        self.not_null = true;
        self
    }
}

/// A table schema: named, ordered columns plus an optional primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Indices of primary-key columns (empty = no key declared).
    pub primary_key: Vec<usize>,
}

impl TableSchema {
    /// Build a schema; `primary_key` lists column names.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<Column>,
        primary_key: &[&str],
    ) -> Result<TableSchema, EngineError> {
        let name = name.into();
        let mut schema = TableSchema {
            name,
            columns,
            primary_key: Vec::new(),
        };
        let mut seen = std::collections::HashSet::new();
        for c in &schema.columns {
            if !seen.insert(c.name.clone()) {
                return Err(EngineError::new(format!(
                    "duplicate column {:?} in table {:?}",
                    c.name, schema.name
                )));
            }
        }
        for pk in primary_key {
            let idx = schema.column_index(pk).ok_or_else(|| {
                EngineError::new(format!(
                    "primary key column {pk:?} not found in table {:?}",
                    schema.name
                ))
            })?;
            schema.primary_key.push(idx);
        }
        Ok(schema)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Validate and coerce a row for insertion.
    pub fn check_row(&self, row: Vec<Value>) -> Result<Vec<Value>, EngineError> {
        if row.len() != self.columns.len() {
            return Err(EngineError::new(format!(
                "table {:?} expects {} values, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        row.into_iter()
            .zip(&self.columns)
            .map(|(v, c)| {
                if v.is_null() && c.not_null {
                    return Err(EngineError::new(format!(
                        "null value in NOT NULL column {:?} of table {:?}",
                        c.name, self.name
                    )));
                }
                c.ty.coerce(v.clone()).ok_or_else(|| {
                    EngineError::new(format!(
                        "type mismatch for column {:?} of table {:?}: expected {}, got {}",
                        c.name,
                        self.name,
                        c.ty,
                        v.type_name()
                    ))
                })
            })
            .collect()
    }
}

/// Structured classification of an [`EngineError`].
///
/// `General` covers ordinary planning/execution failures; the remaining
/// kinds form the resource-governance and fault-tolerance taxonomy:
/// callers match on them to distinguish "the query was wrong" from "the
/// call ran out of budget / was cancelled / a worker died".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Ordinary failure (parse, bind, type, execution).
    General,
    /// A resource budget was exhausted at `stage`. For deadlines,
    /// `spent`/`limit` are microseconds; for row budgets, rows.
    Budget {
        /// Pipeline stage that observed exhaustion.
        stage: &'static str,
        /// Amount spent when the trip was observed.
        spent: u64,
        /// The configured limit (0 for a forced/injected trip).
        limit: u64,
    },
    /// The call was cancelled via a cancel handle at `stage`.
    Cancelled {
        /// Pipeline stage that observed the cancellation.
        stage: &'static str,
    },
    /// A worker thread panicked while running `stage`; the panic was
    /// contained to the call that spawned it.
    WorkerPanic {
        /// Pipeline stage whose pool the worker belonged to.
        stage: &'static str,
        /// Index of the shard/task the worker was executing.
        shard: usize,
    },
    /// A service shed this request at admission: capacity and queue are
    /// full. The request never ran; retry after the hinted delay.
    Overloaded {
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The service is draining for shutdown; new requests are rejected
    /// (in-flight ones finish or trip their budgets).
    Shutdown,
    /// A durability directory is already exclusively held by another
    /// engine (this process or another); double-opening is refused
    /// rather than risking interleaved log writes.
    Locked,
    /// The write was sent to a replica. Replicas serve reads from
    /// replayed epochs but never accept writes — the client must
    /// resubmit to the primary of the carried fencing term.
    NotPrimary {
        /// The replication fencing term the replica currently follows.
        term: u64,
    },
}

/// The engine error type (also used by the planner and executor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// Human-readable message.
    pub message: String,
    /// Structured classification (defaults to [`ErrorKind::General`]).
    pub kind: ErrorKind,
}

impl EngineError {
    /// Construct from a message.
    pub fn new(message: impl Into<String>) -> EngineError {
        EngineError {
            message: message.into(),
            kind: ErrorKind::General,
        }
    }

    /// A budget-exhaustion error (see [`ErrorKind::Budget`]).
    pub fn budget(stage: &'static str, spent: u64, limit: u64) -> EngineError {
        EngineError {
            message: format!("budget exhausted at stage {stage:?} (spent {spent}, limit {limit})"),
            kind: ErrorKind::Budget {
                stage,
                spent,
                limit,
            },
        }
    }

    /// A cooperative-cancellation error (see [`ErrorKind::Cancelled`]).
    pub fn cancelled(stage: &'static str) -> EngineError {
        EngineError {
            message: format!("call cancelled at stage {stage:?}"),
            kind: ErrorKind::Cancelled { stage },
        }
    }

    /// A contained worker-panic error (see [`ErrorKind::WorkerPanic`]).
    pub fn worker_panic(stage: &'static str, shard: usize, detail: &str) -> EngineError {
        EngineError {
            message: format!("worker panicked in stage {stage:?}, shard {shard}: {detail}"),
            kind: ErrorKind::WorkerPanic { stage, shard },
        }
    }

    /// A load-shed error (see [`ErrorKind::Overloaded`]): the request
    /// was rejected at admission, `retry_after` hints the back-off.
    pub fn overloaded(retry_after: std::time::Duration) -> EngineError {
        let retry_after_ms = retry_after.as_millis() as u64;
        EngineError {
            message: format!(
                "service overloaded: request shed at admission (retry after {retry_after_ms}ms)"
            ),
            kind: ErrorKind::Overloaded { retry_after_ms },
        }
    }

    /// A drain-rejection error (see [`ErrorKind::Shutdown`]).
    pub fn shutdown() -> EngineError {
        EngineError {
            message: "service is shutting down: new requests are rejected".to_string(),
            kind: ErrorKind::Shutdown,
        }
    }

    /// A lock-contention error (see [`ErrorKind::Locked`]): the
    /// durability directory at `path` is held by another engine.
    pub fn locked(path: impl std::fmt::Display) -> EngineError {
        EngineError {
            message: format!("durability directory {path} is locked by another engine"),
            kind: ErrorKind::Locked,
        }
    }

    /// A replica refusing a write (see [`ErrorKind::NotPrimary`]):
    /// `term` is the fencing term the replica currently follows.
    pub fn not_primary(term: u64) -> EngineError {
        EngineError {
            message: format!(
                "not primary: this node is a replica (fencing term {term}); \
                 writes must go to the primary"
            ),
            kind: ErrorKind::NotPrimary { term },
        }
    }

    /// Is this a budget-exhaustion error?
    pub fn is_budget(&self) -> bool {
        matches!(self.kind, ErrorKind::Budget { .. })
    }

    /// Is this a cancellation error?
    pub fn is_cancelled(&self) -> bool {
        matches!(self.kind, ErrorKind::Cancelled { .. })
    }

    /// Is this a contained worker panic?
    pub fn is_worker_panic(&self) -> bool {
        matches!(self.kind, ErrorKind::WorkerPanic { .. })
    }

    /// Was the request shed at admission?
    pub fn is_overloaded(&self) -> bool {
        matches!(self.kind, ErrorKind::Overloaded { .. })
    }

    /// Was the request rejected by a draining service?
    pub fn is_shutdown(&self) -> bool {
        matches!(self.kind, ErrorKind::Shutdown)
    }

    /// Is the durability directory held by another engine?
    pub fn is_locked(&self) -> bool {
        matches!(self.kind, ErrorKind::Locked)
    }

    /// Was the write refused because this node is a replica?
    pub fn is_not_primary(&self) -> bool {
        matches!(self.kind, ErrorKind::NotPrimary { .. })
    }

    /// The back-off hint of an [`ErrorKind::Overloaded`] error.
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        match self.kind {
            ErrorKind::Overloaded { retry_after_ms } => {
                Some(std::time::Duration::from_millis(retry_after_ms))
            }
            _ => None,
        }
    }

    /// Budget or cancellation — the errors degraded mode may absorb
    /// into a truncated-but-sound partial answer.
    pub fn is_governance(&self) -> bool {
        self.is_budget() || self.is_cancelled()
    }

    /// Transient service conditions a client may retry after backing
    /// off: shed at admission or cancelled mid-flight. Budget trips and
    /// worker panics are *not* retryable by default — the same request
    /// would trip the same budget, and a panic needs investigation.
    pub fn is_retryable(&self) -> bool {
        self.is_overloaded() || self.is_cancelled()
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine error: {}", self.message)
    }
}

impl std::error::Error for EngineError {}

impl From<hippo_sql::ParseError> for EngineError {
    fn from(e: hippo_sql::ParseError) -> Self {
        EngineError::new(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp_schema() -> TableSchema {
        TableSchema::new(
            "emp",
            vec![
                Column::new("name", DataType::Text).not_null(),
                Column::new("salary", DataType::Int),
                Column::new("rate", DataType::Float),
            ],
            &["name"],
        )
        .unwrap()
    }

    #[test]
    fn schema_lookup() {
        let s = emp_schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column_index("salary"), Some(1));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.primary_key, vec![0]);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("a", DataType::Text),
            ],
            &[],
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate column"));
    }

    #[test]
    fn unknown_pk_rejected() {
        let err = TableSchema::new("t", vec![Column::new("a", DataType::Int)], &["b"]).unwrap_err();
        assert!(err.message.contains("primary key"));
    }

    #[test]
    fn check_row_validates_arity_nullability_types() {
        let s = emp_schema();
        assert!(s.check_row(vec![Value::text("a")]).is_err(), "arity");
        assert!(
            s.check_row(vec![Value::Null, Value::Int(1), Value::Null])
                .is_err(),
            "not null"
        );
        assert!(
            s.check_row(vec![Value::text("a"), Value::text("x"), Value::Null])
                .is_err(),
            "type"
        );
        let row = s
            .check_row(vec![Value::text("a"), Value::Int(1), Value::Int(2)])
            .unwrap();
        assert_eq!(row[2], Value::Float(2.0), "int widens to float column");
    }

    #[test]
    fn service_error_kinds_classify() {
        let e = EngineError::overloaded(std::time::Duration::from_millis(25));
        assert!(e.is_overloaded() && e.is_retryable() && !e.is_governance());
        assert_eq!(e.retry_after(), Some(std::time::Duration::from_millis(25)));
        assert_eq!(e.kind, ErrorKind::Overloaded { retry_after_ms: 25 });
        let e = EngineError::shutdown();
        assert!(e.is_shutdown() && !e.is_retryable());
        assert_eq!(e.retry_after(), None);
        assert!(EngineError::cancelled("prover").is_retryable());
        assert!(!EngineError::budget("prover", 1, 1).is_retryable());
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            DataType::Float.coerce(Value::Int(3)),
            Some(Value::Float(3.0))
        );
        assert_eq!(DataType::Int.coerce(Value::Float(3.0)), None);
        assert_eq!(DataType::Text.coerce(Value::Null), Some(Value::Null));
        assert!(DataType::Bool.admits(&Value::Bool(true)));
        assert!(!DataType::Bool.admits(&Value::Int(1)));
    }
}
