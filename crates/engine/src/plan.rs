//! Logical and physical query plans.
//!
//! The binder lowers a SQL AST into a [`LogicalPlan`]; the logical
//! optimizer rewrites it (constant folding, predicate pushdown, join
//! conversion); then [`crate::optimize::physicalize`] lowers the result
//! into a [`PhysicalPlan`] — the tree the production executor
//! ([`crate::exec::execute_physical`]) runs. Plans carry only column
//! *offsets* — output names live in the binder's result
//! ([`crate::bind::BoundQuery`]).
//!
//! The logical → physical split is where **access paths** are chosen:
//! a logical `Filter` over a `Scan` becomes either a streamed
//! [`PhysicalPlan::SeqScan`]+[`PhysicalPlan::FilterExec`] pipeline or an
//! O(1) [`PhysicalPlan::IndexLookup`] against one of the table's
//! secondary hash indexes (see [`crate::table::Table`]). The physical
//! tree renders `EXPLAIN`-style through its [`std::fmt::Display`] impl,
//! one operator per line, children indented.

use crate::catalog::Catalog;
use crate::expr::BoundExpr;
use crate::schema::EngineError;
use crate::value::Value;

/// Join types supported by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner join.
    Inner,
    /// Left outer join (unmatched left rows padded with NULLs).
    Left,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(expr)` (non-null values)
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl AggFunc {
    /// Look up by lower-case name (excluding `COUNT(*)`, which the binder
    /// special-cases).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => return None,
        })
    }
}

/// One aggregate computation in an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Argument (`None` only for `COUNT(*)`).
    pub arg: Option<BoundExpr>,
    /// `DISTINCT` aggregation.
    pub distinct: bool,
}

/// A logical plan node. Execution is bottom-up and materialising.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Produces no rows, with the given arity.
    Empty {
        /// Output arity.
        arity: usize,
    },
    /// Literal rows (each row a vector of constant expressions).
    Values {
        /// The rows.
        rows: Vec<Vec<BoundExpr>>,
        /// Output arity.
        arity: usize,
    },
    /// Full scan of a base table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Filter rows by a boolean predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Keep rows where this evaluates to `TRUE`.
        predicate: BoundExpr,
    },
    /// Compute output columns from input rows.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions.
        exprs: Vec<BoundExpr>,
    },
    /// Cartesian product.
    CrossJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Equi-join executed with a hash table on the right side.
    HashJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Key expressions over left rows.
        left_keys: Vec<BoundExpr>,
        /// Key expressions over right rows.
        right_keys: Vec<BoundExpr>,
        /// Residual predicate over the concatenated row.
        residual: Option<BoundExpr>,
        /// Inner or left outer.
        join_type: JoinType,
    },
    /// General join evaluated by nested loops.
    NestedLoopJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join predicate over the concatenated row (`None` = always true).
        predicate: Option<BoundExpr>,
        /// Inner or left outer.
        join_type: JoinType,
    },
    /// Set/bag union.
    Union {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Bag semantics (`UNION ALL`).
        all: bool,
    },
    /// Set/bag difference.
    Except {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Bag semantics (`EXCEPT ALL`).
        all: bool,
    },
    /// Set/bag intersection.
    Intersect {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Bag semantics (`INTERSECT ALL`).
        all: bool,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Grouped aggregation. Output = group expressions, then aggregates.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping expressions (empty = single global group).
        group_exprs: Vec<BoundExpr>,
        /// Aggregates.
        aggregates: Vec<AggExpr>,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, descending)` keys, major first.
        keys: Vec<(BoundExpr, bool)>,
    },
    /// Limit/offset.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows to emit (`None` = unbounded).
        limit: Option<u64>,
        /// Rows to skip.
        offset: u64,
    },
}

impl LogicalPlan {
    /// Output arity of the plan.
    pub fn arity(&self, catalog: &Catalog) -> Result<usize, EngineError> {
        Ok(match self {
            LogicalPlan::Empty { arity } | LogicalPlan::Values { arity, .. } => *arity,
            LogicalPlan::Scan { table } => catalog.table(table)?.schema.arity(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.arity(catalog)?,
            LogicalPlan::Project { exprs, .. } => exprs.len(),
            LogicalPlan::CrossJoin { left, right }
            | LogicalPlan::HashJoin { left, right, .. }
            | LogicalPlan::NestedLoopJoin { left, right, .. } => {
                left.arity(catalog)? + right.arity(catalog)?
            }
            LogicalPlan::Union { left, .. }
            | LogicalPlan::Except { left, .. }
            | LogicalPlan::Intersect { left, .. } => left.arity(catalog)?,
            LogicalPlan::Aggregate {
                group_exprs,
                aggregates,
                ..
            } => group_exprs.len() + aggregates.len(),
        })
    }

    /// A plan producing exactly one empty row (used for `SELECT` without
    /// `FROM`).
    pub fn one_row() -> LogicalPlan {
        LogicalPlan::Values {
            rows: vec![Vec::new()],
            arity: 0,
        }
    }

    /// Literal single-row values plan.
    pub fn values_literal(rows: Vec<Vec<Value>>, arity: usize) -> LogicalPlan {
        LogicalPlan::Values {
            rows: rows
                .into_iter()
                .map(|r| r.into_iter().map(BoundExpr::Literal).collect())
                .collect(),
            arity,
        }
    }

    /// Visit all nodes of the plan tree (pre-order), not descending into
    /// subquery plans inside expressions.
    pub fn visit(&self, f: &mut impl FnMut(&LogicalPlan)) {
        f(self);
        match self {
            LogicalPlan::Empty { .. } | LogicalPlan::Values { .. } | LogicalPlan::Scan { .. } => {}
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.visit(f),
            LogicalPlan::CrossJoin { left, right }
            | LogicalPlan::HashJoin { left, right, .. }
            | LogicalPlan::NestedLoopJoin { left, right, .. }
            | LogicalPlan::Union { left, right, .. }
            | LogicalPlan::Except { left, right, .. }
            | LogicalPlan::Intersect { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
        }
    }

    /// Count plan nodes (diagnostics / tests).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

// Plans are pure owned data (no interior mutability, no borrows), so a
// plan bound once — e.g. against a [`crate::db::DbSnapshot`]'s catalog —
// may be evaluated concurrently from many threads via
// [`crate::exec::execute_read_only`]. Compile-time proof.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<LogicalPlan>();
    assert_sync_send::<PhysicalPlan>();
};

/// A physical plan node: what the production executor
/// ([`crate::exec::execute_physical`]) actually runs. Produced from an
/// optimized [`LogicalPlan`] by [`crate::optimize::physicalize`], which
/// maps every logical operator 1:1 **except** access paths: a `Filter`
/// over a `Scan` whose equality conjuncts cover one of the table's hash
/// indexes becomes an [`PhysicalPlan::IndexLookup`] (plus a residual
/// [`PhysicalPlan::FilterExec`] for the remaining conjuncts).
///
/// The executor streams the row-wise pipeline shapes —
/// `LimitExec`/`FilterExec`/`ProjectExec` directly over a source — with
/// early exit, which is what turns a membership probe
/// (`SELECT 1 FROM t WHERE … LIMIT 1`) into a bounded amount of work;
/// everything else materialises bottom-up exactly like the logical
/// reference executor.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Produces no rows, with the given arity.
    Empty {
        /// Output arity.
        arity: usize,
    },
    /// Literal rows.
    Values {
        /// The rows.
        rows: Vec<Vec<BoundExpr>>,
        /// Output arity.
        arity: usize,
    },
    /// Full scan of a base table, in slot order.
    SeqScan {
        /// Table name.
        table: String,
    },
    /// O(1) probe of a secondary hash index: produces the live rows
    /// whose `index_cols` values equal the evaluated `key`, in slot
    /// order (identical to what a `SeqScan` + equality filter yields).
    /// A `NULL` key component produces no rows (SQL equality). Key
    /// expressions must be row-independent (literals or
    /// [`BoundExpr::Param`]s).
    IndexLookup {
        /// Table name.
        table: String,
        /// The indexed column set (an existing index of the table).
        index_cols: Vec<usize>,
        /// Key expressions, parallel to `index_cols`.
        key: Vec<BoundExpr>,
    },
    /// Filter rows by a boolean predicate (streams over a source input).
    FilterExec {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Keep rows where this evaluates to `TRUE`.
        predicate: BoundExpr,
    },
    /// Compute output columns from input rows.
    ProjectExec {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Output expressions.
        exprs: Vec<BoundExpr>,
    },
    /// Cartesian product.
    CrossJoinExec {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Equi-join executed with a hash table on the right side.
    HashJoinExec {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Key expressions over left rows.
        left_keys: Vec<BoundExpr>,
        /// Key expressions over right rows.
        right_keys: Vec<BoundExpr>,
        /// Residual predicate over the concatenated row.
        residual: Option<BoundExpr>,
        /// Inner or left outer.
        join_type: JoinType,
    },
    /// General join evaluated by nested loops.
    NestedLoopJoinExec {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join predicate over the concatenated row (`None` = always true).
        predicate: Option<BoundExpr>,
        /// Inner or left outer.
        join_type: JoinType,
    },
    /// Set/bag union.
    UnionExec {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Bag semantics (`UNION ALL`).
        all: bool,
    },
    /// Set/bag difference.
    ExceptExec {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Bag semantics (`EXCEPT ALL`).
        all: bool,
    },
    /// Set/bag intersection.
    IntersectExec {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Bag semantics (`INTERSECT ALL`).
        all: bool,
    },
    /// Duplicate elimination.
    DistinctExec {
        /// Input plan.
        input: Box<PhysicalPlan>,
    },
    /// Grouped aggregation. Output = group expressions, then aggregates.
    AggregateExec {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Grouping expressions (empty = single global group).
        group_exprs: Vec<BoundExpr>,
        /// Aggregates.
        aggregates: Vec<AggExpr>,
    },
    /// Sort.
    SortExec {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// `(expression, descending)` keys, major first.
        keys: Vec<(BoundExpr, bool)>,
    },
    /// Limit/offset (streams its pipeline input with early exit).
    LimitExec {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Maximum rows to emit (`None` = unbounded).
        limit: Option<u64>,
        /// Rows to skip.
        offset: u64,
    },
}

impl PhysicalPlan {
    /// Output arity of the plan.
    pub fn arity(&self, catalog: &Catalog) -> Result<usize, EngineError> {
        Ok(match self {
            PhysicalPlan::Empty { arity } | PhysicalPlan::Values { arity, .. } => *arity,
            PhysicalPlan::SeqScan { table } | PhysicalPlan::IndexLookup { table, .. } => {
                catalog.table(table)?.schema.arity()
            }
            PhysicalPlan::FilterExec { input, .. }
            | PhysicalPlan::DistinctExec { input }
            | PhysicalPlan::SortExec { input, .. }
            | PhysicalPlan::LimitExec { input, .. } => input.arity(catalog)?,
            PhysicalPlan::ProjectExec { exprs, .. } => exprs.len(),
            PhysicalPlan::CrossJoinExec { left, right }
            | PhysicalPlan::HashJoinExec { left, right, .. }
            | PhysicalPlan::NestedLoopJoinExec { left, right, .. } => {
                left.arity(catalog)? + right.arity(catalog)?
            }
            PhysicalPlan::UnionExec { left, .. }
            | PhysicalPlan::ExceptExec { left, .. }
            | PhysicalPlan::IntersectExec { left, .. } => left.arity(catalog)?,
            PhysicalPlan::AggregateExec {
                group_exprs,
                aggregates,
                ..
            } => group_exprs.len() + aggregates.len(),
        })
    }

    /// Visit all nodes of the plan tree (pre-order), not descending into
    /// subquery plans inside expressions.
    pub fn visit(&self, f: &mut impl FnMut(&PhysicalPlan)) {
        f(self);
        match self {
            PhysicalPlan::Empty { .. }
            | PhysicalPlan::Values { .. }
            | PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::IndexLookup { .. } => {}
            PhysicalPlan::FilterExec { input, .. }
            | PhysicalPlan::ProjectExec { input, .. }
            | PhysicalPlan::DistinctExec { input }
            | PhysicalPlan::AggregateExec { input, .. }
            | PhysicalPlan::SortExec { input, .. }
            | PhysicalPlan::LimitExec { input, .. } => input.visit(f),
            PhysicalPlan::CrossJoinExec { left, right }
            | PhysicalPlan::HashJoinExec { left, right, .. }
            | PhysicalPlan::NestedLoopJoinExec { left, right, .. }
            | PhysicalPlan::UnionExec { left, right, .. }
            | PhysicalPlan::ExceptExec { left, right, .. }
            | PhysicalPlan::IntersectExec { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
        }
    }

    /// Count the plan's base-table access paths: `(index_probes,
    /// scan_probes)` — how many [`PhysicalPlan::IndexLookup`] /
    /// [`PhysicalPlan::SeqScan`] sources one execution of this plan
    /// touches. Feeds the engine's probe counters (`DbStats` /
    /// snapshot statistics).
    pub fn access_paths(&self) -> (usize, usize) {
        let (mut idx, mut scan) = (0, 0);
        self.visit(&mut |p| match p {
            PhysicalPlan::IndexLookup { .. } => idx += 1,
            PhysicalPlan::SeqScan { .. } => scan += 1,
            _ => {}
        });
        (idx, scan)
    }

    /// Does any access path of this plan go through an index?
    pub fn uses_index(&self) -> bool {
        self.access_paths().0 > 0
    }

    fn fmt_indented(&self, f: &mut std::fmt::Formatter<'_>, depth: usize) -> std::fmt::Result {
        for _ in 0..depth {
            f.write_str("  ")?;
        }
        match self {
            PhysicalPlan::Empty { arity } => writeln!(f, "Empty arity={arity}"),
            PhysicalPlan::Values { rows, arity } => {
                writeln!(f, "Values rows={} arity={arity}", rows.len())
            }
            PhysicalPlan::SeqScan { table } => writeln!(f, "SeqScan {table}"),
            PhysicalPlan::IndexLookup {
                table,
                index_cols,
                key,
            } => {
                let cols: Vec<String> = index_cols.iter().map(|c| format!("#{c}")).collect();
                let keys: Vec<String> = key.iter().map(fmt_expr).collect();
                writeln!(
                    f,
                    "IndexLookup {table} index=({}) key=({})",
                    cols.join(", "),
                    keys.join(", ")
                )
            }
            PhysicalPlan::FilterExec { input, predicate } => {
                writeln!(f, "FilterExec {}", fmt_expr(predicate))?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::ProjectExec { input, exprs } => {
                let out: Vec<String> = exprs.iter().map(fmt_expr).collect();
                writeln!(f, "ProjectExec [{}]", out.join(", "))?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::CrossJoinExec { left, right } => {
                writeln!(f, "CrossJoinExec")?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::HashJoinExec {
                left,
                right,
                left_keys,
                right_keys,
                join_type,
                ..
            } => {
                let lk: Vec<String> = left_keys.iter().map(fmt_expr).collect();
                let rk: Vec<String> = right_keys.iter().map(fmt_expr).collect();
                writeln!(
                    f,
                    "HashJoinExec {:?} ({}) = ({})",
                    join_type,
                    lk.join(", "),
                    rk.join(", ")
                )?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::NestedLoopJoinExec {
                left,
                right,
                join_type,
                ..
            } => {
                writeln!(f, "NestedLoopJoinExec {join_type:?}")?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::UnionExec { left, right, all } => {
                writeln!(f, "UnionExec all={all}")?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::ExceptExec { left, right, all } => {
                writeln!(f, "ExceptExec all={all}")?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::IntersectExec { left, right, all } => {
                writeln!(f, "IntersectExec all={all}")?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::DistinctExec { input } => {
                writeln!(f, "DistinctExec")?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::AggregateExec {
                input,
                group_exprs,
                aggregates,
            } => {
                writeln!(
                    f,
                    "AggregateExec groups={} aggs={}",
                    group_exprs.len(),
                    aggregates.len()
                )?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::SortExec { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(e, desc)| format!("{}{}", fmt_expr(e), if *desc { " DESC" } else { "" }))
                    .collect();
                writeln!(f, "SortExec [{}]", ks.join(", "))?;
                input.fmt_indented(f, depth + 1)
            }
            PhysicalPlan::LimitExec {
                input,
                limit,
                offset,
            } => {
                match limit {
                    Some(l) => writeln!(f, "LimitExec limit={l} offset={offset}")?,
                    None => writeln!(f, "LimitExec offset={offset}")?,
                }
                input.fmt_indented(f, depth + 1)
            }
        }
    }
}

/// `EXPLAIN`-style rendering: one operator per line, children indented
/// two spaces — the access path actually chosen is visible at the leaf.
impl std::fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// Compact expression rendering for plan display (`#i` = column offset,
/// `$i` = prepared parameter).
fn fmt_expr(e: &BoundExpr) -> String {
    match e {
        BoundExpr::Literal(v) => format!("{v}"),
        BoundExpr::Column(i) => format!("#{i}"),
        BoundExpr::Param(i) => format!("${i}"),
        BoundExpr::OuterRef { level, index } => format!("outer[{level}].#{index}"),
        BoundExpr::Binary { op, left, right } => {
            format!("({} {} {})", fmt_expr(left), op.sql(), fmt_expr(right))
        }
        BoundExpr::Unary { op, expr } => {
            let op = match op {
                hippo_sql::UnaryOp::Not => "NOT",
                hippo_sql::UnaryOp::Neg => "-",
            };
            format!("({op} {})", fmt_expr(expr))
        }
        BoundExpr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            fmt_expr(expr),
            if *negated { "NOT " } else { "" }
        ),
        _ => "<expr>".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType, TableSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "t",
                vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Text),
                ],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn arity_propagates() {
        let c = catalog();
        let scan = LogicalPlan::Scan { table: "t".into() };
        assert_eq!(scan.arity(&c).unwrap(), 2);
        let join = LogicalPlan::CrossJoin {
            left: Box::new(scan.clone()),
            right: Box::new(scan.clone()),
        };
        assert_eq!(join.arity(&c).unwrap(), 4);
        let proj = LogicalPlan::Project {
            input: Box::new(join),
            exprs: vec![BoundExpr::Column(0)],
        };
        assert_eq!(proj.arity(&c).unwrap(), 1);
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan),
            group_exprs: vec![BoundExpr::Column(1)],
            aggregates: vec![AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
            }],
        };
        assert_eq!(agg.arity(&c).unwrap(), 2);
    }

    #[test]
    fn arity_errors_on_missing_table() {
        let c = catalog();
        let scan = LogicalPlan::Scan {
            table: "missing".into(),
        };
        assert!(scan.arity(&c).is_err());
    }

    #[test]
    fn node_count_counts() {
        let scan = LogicalPlan::Scan { table: "t".into() };
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Distinct {
                input: Box::new(scan),
            }),
            predicate: BoundExpr::true_(),
        };
        assert_eq!(plan.node_count(), 3);
    }

    #[test]
    fn one_row_has_single_empty_row() {
        let p = LogicalPlan::one_row();
        let LogicalPlan::Values { rows, arity } = p else {
            panic!()
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(arity, 0);
    }
}
