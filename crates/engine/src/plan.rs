//! Logical query plans.
//!
//! The binder lowers a SQL AST into a [`LogicalPlan`]; the optimizer
//! rewrites it; the executor materialises it. Plans carry only column
//! *offsets* — output names live in the binder's result ([`crate::bind::BoundQuery`]).

use crate::catalog::Catalog;
use crate::expr::BoundExpr;
use crate::schema::EngineError;
use crate::value::Value;

/// Join types supported by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner join.
    Inner,
    /// Left outer join (unmatched left rows padded with NULLs).
    Left,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(expr)` (non-null values)
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl AggFunc {
    /// Look up by lower-case name (excluding `COUNT(*)`, which the binder
    /// special-cases).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => return None,
        })
    }
}

/// One aggregate computation in an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Argument (`None` only for `COUNT(*)`).
    pub arg: Option<BoundExpr>,
    /// `DISTINCT` aggregation.
    pub distinct: bool,
}

/// A logical plan node. Execution is bottom-up and materialising.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Produces no rows, with the given arity.
    Empty {
        /// Output arity.
        arity: usize,
    },
    /// Literal rows (each row a vector of constant expressions).
    Values {
        /// The rows.
        rows: Vec<Vec<BoundExpr>>,
        /// Output arity.
        arity: usize,
    },
    /// Full scan of a base table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Filter rows by a boolean predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Keep rows where this evaluates to `TRUE`.
        predicate: BoundExpr,
    },
    /// Compute output columns from input rows.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions.
        exprs: Vec<BoundExpr>,
    },
    /// Cartesian product.
    CrossJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Equi-join executed with a hash table on the right side.
    HashJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Key expressions over left rows.
        left_keys: Vec<BoundExpr>,
        /// Key expressions over right rows.
        right_keys: Vec<BoundExpr>,
        /// Residual predicate over the concatenated row.
        residual: Option<BoundExpr>,
        /// Inner or left outer.
        join_type: JoinType,
    },
    /// General join evaluated by nested loops.
    NestedLoopJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join predicate over the concatenated row (`None` = always true).
        predicate: Option<BoundExpr>,
        /// Inner or left outer.
        join_type: JoinType,
    },
    /// Set/bag union.
    Union {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Bag semantics (`UNION ALL`).
        all: bool,
    },
    /// Set/bag difference.
    Except {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Bag semantics (`EXCEPT ALL`).
        all: bool,
    },
    /// Set/bag intersection.
    Intersect {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Bag semantics (`INTERSECT ALL`).
        all: bool,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Grouped aggregation. Output = group expressions, then aggregates.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping expressions (empty = single global group).
        group_exprs: Vec<BoundExpr>,
        /// Aggregates.
        aggregates: Vec<AggExpr>,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, descending)` keys, major first.
        keys: Vec<(BoundExpr, bool)>,
    },
    /// Limit/offset.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows to emit (`None` = unbounded).
        limit: Option<u64>,
        /// Rows to skip.
        offset: u64,
    },
}

impl LogicalPlan {
    /// Output arity of the plan.
    pub fn arity(&self, catalog: &Catalog) -> Result<usize, EngineError> {
        Ok(match self {
            LogicalPlan::Empty { arity } | LogicalPlan::Values { arity, .. } => *arity,
            LogicalPlan::Scan { table } => catalog.table(table)?.schema.arity(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.arity(catalog)?,
            LogicalPlan::Project { exprs, .. } => exprs.len(),
            LogicalPlan::CrossJoin { left, right }
            | LogicalPlan::HashJoin { left, right, .. }
            | LogicalPlan::NestedLoopJoin { left, right, .. } => {
                left.arity(catalog)? + right.arity(catalog)?
            }
            LogicalPlan::Union { left, .. }
            | LogicalPlan::Except { left, .. }
            | LogicalPlan::Intersect { left, .. } => left.arity(catalog)?,
            LogicalPlan::Aggregate {
                group_exprs,
                aggregates,
                ..
            } => group_exprs.len() + aggregates.len(),
        })
    }

    /// A plan producing exactly one empty row (used for `SELECT` without
    /// `FROM`).
    pub fn one_row() -> LogicalPlan {
        LogicalPlan::Values {
            rows: vec![Vec::new()],
            arity: 0,
        }
    }

    /// Literal single-row values plan.
    pub fn values_literal(rows: Vec<Vec<Value>>, arity: usize) -> LogicalPlan {
        LogicalPlan::Values {
            rows: rows
                .into_iter()
                .map(|r| r.into_iter().map(BoundExpr::Literal).collect())
                .collect(),
            arity,
        }
    }

    /// Visit all nodes of the plan tree (pre-order), not descending into
    /// subquery plans inside expressions.
    pub fn visit(&self, f: &mut impl FnMut(&LogicalPlan)) {
        f(self);
        match self {
            LogicalPlan::Empty { .. } | LogicalPlan::Values { .. } | LogicalPlan::Scan { .. } => {}
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.visit(f),
            LogicalPlan::CrossJoin { left, right }
            | LogicalPlan::HashJoin { left, right, .. }
            | LogicalPlan::NestedLoopJoin { left, right, .. }
            | LogicalPlan::Union { left, right, .. }
            | LogicalPlan::Except { left, right, .. }
            | LogicalPlan::Intersect { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
        }
    }

    /// Count plan nodes (diagnostics / tests).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

// Plans are pure owned data (no interior mutability, no borrows), so a
// plan bound once — e.g. against a [`crate::db::DbSnapshot`]'s catalog —
// may be evaluated concurrently from many threads via
// [`crate::exec::execute_read_only`]. Compile-time proof.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<LogicalPlan>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType, TableSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "t",
                vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Text),
                ],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn arity_propagates() {
        let c = catalog();
        let scan = LogicalPlan::Scan { table: "t".into() };
        assert_eq!(scan.arity(&c).unwrap(), 2);
        let join = LogicalPlan::CrossJoin {
            left: Box::new(scan.clone()),
            right: Box::new(scan.clone()),
        };
        assert_eq!(join.arity(&c).unwrap(), 4);
        let proj = LogicalPlan::Project {
            input: Box::new(join),
            exprs: vec![BoundExpr::Column(0)],
        };
        assert_eq!(proj.arity(&c).unwrap(), 1);
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan),
            group_exprs: vec![BoundExpr::Column(1)],
            aggregates: vec![AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
            }],
        };
        assert_eq!(agg.arity(&c).unwrap(), 2);
    }

    #[test]
    fn arity_errors_on_missing_table() {
        let c = catalog();
        let scan = LogicalPlan::Scan {
            table: "missing".into(),
        };
        assert!(scan.arity(&c).is_err());
    }

    #[test]
    fn node_count_counts() {
        let scan = LogicalPlan::Scan { table: "t".into() };
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Distinct {
                input: Box::new(scan),
            }),
            predicate: BoundExpr::true_(),
        };
        assert_eq!(plan.node_count(), 3);
    }

    #[test]
    fn one_row_has_single_empty_row() {
        let p = LogicalPlan::one_row();
        let LogicalPlan::Values { rows, arity } = p else {
            panic!()
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(arity, 0);
    }
}
