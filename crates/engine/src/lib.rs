//! # hippo-engine
//!
//! A self-contained in-memory SQL RDBMS used as the backend of the Hippo
//! consistent-query-answering system (the role PostgreSQL played in the
//! original EDBT 2004 demonstration).
//!
//! The engine offers:
//!
//! * a [`Database`] facade: SQL text in, rows out ([`Database::execute`],
//!   [`Database::query`]), plus bulk-load and direct catalog access;
//! * a name-resolving binder ([`bind`]) lowering the `hippo-sql` AST to
//!   [`plan::LogicalPlan`]s;
//! * a two-stage optimizer ([`optimize`]): logical rewrites (constant
//!   folding, predicate pushdown, cross-product → hash-join conversion)
//!   followed by lowering to a [`plan::PhysicalPlan`] with
//!   **access-path selection** — equality predicates over indexed
//!   columns become O(1) [`plan::PhysicalPlan::IndexLookup`] probes;
//! * a physical executor ([`exec::execute_physical`]) with streamed
//!   filter/limit pipelines, hash joins, set operations (set and bag),
//!   grouping/aggregation, sorting, and correlated `EXISTS` / `IN` /
//!   scalar subqueries — plus the fully materialising logical
//!   reference executor ([`exec::execute`]) it is differentially
//!   tested against;
//! * a **vectorized engine** ([`column`]): lazily maintained typed
//!   column stores per table (validity bitmaps, dictionary-encoded
//!   text) and batch-at-a-time filter/project/aggregate/hash-join
//!   over selection vectors, bit-identical to row mode (answers,
//!   errors, budget charges) and falling back to it for unconverted
//!   shapes — `EXPLAIN` shows which engine runs;
//! * row storage with **stable tuple identifiers** ([`table::Table`],
//!   [`table::TupleId`]) — the conflict hypergraph's vertices are physical
//!   tuples, so ids must survive unrelated deletions — and secondary
//!   hash indexes (auto-built on primary keys, or via `CREATE INDEX`)
//!   maintained incrementally through every mutation.
//!
//! ```
//! use hippo_engine::Database;
//! let mut db = Database::new();
//! db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
//! let r = db.query("SELECT b FROM t WHERE a = 2").unwrap();
//! assert_eq!(r.rows.len(), 1);
//! ```

pub mod bind;
pub mod budget;
pub mod catalog;
pub mod codec;
pub mod column;
pub mod db;
pub mod exec;
pub mod expr;
pub mod optimize;
pub mod plan;
pub mod schema;
pub mod table;
pub mod value;

pub use budget::{Budget, CancelHandle, CHECK_STRIDE};
pub use catalog::Catalog;
pub use column::{
    columnar_enabled, plan_uses_vectorized, set_columnar_override, ColumnBatch, ColumnData,
    ColumnStore, ColumnVector, BATCH_ROWS,
};
pub use db::{Database, DbSnapshot, DbStats, ExecResult, QueryResult, SnapshotStatsView};
pub use expr::BoundExpr;
pub use optimize::{physicalize, physicalize_with, PhysicalOptions};
pub use plan::{LogicalPlan, PhysicalPlan};
pub use schema::{Column, DataType, EngineError, ErrorKind, TableSchema};
pub use table::{Table, TupleId};
pub use value::{Row, Value};
