//! Property tests for the binary value/row/catalog codec.
//!
//! Two invariants, each over randomized inputs:
//!
//! 1. **Round trip**: any encodable value — every `Value` variant
//!    including `i64::MIN`/`MAX`, non-finite floats, NULLs and empty
//!    strings, in rows of any shape including empty — decodes back
//!    bit-identically (floats compared by bit pattern, so NaN and
//!    `-0.0` survive).
//! 2. **No panic on garbage**: decoding any truncation or single-byte
//!    corruption of a valid encoding returns an error or a value, but
//!    never panics and never over-allocates on hostile length
//!    prefixes.

use hippo_engine::codec::{self, Reader};
use hippo_engine::Value;
use proptest::prelude::*;

fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn arb_value() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        Just(Value::Int(i64::MIN)),
        Just(Value::Int(i64::MAX)),
        any::<f64>().prop_map(Value::Float),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(-0.0)),
        Just(Value::Float(f64::INFINITY)),
        Just(Value::text("")),
        prop::collection::vec(97u8..123, 0..12)
            .prop_map(|b| Value::text(String::from_utf8(b).unwrap())),
    ]
    .boxed()
}

fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(arb_value(), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn values_round_trip(v in arb_value()) {
        let mut buf = Vec::new();
        codec::encode_value(&mut buf, &v);
        let mut r = Reader::new(&buf);
        let back = codec::decode_value(&mut r).unwrap();
        prop_assert!(r.is_empty(), "trailing bytes after decode");
        prop_assert!(bits_eq(&v, &back), "{v:?} != {back:?}");
    }

    #[test]
    fn rows_round_trip_including_empty(row in arb_row()) {
        let mut buf = Vec::new();
        codec::encode_row(&mut buf, &row);
        let mut r = Reader::new(&buf);
        let back = codec::decode_row(&mut r).unwrap();
        prop_assert!(r.is_empty());
        prop_assert_eq!(row.len(), back.len());
        for (a, b) in row.iter().zip(&back) {
            prop_assert!(bits_eq(a, b), "{a:?} != {b:?}");
        }
    }

    #[test]
    fn truncated_or_corrupt_rows_never_panic(
        row in arb_row(),
        cut_pick in any::<u32>(),
        flip_pick in any::<u32>(),
        flip_bits in 1u8..255,
    ) {
        let mut buf = Vec::new();
        codec::encode_row(&mut buf, &row);

        // Truncation at an arbitrary offset: must error or decode a
        // prefix value, never panic.
        let cut = (cut_pick as usize) % (buf.len() + 1);
        let _ = codec::decode_row(&mut Reader::new(&buf[..cut]));

        // Single-byte corruption anywhere: same contract.
        if !buf.is_empty() {
            let mut bad = buf.clone();
            let at = (flip_pick as usize) % bad.len();
            bad[at] ^= flip_bits;
            let _ = codec::decode_row(&mut Reader::new(&bad));
        }
    }
}
