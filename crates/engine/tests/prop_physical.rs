//! Differential property tests for the physical executor.
//!
//! Over random schemas (indexed and unindexed tables), random DML and
//! random point/range/join/set-op queries, the optimized physical
//! execution — access-path selection, streamed filter/limit pipelines,
//! `IndexLookup` probes — must produce **exactly** the rows of the
//! unoptimized logical reference executor, in the same order. Index
//! maintenance is exercised through every mutation kind
//! (insert/delete/update, NULL keys, re-keying updates) before the
//! queries compare. Error behaviour: a mismatch on the probed key
//! itself falls back to a scan and fails identically; the one
//! documented divergence is that residual conjuncts are never
//! evaluated on rows the index excludes, so their *runtime* errors can
//! be skipped (see `optimize`'s module docs) — pinned by a
//! deterministic test below.

use hippo_engine::Database;
use proptest::prelude::*;

/// One mutation, encoded strategy-friendly: `(selector, a, b)`.
#[derive(Debug, Clone, Copy)]
struct Op {
    selector: u32,
    a: u32,
    b: u32,
}

fn apply(db: &mut Database, op: Op) {
    let k = op.a % 10;
    let v = op.b % 5;
    let s = ["x", "y", "z"][(op.b % 3) as usize];
    let sql = match op.selector % 8 {
        0 | 1 => format!("INSERT INTO t VALUES ({k}, {v}, '{s}')"),
        2 => format!("INSERT INTO t VALUES ({k}, NULL, '{s}')"),
        3 => format!("DELETE FROM t WHERE k = {k}"),
        // Re-keying update: moves rows across index buckets.
        4 => format!("UPDATE t SET k = {v} WHERE v = {v}"),
        5 => format!("UPDATE t SET v = {v}, s = '{s}' WHERE k = {k}"),
        _ => format!("INSERT INTO u VALUES ({k}, {v})"),
    };
    db.execute(&sql).unwrap();
}

/// `t` carries a primary-key auto-index on `k` plus a `CREATE INDEX` on
/// `(v, s)`; `u` is unindexed.
fn fresh_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k INT, v INT, s TEXT, PRIMARY KEY (k))")
        .unwrap();
    db.execute("CREATE INDEX t_vs ON t (v, s)").unwrap();
    db.execute("CREATE TABLE u (k INT, v INT)").unwrap();
    db
}

/// Query templates; `{k}`/`{v}` are substituted with random values so
/// probes hit present and absent keys alike.
fn queries(k: u32, v: u32) -> Vec<String> {
    vec![
        // Point probes through the pk index, with and without residuals.
        format!("SELECT * FROM t WHERE k = {k}"),
        format!("SELECT 1 FROM t WHERE k = {k} AND v = {v} AND s = 'x' LIMIT 1"),
        format!("SELECT v FROM t WHERE k = {k} AND v > 1"),
        // Multi-column index on (v, s); NULL v rows must never match.
        format!("SELECT k FROM t WHERE v = {v} AND s = 'y'"),
        // Streamed limit pipelines over both access paths.
        format!("SELECT s FROM t WHERE k = {k} LIMIT 2 OFFSET 1"),
        format!("SELECT k FROM t WHERE v = {v} LIMIT 3"),
        // Type-safe fallbacks: unindexed column / unindexed table.
        format!("SELECT * FROM t WHERE v = {v} ORDER BY k, s"),
        format!("SELECT * FROM u WHERE k = {k}"),
        // Joins, set ops, aggregation, subqueries over the same data.
        format!("SELECT t.k, u.v FROM t, u WHERE t.k = u.k AND u.v = {v} ORDER BY t.k, u.v"),
        format!("SELECT k FROM t WHERE v = {v} UNION SELECT k FROM u WHERE v = {v}"),
        "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k".to_string(),
        format!("SELECT k FROM u WHERE EXISTS (SELECT * FROM t WHERE t.k = u.k AND t.v = {v}) ORDER BY k"),
    ]
}

fn arb_ops() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    prop::collection::vec((0u32..8, 0u32..10, 0u32..5), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn physical_execution_matches_logical_reference(
        ops in arb_ops(),
        k in 0u32..12,
        v in 0u32..6,
    ) {
        let mut db = fresh_db();
        for (selector, a, b) in ops {
            apply(&mut db, Op { selector, a, b });
        }
        let snap = db.snapshot();
        for q in queries(k, v) {
            // Reference: the optimized logical plan run by the
            // materialising executor, no physical lowering.
            let reference = db.run_plan(&db.plan(&q).unwrap().plan).unwrap();
            let got = db.query(&q).unwrap();
            prop_assert_eq!(
                &got.rows, &reference,
                "physical != logical reference on {}\nplan:\n{}",
                q, db.physical_plan(&q).unwrap()
            );
            // The zero-lock snapshot path runs the same physical plan.
            prop_assert_eq!(&snap.query(&q).unwrap().rows, &reference, "snapshot diverged on {}", q);
        }
        // Sanity: the pk point probe really plans as an index lookup.
        let plan = db.physical_plan(&format!("SELECT * FROM t WHERE k = {k}")).unwrap();
        prop_assert!(plan.uses_index(), "expected IndexLookup:\n{}", plan);
    }

    #[test]
    fn type_mismatched_probes_fail_identically(ops in arb_ops()) {
        // Mismatch ON the indexed column itself: plan-time selection
        // rejects the key, both paths scan, both fail identically.
        // `k = 'x'` on an INT column: the reference errors row-wise
        // (incomparable types); the physical plan must not silently
        // return empty through an index probe.
        let mut db = fresh_db();
        for (selector, a, b) in ops {
            apply(&mut db, Op { selector, a, b });
        }
        let q = "SELECT * FROM t WHERE k = 'x'";
        let reference = db.run_plan(&db.plan(q).unwrap().plan);
        let got = db.query(q).map(|r| r.rows);
        prop_assert_eq!(got, reference);
    }
}

/// The documented divergence (see `optimize`'s module docs): a residual
/// conjunct whose evaluation would error is never run on rows the
/// index key excludes — the probe returns its (possibly empty) bucket
/// result where the scan reference errors row-wise. Pinned here so a
/// future change to residual handling is a conscious one.
#[test]
fn residual_errors_on_excluded_rows_are_skipped_by_the_index() {
    let mut db = fresh_db();
    db.execute("INSERT INTO t VALUES (1, 0, 'x')").unwrap();
    // v = 'x' is an incomparable-type comparison on every row; k = 2
    // matches no row, so the index path never evaluates it.
    let q = "SELECT * FROM t WHERE v = 'x' AND k = 2";
    assert!(db.physical_plan(q).unwrap().uses_index());
    assert_eq!(
        db.query(q).unwrap().rows,
        Vec::<Vec<hippo_engine::Value>>::new()
    );
    assert!(
        db.run_plan(&db.plan(q).unwrap().plan).is_err(),
        "the scan reference evaluates the residual on the stored row and errors"
    );
}
