//! Differential property tests for [`hippo_engine::DbSnapshot`].
//!
//! A snapshot must be a perfect freeze: over random DDL/DML op
//! sequences with a random cut point,
//!
//! 1. a snapshot taken at the cut answers every query exactly like a
//!    reference database that stopped mutating at the cut — no matter
//!    what happens to the live database afterwards (inserts, updates,
//!    deletes, even `DROP TABLE`), and
//! 2. a snapshot of an unmutated database is indistinguishable from the
//!    live handle.

use hippo_engine::Database;
use proptest::prelude::*;

/// One mutation, encoded strategy-friendly: `(selector, a, b)`.
#[derive(Debug, Clone, Copy)]
struct Op {
    selector: u32,
    a: u32,
    b: u32,
}

fn apply(db: &mut Database, op: Op) {
    let k = op.a % 8;
    let v = op.b % 5;
    let sql = match op.selector % 5 {
        0 | 1 => format!("INSERT INTO t VALUES ({k}, {v})"),
        2 => format!("DELETE FROM t WHERE k = {k} AND v = {v}"),
        3 => format!("UPDATE t SET v = {v} WHERE k = {k}"),
        _ => format!("INSERT INTO u VALUES ({k}, {v})"),
    };
    db.execute(&sql).unwrap();
}

fn fresh_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("CREATE TABLE u (k INT, v INT)").unwrap();
    db
}

/// Queries covering scans, predicates, joins, aggregation and set ops.
const QUERIES: &[&str] = &[
    "SELECT * FROM t ORDER BY k, v",
    "SELECT COUNT(*), SUM(v) FROM t",
    "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k",
    "SELECT t.k, t.v, u.v FROM t, u WHERE t.k = u.k ORDER BY t.k, t.v, u.v",
    "SELECT k FROM t EXCEPT SELECT k FROM u",
    "SELECT k FROM t WHERE EXISTS (SELECT * FROM u WHERE u.k = t.k) ORDER BY k",
];

fn arb_ops() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    prop::collection::vec((0u32..5, 0u32..8, 0u32..5), 0..30)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn snapshot_freezes_at_the_cut_point(
        ops in arb_ops(),
        cut_pick in 0u32..31,
        drop_after in any::<bool>(),
    ) {
        let ops: Vec<Op> = ops
            .into_iter()
            .map(|(selector, a, b)| Op { selector, a, b })
            .collect();
        let cut = (cut_pick as usize) % (ops.len() + 1);

        // Live database: all ops, snapshot taken at the cut.
        let mut live = fresh_db();
        for op in &ops[..cut] {
            apply(&mut live, *op);
        }
        let snap = live.snapshot();
        for op in &ops[cut..] {
            apply(&mut live, *op);
        }
        if drop_after {
            live.execute("DROP TABLE t").unwrap();
        }

        // Reference database: stops at the cut.
        let mut reference = fresh_db();
        for op in &ops[..cut] {
            apply(&mut reference, *op);
        }

        for q in QUERIES {
            prop_assert_eq!(
                snap.query(q).unwrap(),
                reference.query(q).unwrap(),
                "snapshot diverged from the cut-point reference on {}",
                q
            );
        }
    }

    #[test]
    fn snapshot_of_quiescent_db_matches_live(ops in arb_ops()) {
        let mut db = fresh_db();
        for (selector, a, b) in ops {
            apply(&mut db, Op { selector, a, b });
        }
        let snap = db.snapshot();
        for q in QUERIES {
            prop_assert_eq!(snap.query(q).unwrap(), db.query(q).unwrap(), "{}", q);
        }
    }
}
