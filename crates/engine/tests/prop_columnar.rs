//! Differential property tests: the vectorized engine against row mode.
//!
//! Over random DML — NULLs in every column, `NaN` / `-0.0` floats,
//! `i64::MIN`, re-keying updates — every query template is executed
//! twice on the same instance, once with columnar execution forced on
//! and once forced off, and the two outcomes must agree **bit for
//! bit**: same rows in the same order (floats compared by bit pattern,
//! so `-0.0` vs `0.0` and `NaN` payloads count), or the same error
//! text (incomparable-type comparisons, `SUM` overflow), raised at the
//! same point. A second property pins the budget-charging parity: a
//! governed query must charge the same number of rows and trip (or
//! not) identically in both modes.
//!
//! The columnar override is process-global, so the tests in this
//! binary serialise on one lock.

use hippo_engine::{set_columnar_override, Database, Row, Value};
use proptest::prelude::*;
use std::sync::Mutex;

static TOGGLE: Mutex<()> = Mutex::new(());

/// `t` exercises every column type (plus a primary-key auto-index that
/// keeps point probes on the row-mode `IndexLookup` path); `u` is a
/// plain unindexed join partner.
fn fresh_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k INT, f REAL, s TEXT, b BOOLEAN, PRIMARY KEY (k))")
        .unwrap();
    db.execute("CREATE TABLE u (k INT, f REAL)").unwrap();
    db
}

/// One mutation, encoded strategy-friendly: `(selector, a, b)`.
fn apply(db: &mut Database, selector: u32, a: u32, b: u32) {
    let k = a % 12;
    let s = ["x", "y", "zz", ""][(b % 4) as usize];
    let f = [0.5, -0.0, 2.0, -3.25][(b % 4) as usize];
    match selector % 10 {
        0 | 1 => {
            // `{f:?}` keeps the decimal point (`-0.0`, `2.0`) so the
            // literal lexes as a FLOAT, never an INT.
            let sql = format!(
                "INSERT INTO t VALUES ({k}, {f:?}, '{s}', {})",
                b.is_multiple_of(2)
            );
            db.execute(&sql).unwrap();
        }
        2 => {
            db.execute(&format!("INSERT INTO t VALUES ({k}, NULL, NULL, NULL)"))
                .unwrap();
        }
        // Edge values SQL text cannot spell: NaN, i64::MIN.
        3 => {
            db.insert_rows(
                "t",
                vec![vec![
                    Value::Int(i64::MIN),
                    Value::Float(f64::NAN),
                    Value::text(s),
                    Value::Bool(true),
                ]],
            )
            .unwrap();
        }
        4 => {
            db.execute(&format!("DELETE FROM t WHERE k = {k}")).unwrap();
        }
        // Re-keying update: moves rows across index buckets and
        // invalidates/rebuilds the column store.
        5 => {
            db.execute(&format!("UPDATE t SET k = {} WHERE k = {k}", b % 12))
                .unwrap();
        }
        6 => {
            db.execute(&format!("UPDATE t SET f = NULL, s = '{s}' WHERE k = {k}"))
                .unwrap();
        }
        _ => {
            db.insert_rows("u", vec![vec![Value::Int(k as i64), Value::Float(f)]])
                .unwrap();
        }
    }
}

/// Query templates; `{k}` substituted so predicates hit empty, full and
/// singleton selections alike.
fn queries(k: u32) -> Vec<String> {
    vec![
        // Projection over a bare scan (vectorized Select, batch charge).
        "SELECT k, s FROM t".to_string(),
        // Filters over each column type, including never/always matches.
        format!("SELECT k FROM t WHERE k >= {k}"),
        "SELECT k FROM t WHERE k = -999".to_string(),
        format!("SELECT s FROM t WHERE s = 'x' OR k = {k}"), // OR: row-mode fallback both ways
        "SELECT k FROM t WHERE s = 'zz' AND b = TRUE".to_string(),
        // NaN rows make both engines error here, at the same row.
        "SELECT k FROM t WHERE f > 0.0".to_string(),
        "SELECT k FROM t WHERE 0.0 < f".to_string(), // flipped operand order
        "SELECT k FROM t WHERE k < f".to_string(),   // column vs column, int vs float
        "SELECT k FROM t WHERE f IS NULL".to_string(),
        format!(
            "SELECT s FROM t WHERE s IS NOT NULL LIMIT 3 OFFSET {}",
            k % 4
        ),
        // Aggregation; SUM(k) overflows identically once i64::MIN rows pile up.
        "SELECT COUNT(*), COUNT(f), SUM(k) FROM t".to_string(),
        "SELECT s, COUNT(*), MIN(k), MAX(f) FROM t GROUP BY s".to_string(),
        "SELECT b, AVG(f), COUNT(DISTINCT s) FROM t GROUP BY b".to_string(),
        // Joins (vectorized hash join under a row-mode Sort).
        "SELECT t.k, u.f FROM t, u WHERE t.k = u.k ORDER BY t.k".to_string(),
        "SELECT t.k, u.k FROM t LEFT JOIN u ON t.k = u.k".to_string(),
        // Point probe through the pk index: row mode in both settings.
        format!("SELECT * FROM t WHERE k = {k}"),
        // Set op over two vectorized scans.
        format!("SELECT k FROM t WHERE k > {k} UNION ALL SELECT k FROM u"),
    ]
}

/// Bit-exact rendering of a result: floats by bit pattern, so `NaN`
/// payloads and `-0.0` cannot alias.
fn bits(rows: &[Row]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Float(f) => format!("f:{:016x}", f.to_bits()),
                    other => format!("{other:?}"),
                })
                .collect()
        })
        .collect()
}

fn run_mode(db: &Database, q: &str, columnar: bool) -> Result<Vec<Vec<String>>, String> {
    set_columnar_override(Some(columnar));
    let out = db
        .query(q)
        .map(|r| bits(&r.rows))
        .map_err(|e| e.to_string());
    set_columnar_override(None);
    out
}

fn arb_ops() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    prop::collection::vec((0u32..10, 0u32..12, 0u32..8), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn columnar_matches_row_mode_bit_for_bit(ops in arb_ops(), k in 0u32..14) {
        let _g = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        let mut db = fresh_db();
        for (selector, a, b) in ops {
            apply(&mut db, selector, a, b);
        }
        for q in queries(k) {
            let on = run_mode(&db, &q, true);
            let off = run_mode(&db, &q, false);
            prop_assert_eq!(on, off, "columnar != row mode on {}", q);
        }
        // Row accounting invariant: whichever engine ran, every base
        // row is counted by exactly one of the two row counters.
        let s = db.stats();
        prop_assert!(
            s.vectorized_rows > 0
                || s.rowmode_rows > 0
                || db.catalog().table("t").unwrap().is_empty()
        );
    }

    #[test]
    fn budget_charges_identically_in_both_modes(
        ops in arb_ops(),
        limit in 1u64..40,
    ) {
        let _g = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        let mut db = fresh_db();
        for (selector, a, b) in ops {
            apply(&mut db, selector, a, b);
        }
        for q in [
            "SELECT k, s FROM t",
            "SELECT k FROM t WHERE k >= 3",
            "SELECT s, COUNT(*) FROM t GROUP BY s",
            "SELECT t.k FROM t, u WHERE t.k = u.k",
            "SELECT s FROM t WHERE s IS NOT NULL LIMIT 2 OFFSET 1",
        ] {
            let mut outcomes = Vec::new();
            for columnar in [true, false] {
                set_columnar_override(Some(columnar));
                let budget = hippo_engine::Budget::new().with_row_limit(limit);
                let res = db
                    .query_governed(q, Some(&budget), "prop")
                    .map(|r| bits(&r.rows))
                    .map_err(|e| e.to_string());
                set_columnar_override(None);
                outcomes.push((res, budget.rows_charged()));
            }
            let (on, off) = (outcomes.remove(0), outcomes.remove(0));
            prop_assert_eq!(on.0, off.0, "governed answers diverged on {}", q);
            prop_assert_eq!(on.1, off.1, "rows charged diverged on {}", q);
        }
    }
}
