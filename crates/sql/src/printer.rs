//! Deterministic SQL rendering of AST nodes.
//!
//! The printer emits SQL in the Hippo dialect such that parsing the output
//! yields the same AST (modulo redundant parentheses, which the parser
//! discards). Hippo uses this to ship generated envelope queries to the
//! RDBMS as plain SQL text.

use crate::ast::*;
use std::fmt::Write as _;

/// Render a statement to SQL text.
pub fn print_statement(stmt: &Statement) -> String {
    let mut s = String::new();
    match stmt {
        Statement::CreateTable(ct) => {
            let _ = write!(s, "CREATE TABLE ");
            if ct.if_not_exists {
                let _ = write!(s, "IF NOT EXISTS ");
            }
            let _ = write!(s, "{} (", ident(&ct.name));
            for (i, c) in ct.columns.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{} {}", ident(&c.name), c.ty);
                if c.not_null {
                    s.push_str(" NOT NULL");
                }
            }
            if !ct.primary_key.is_empty() {
                let _ = write!(
                    s,
                    ", PRIMARY KEY ({})",
                    ct.primary_key
                        .iter()
                        .map(|c| ident(c))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            s.push(')');
        }
        Statement::CreateIndex(ci) => {
            let _ = write!(s, "CREATE INDEX ");
            if ci.if_not_exists {
                let _ = write!(s, "IF NOT EXISTS ");
            }
            let _ = write!(
                s,
                "{} ON {} ({})",
                ident(&ci.name),
                ident(&ci.table),
                ci.columns
                    .iter()
                    .map(|c| ident(c))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        Statement::DropTable { name, if_exists } => {
            let _ = write!(
                s,
                "DROP TABLE {}{}",
                if *if_exists { "IF EXISTS " } else { "" },
                ident(name)
            );
        }
        Statement::Insert(ins) => {
            let _ = write!(s, "INSERT INTO {}", ident(&ins.table));
            if !ins.columns.is_empty() {
                let _ = write!(
                    s,
                    " ({})",
                    ins.columns
                        .iter()
                        .map(|c| ident(c))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            match &ins.source {
                InsertSource::Values(rows) => {
                    s.push_str(" VALUES ");
                    for (i, row) in rows.iter().enumerate() {
                        if i > 0 {
                            s.push_str(", ");
                        }
                        let _ = write!(
                            s,
                            "({})",
                            row.iter().map(print_expr).collect::<Vec<_>>().join(", ")
                        );
                    }
                }
                InsertSource::Query(q) => {
                    let _ = write!(s, " {}", print_query(q));
                }
            }
        }
        Statement::Delete { table, filter } => {
            let _ = write!(s, "DELETE FROM {}", ident(table));
            if let Some(f) = filter {
                let _ = write!(s, " WHERE {}", print_expr(f));
            }
        }
        Statement::Update {
            table,
            assignments,
            filter,
        } => {
            let _ = write!(s, "UPDATE {} SET ", ident(table));
            for (i, (c, e)) in assignments.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{} = {}", ident(c), print_expr(e));
            }
            if let Some(f) = filter {
                let _ = write!(s, " WHERE {}", print_expr(f));
            }
        }
        Statement::Select(q) => s = print_query(q),
        Statement::Explain(q) => s = format!("EXPLAIN {}", print_query(q)),
    }
    s
}

/// Render a query to SQL text.
pub fn print_query(q: &Query) -> String {
    match q {
        Query::Select(core) => print_select_core(core),
        Query::SetOp {
            op,
            all,
            left,
            right,
        } => {
            format!(
                "{} {}{} {}",
                print_query_child(left),
                op,
                if *all { " ALL" } else { "" },
                print_query_child(right)
            )
        }
    }
}

/// Children of a set operation are parenthesised to preserve associativity
/// and precedence on re-parse.
fn print_query_child(q: &Query) -> String {
    match q {
        Query::Select(core) => print_select_core(core),
        Query::SetOp { .. } => format!("({})", print_query(q)),
    }
}

fn print_select_core(core: &SelectCore) -> String {
    let mut s = String::from("SELECT ");
    if core.distinct {
        s.push_str("DISTINCT ");
    }
    for (i, item) in core.projection.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => s.push('*'),
            SelectItem::QualifiedWildcard(q) => {
                let _ = write!(s, "{}.*", ident(q));
            }
            SelectItem::Expr { expr, alias } => {
                s.push_str(&print_expr(expr));
                if let Some(a) = alias {
                    let _ = write!(s, " AS {}", ident(a));
                }
            }
        }
    }
    if !core.from.is_empty() {
        s.push_str(" FROM ");
        for (i, tr) in core.from.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&print_table_ref(tr));
        }
    }
    if let Some(f) = &core.filter {
        let _ = write!(s, " WHERE {}", print_expr(f));
    }
    if !core.group_by.is_empty() {
        let _ = write!(
            s,
            " GROUP BY {}",
            core.group_by
                .iter()
                .map(print_expr)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    if let Some(h) = &core.having {
        let _ = write!(s, " HAVING {}", print_expr(h));
    }
    if !core.order_by.is_empty() {
        s.push_str(" ORDER BY ");
        for (i, o) in core.order_by.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&print_expr(&o.expr));
            if o.desc {
                s.push_str(" DESC");
            }
        }
    }
    if let Some(l) = core.limit {
        let _ = write!(s, " LIMIT {l}");
    }
    if let Some(o) = core.offset {
        let _ = write!(s, " OFFSET {o}");
    }
    s
}

fn print_table_ref(tr: &TableRef) -> String {
    match tr {
        TableRef::Table { name, alias } => match alias {
            Some(a) => format!("{} AS {}", ident(name), ident(a)),
            None => ident(name),
        },
        TableRef::Subquery { query, alias } => {
            format!("({}) AS {}", print_query(query), ident(alias))
        }
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => {
            let kw = match kind {
                JoinKind::Inner => "INNER JOIN",
                JoinKind::Cross => "CROSS JOIN",
                JoinKind::Left => "LEFT JOIN",
            };
            let mut s = format!(
                "{} {} {}",
                print_table_ref(left),
                kw,
                print_join_side(right)
            );
            if let Some(c) = on {
                let _ = write!(s, " ON {}", print_expr(c));
            }
            s
        }
    }
}

/// The right side of a join must not itself swallow the following `ON`;
/// our grammar is left-recursive so nested joins on the right need parens.
/// Only table/subquery factors appear there in practice.
fn print_join_side(tr: &TableRef) -> String {
    match tr {
        TableRef::Join { .. } => format!("({})", print_table_ref(tr)),
        _ => print_table_ref(tr),
    }
}

/// Render an expression to SQL text (fully parenthesised where needed).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Literal(l) => print_literal(l),
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{}.{}", ident(q), ident(name)),
            None => ident(name),
        },
        Expr::Binary { op, left, right } => {
            format!("({} {} {})", print_expr(left), op.sql(), print_expr(right))
        }
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => format!("(NOT {})", print_expr(expr)),
            UnaryOp::Neg => format!("(- {})", print_expr(expr)),
        },
        Expr::IsNull { expr, negated } => {
            format!(
                "({} IS{} NULL)",
                print_expr(expr),
                if *negated { " NOT" } else { "" }
            )
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => format!(
            "({} {}BETWEEN {} AND {})",
            print_expr(expr),
            if *negated { "NOT " } else { "" },
            print_expr(low),
            print_expr(high)
        ),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "({} {}LIKE {})",
            print_expr(expr),
            if *negated { "NOT " } else { "" },
            print_expr(pattern)
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => format!(
            "({} {}IN ({}))",
            print_expr(expr),
            if *negated { "NOT " } else { "" },
            list.iter().map(print_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => format!(
            "({} {}IN ({}))",
            print_expr(expr),
            if *negated { "NOT " } else { "" },
            print_query(query)
        ),
        Expr::Exists { query, negated } => format!(
            "({}EXISTS ({}))",
            if *negated { "NOT " } else { "" },
            print_query(query)
        ),
        Expr::ScalarSubquery(query) => format!("({})", print_query(query)),
        Expr::Function {
            name,
            args,
            star,
            distinct,
        } => {
            if *star {
                format!("{}(*)", name.to_ascii_uppercase())
            } else {
                format!(
                    "{}({}{})",
                    name.to_ascii_uppercase(),
                    if *distinct { "DISTINCT " } else { "" },
                    args.iter().map(print_expr).collect::<Vec<_>>().join(", ")
                )
            }
        }
        Expr::Case {
            branches,
            else_value,
        } => {
            let mut s = String::from("CASE");
            for (c, v) in branches {
                let _ = write!(s, " WHEN {} THEN {}", print_expr(c), print_expr(v));
            }
            if let Some(ev) = else_value {
                let _ = write!(s, " ELSE {}", print_expr(ev));
            }
            s.push_str(" END");
            s
        }
    }
}

fn print_literal(l: &Literal) -> String {
    match l {
        Literal::Null => "NULL".to_string(),
        Literal::Bool(true) => "TRUE".to_string(),
        Literal::Bool(false) => "FALSE".to_string(),
        Literal::Int(v) => v.to_string(),
        Literal::Float(v) => {
            // Keep re-parseability: always include a decimal point or exponent.
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Literal::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

/// Quote an identifier when needed: anything that isn't a plain lower-case
/// word must be double-quoted to survive a round trip.
fn ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && crate::token::Keyword::from_upper(&name.to_ascii_uppercase()).is_none();
    if plain {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_query, parse_statement};

    fn roundtrip_query(sql: &str) {
        let q1 = parse_query(sql).unwrap();
        let printed = print_query(&q1);
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        assert_eq!(q1, q2, "round trip failed for {sql:?} -> {printed:?}");
    }

    fn roundtrip_stmt(sql: &str) {
        let s1 = parse_statement(sql).unwrap();
        let printed = print_statement(&s1);
        let s2 =
            parse_statement(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        assert_eq!(s1, s2, "round trip failed for {sql:?} -> {printed:?}");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip_query("SELECT a, b FROM t WHERE a = 1");
        roundtrip_query("SELECT DISTINCT * FROM t ORDER BY a DESC LIMIT 3 OFFSET 1");
        roundtrip_query("SELECT t.* FROM t");
    }

    #[test]
    fn roundtrip_setops() {
        roundtrip_query("SELECT a FROM t UNION SELECT a FROM u");
        roundtrip_query("SELECT a FROM t UNION ALL SELECT a FROM u EXCEPT SELECT a FROM v");
        roundtrip_query("(SELECT a FROM t EXCEPT SELECT a FROM u) INTERSECT SELECT a FROM v");
    }

    #[test]
    fn roundtrip_joins_and_subqueries() {
        roundtrip_query("SELECT * FROM a INNER JOIN b ON a.x = b.x CROSS JOIN c");
        roundtrip_query("SELECT * FROM (SELECT a FROM t) AS s WHERE s.a > 0");
        roundtrip_query(
            "SELECT * FROM emp e WHERE NOT EXISTS (SELECT * FROM emp f WHERE f.name = e.name AND f.salary <> e.salary)",
        );
        roundtrip_query("SELECT * FROM t WHERE t.a IN (SELECT b FROM u)");
    }

    #[test]
    fn roundtrip_expressions() {
        roundtrip_query("SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t");
        roundtrip_query(
            "SELECT COUNT(*), SUM(a), COUNT(DISTINCT b) FROM t GROUP BY c HAVING COUNT(*) > 1",
        );
        roundtrip_query(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 2 OR b NOT LIKE 'x%' AND c IS NOT NULL",
        );
        roundtrip_query("SELECT -a, -1, 2.5, 'it''s', NULL, TRUE FROM t WHERE a % 2 = 0");
    }

    #[test]
    fn roundtrip_ddl_dml() {
        roundtrip_stmt("CREATE TABLE t (a INT NOT NULL, b TEXT, PRIMARY KEY (a))");
        roundtrip_stmt("CREATE INDEX t_a ON t (a)");
        roundtrip_stmt("CREATE INDEX IF NOT EXISTS t_ab ON t (a, b)");
        roundtrip_stmt("DROP TABLE IF EXISTS t");
        roundtrip_stmt("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)");
        roundtrip_stmt("INSERT INTO t SELECT * FROM u");
        roundtrip_stmt("DELETE FROM t WHERE a = 1");
        roundtrip_stmt("UPDATE t SET a = 1, b = 'x' WHERE c > 0");
        roundtrip_stmt("EXPLAIN SELECT a FROM t WHERE (b = 'x')");
    }

    #[test]
    fn quoted_identifiers_survive() {
        roundtrip_query("SELECT \"Mixed Case\" FROM \"Weird Table\"");
        // A keyword used as an identifier must come out quoted.
        let q = parse_query("SELECT \"select\" FROM t").unwrap();
        let printed = print_query(&q);
        assert!(printed.contains("\"select\""), "{printed}");
        roundtrip_query("SELECT \"select\" FROM t");
    }

    #[test]
    fn float_literals_reparse_as_floats() {
        let e = parse_expr(&print_expr(&Expr::Literal(Literal::Float(3.0)))).unwrap();
        assert_eq!(e, Expr::Literal(Literal::Float(3.0)));
    }

    #[test]
    fn string_escaping() {
        let e = Expr::Literal(Literal::Str("a'b".into()));
        assert_eq!(print_expr(&e), "'a''b'");
        assert_eq!(parse_expr("'a''b'").unwrap(), e);
    }
}
