//! Recursive-descent parser for the Hippo SQL dialect.
//!
//! Expression parsing uses precedence climbing with the usual SQL binding
//! order: `OR` < `AND` < `NOT` < comparison/`BETWEEN`/`IN`/`LIKE`/`IS` <
//! additive < multiplicative < unary minus < concatenation/primary.

use crate::ast::*;
use crate::lexer::{tokenize, LexError};
use crate::token::{Keyword, Token, TokenKind};
use std::fmt;

/// A parse error, with the byte offset of the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the original SQL text.
    pub pos: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            pos: e.pos,
        }
    }
}

/// Parse a single SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat(TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script into statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>, ParseError> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(TokenKind::Semicolon) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.statement()?);
        if !p.at(TokenKind::Semicolon) {
            p.expect_eof()?;
            return Ok(out);
        }
    }
}

/// Parse a query (`SELECT`, possibly under set operations).
pub fn parse_query(sql: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(sql)?;
    let q = p.query()?;
    p.eat(TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(q)
}

/// Parse a standalone scalar/boolean expression.
pub fn parse_expr(sql: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            idx: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.idx].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let i = (self.idx + offset).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn pos(&self) -> usize {
        self.tokens[self.idx].pos
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.idx].kind.clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        kind
    }

    fn at(&self, kind: TokenKind) -> bool {
        *self.peek() == kind
    }

    fn at_eof(&self) -> bool {
        self.at(TokenKind::Eof)
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        *self.peek() == TokenKind::Keyword(kw)
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat(TokenKind::Keyword(kw))
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            pos: self.pos(),
        })
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if self.eat(kind.clone()) {
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek()))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), ParseError> {
        self.expect(TokenKind::Keyword(kw))
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input: {}", self.peek()))
        }
    }

    /// Parse an identifier; unquoted identifiers fold to lower case.
    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s.to_ascii_lowercase())
            }
            TokenKind::QuotedIdent(s) => {
                self.bump();
                Ok(s)
            }
            // A few keywords double as common column names in practice.
            // `INDEX` is only meaningful directly after `CREATE`, so it
            // stays usable as a plain identifier everywhere else.
            TokenKind::Keyword(
                kw @ (Keyword::Key | Keyword::Values | Keyword::Left | Keyword::Index),
            ) => {
                self.bump();
                Ok(kw.text().to_ascii_lowercase())
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    // ----- statements -----

    fn statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Create) => self.create(),
            TokenKind::Keyword(Keyword::Drop) => self.drop_table(),
            TokenKind::Keyword(Keyword::Insert) => self.insert(),
            TokenKind::Keyword(Keyword::Delete) => self.delete(),
            TokenKind::Keyword(Keyword::Update) => self.update(),
            TokenKind::Keyword(Keyword::Select) | TokenKind::LParen => {
                Ok(Statement::Select(self.query()?))
            }
            TokenKind::Keyword(Keyword::Explain) => {
                self.bump();
                Ok(Statement::Explain(self.query()?))
            }
            other => self.err(format!("expected statement, found {other}")),
        }
    }

    fn create(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Create)?;
        if self.at_kw(Keyword::Index) {
            return self.create_index();
        }
        self.create_table()
    }

    fn create_index(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Index)?;
        let if_not_exists = if self.eat_kw(Keyword::If) {
            self.expect_kw(Keyword::Not)?;
            self.expect_kw(Keyword::Exists)?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_kw(Keyword::On)?;
        let table = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(Statement::CreateIndex(CreateIndex {
            name,
            table,
            columns,
            if_not_exists,
        }))
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Table)?;
        let if_not_exists = if self.eat_kw(Keyword::If) {
            self.expect_kw(Keyword::Not)?;
            self.expect_kw(Keyword::Exists)?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.at_kw(Keyword::Primary) {
                self.bump();
                self.expect_kw(Keyword::Key)?;
                self.expect(TokenKind::LParen)?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
            } else {
                let col_name = self.ident()?;
                let ty = self.type_name()?;
                let mut not_null = false;
                loop {
                    if self.eat_kw(Keyword::Not) {
                        self.expect_kw(Keyword::Null)?;
                        not_null = true;
                    } else if self.eat_kw(Keyword::Primary) {
                        self.expect_kw(Keyword::Key)?;
                        primary_key.push(col_name.clone());
                        not_null = true;
                    } else {
                        break;
                    }
                }
                columns.push(ColumnDef {
                    name: col_name,
                    ty,
                    not_null,
                });
            }
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            columns,
            primary_key,
            if_not_exists,
        }))
    }

    fn type_name(&mut self) -> Result<TypeName, ParseError> {
        let ty = match self.peek().clone() {
            TokenKind::Keyword(Keyword::Int | Keyword::Integer | Keyword::Bigint) => {
                self.bump();
                TypeName::Int
            }
            TokenKind::Keyword(Keyword::Real) => {
                self.bump();
                TypeName::Float
            }
            TokenKind::Keyword(Keyword::Double) => {
                self.bump();
                self.eat_kw(Keyword::Precision);
                TypeName::Float
            }
            TokenKind::Keyword(Keyword::Text) => {
                self.bump();
                TypeName::Text
            }
            TokenKind::Keyword(Keyword::Varchar) => {
                self.bump();
                if self.eat(TokenKind::LParen) {
                    match self.bump() {
                        TokenKind::Int(_) => {}
                        other => return self.err(format!("expected length, found {other}")),
                    }
                    self.expect(TokenKind::RParen)?;
                }
                TypeName::Text
            }
            TokenKind::Keyword(Keyword::Boolean) => {
                self.bump();
                TypeName::Bool
            }
            other => return self.err(format!("expected type name, found {other}")),
        };
        Ok(ty)
    }

    fn drop_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Drop)?;
        self.expect_kw(Keyword::Table)?;
        let if_exists = if self.eat_kw(Keyword::If) {
            self.expect_kw(Keyword::Exists)?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.at(TokenKind::LParen)
            && !matches!(self.peek_at(1), TokenKind::Keyword(Keyword::Select))
        {
            self.bump();
            loop {
                columns.push(self.ident()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        let source = if self.eat_kw(Keyword::Values) {
            let mut rows = Vec::new();
            loop {
                self.expect(TokenKind::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
                rows.push(row);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            InsertSource::Query(Box::new(self.query()?))
        };
        Ok(Statement::Insert(Insert {
            table,
            columns,
            source,
        }))
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.ident()?;
        let filter = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn update(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Update)?;
        let table = self.ident()?;
        self.expect_kw(Keyword::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(TokenKind::Eq)?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            filter,
        })
    }

    // ----- queries -----

    fn query(&mut self) -> Result<Query, ParseError> {
        // UNION/EXCEPT are left-associative and bind weaker than INTERSECT.
        let mut left = self.query_intersect()?;
        loop {
            let op = if self.eat_kw(Keyword::Union) {
                SetOp::Union
            } else if self.eat_kw(Keyword::Except) {
                SetOp::Except
            } else {
                return Ok(left);
            };
            let all = self.eat_kw(Keyword::All);
            let right = self.query_intersect()?;
            left = Query::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn query_intersect(&mut self) -> Result<Query, ParseError> {
        let mut left = self.query_primary()?;
        while self.eat_kw(Keyword::Intersect) {
            let all = self.eat_kw(Keyword::All);
            let right = self.query_primary()?;
            left = Query::SetOp {
                op: SetOp::Intersect,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn query_primary(&mut self) -> Result<Query, ParseError> {
        if self.eat(TokenKind::LParen) {
            let q = self.query()?;
            self.expect(TokenKind::RParen)?;
            Ok(q)
        } else {
            Ok(Query::Select(Box::new(self.select_core()?)))
        }
    }

    fn select_core(&mut self) -> Result<SelectCore, ParseError> {
        self.expect_kw(Keyword::Select)?;
        let mut core = SelectCore::empty();
        if self.eat_kw(Keyword::Distinct) {
            core.distinct = true;
        } else {
            self.eat_kw(Keyword::All);
        }
        loop {
            core.projection.push(self.select_item()?);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        if self.eat_kw(Keyword::From) {
            loop {
                core.from.push(self.table_ref()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Keyword::Where) {
            core.filter = Some(self.expr()?);
        }
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            loop {
                core.group_by.push(self.expr()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Keyword::Having) {
            core.having = Some(self.expr()?);
        }
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                core.order_by.push(OrderItem { expr, desc });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Keyword::Limit) {
            core.limit = Some(self.unsigned()?);
        }
        if self.eat_kw(Keyword::Offset) {
            core.offset = Some(self.unsigned()?);
        }
        Ok(core)
    }

    fn unsigned(&mut self) -> Result<u64, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            other => self.err(format!("expected non-negative integer, found {other}")),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat(TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let TokenKind::Ident(_)
        | TokenKind::QuotedIdent(_)
        | TokenKind::Keyword(Keyword::Index) = self.peek()
        {
            if *self.peek_at(1) == TokenKind::Dot && *self.peek_at(2) == TokenKind::Star {
                let q = self.ident()?;
                self.bump(); // .
                self.bump(); // *
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.expr()?;
        // Bare (AS-less) aliases accept `index` too — unlike the other
        // identifier-fallback keywords it can never start a clause here
        // (`LEFT` would swallow a following `LEFT JOIN`).
        let alias = if self.eat_kw(Keyword::As)
            || matches!(
                self.peek(),
                TokenKind::Ident(_)
                    | TokenKind::QuotedIdent(_)
                    | TokenKind::Keyword(Keyword::Index)
            ) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let mut left = self.table_factor()?;
        loop {
            let kind = if self.eat_kw(Keyword::Cross) {
                self.expect_kw(Keyword::Join)?;
                JoinKind::Cross
            } else if self.eat_kw(Keyword::Inner) {
                self.expect_kw(Keyword::Join)?;
                JoinKind::Inner
            } else if self.eat_kw(Keyword::Left) {
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Left
            } else if self.eat_kw(Keyword::Join) {
                JoinKind::Inner
            } else {
                return Ok(left);
            };
            let right = self.table_factor()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_kw(Keyword::On)?;
                Some(self.expr()?)
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
    }

    fn table_factor(&mut self) -> Result<TableRef, ParseError> {
        if self.eat(TokenKind::LParen) {
            let query = self.query()?;
            self.expect(TokenKind::RParen)?;
            self.eat_kw(Keyword::As);
            let alias = self.ident()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        // Bare aliases accept `index` (see select_item's note).
        let alias = if self.eat_kw(Keyword::As)
            || matches!(
                self.peek(),
                TokenKind::Ident(_)
                    | TokenKind::QuotedIdent(_)
                    | TokenKind::Keyword(Keyword::Index)
            ) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    // ----- expressions -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.expr_or()
    }

    fn expr_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.expr_and()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.expr_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn expr_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.expr_not()?;
        while self.eat_kw(Keyword::And) {
            let right = self.expr_not()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn expr_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw(Keyword::Not) {
            let inner = self.expr_not()?;
            Ok(inner.not())
        } else {
            self.expr_predicate()
        }
    }

    /// Comparison operators plus SQL predicate forms
    /// (`BETWEEN`, `IN`, `LIKE`, `IS [NOT] NULL`).
    fn expr_predicate(&mut self) -> Result<Expr, ParseError> {
        let left = self.expr_additive()?;
        // IS [NOT] NULL
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.at_kw(Keyword::Not)
            && matches!(
                self.peek_at(1),
                TokenKind::Keyword(Keyword::Between | Keyword::In | Keyword::Like)
            ) {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw(Keyword::Between) {
            let low = self.expr_additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.expr_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw(Keyword::Like) {
            let pattern = self.expr_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw(Keyword::In) {
            self.expect(TokenKind::LParen)?;
            // `IN (SELECT …)` or `IN ((SELECT …) UNION …)` is a subquery;
            // `IN ((1 + 2), x)` is a parenthesised list element. Look past
            // any run of `(` to decide.
            let mut k = 0;
            while *self.peek_at(k) == TokenKind::LParen {
                k += 1;
            }
            let is_subquery = *self.peek_at(k) == TokenKind::Keyword(Keyword::Select);
            if is_subquery {
                let query = self.query()?;
                self.expect(TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return self.err("expected BETWEEN, IN or LIKE after NOT");
        }
        let op = match self.peek() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::Neq => BinaryOp::Neq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::Le => BinaryOp::Le,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::Ge => BinaryOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.expr_additive()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn expr_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.expr_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                TokenKind::Concat => BinaryOp::Concat,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.expr_multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn expr_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.expr_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.expr_unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn expr_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(TokenKind::Minus) {
            // A minus directly on an integer literal negates the unsigned
            // magnitude, which is the only way `-9223372036854775808`
            // (`i64::MIN`) can be accepted.
            if let TokenKind::Int(v) = *self.peek() {
                if v <= i64::MIN.unsigned_abs() {
                    self.bump();
                    return Ok(Expr::Literal(Literal::Int(v.wrapping_neg() as i64)));
                }
            }
            let inner = self.expr_unary()?;
            // Fold negative literals immediately so `- /*cmt*/ 1` is a
            // literal; an unrepresentable negation stays a unary node.
            return Ok(match inner {
                Expr::Literal(Literal::Int(v)) if v.checked_neg().is_some() => {
                    Expr::Literal(Literal::Int(-v))
                }
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(TokenKind::Plus) {
            return self.expr_unary();
        }
        self.expr_primary()
    }

    fn expr_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                match i64::try_from(v) {
                    Ok(v) => Ok(Expr::Literal(Literal::Int(v))),
                    Err(_) => self.err(format!("integer literal out of range: {v}")),
                }
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.bump();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::Keyword(Keyword::Exists) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let query = self.query()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Exists {
                    query: Box::new(query),
                    negated: false,
                })
            }
            TokenKind::Keyword(Keyword::Not) => {
                // handled by expr_not normally; reachable via `a = NOT b` forms
                self.bump();
                let inner = self.expr_primary()?;
                Ok(inner.not())
            }
            TokenKind::Keyword(Keyword::Case) => self.case_expr(),
            TokenKind::LParen => {
                // Could be a scalar subquery or a parenthesised expression.
                self.bump();
                if self.at_kw(Keyword::Select) {
                    let query = self.query()?;
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr::ScalarSubquery(Box::new(query)))
                } else {
                    let e = self.expr()?;
                    self.expect(TokenKind::RParen)?;
                    Ok(e)
                }
            }
            TokenKind::Ident(_)
            | TokenKind::QuotedIdent(_)
            | TokenKind::Keyword(Keyword::Key | Keyword::Values | Keyword::Left | Keyword::Index) =>
            {
                let name = self.ident()?;
                if self.eat(TokenKind::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::qcol(name, col));
                }
                if self.at(TokenKind::LParen) {
                    return self.function_call(name);
                }
                Ok(Expr::col(name))
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }

    fn function_call(&mut self, name: String) -> Result<Expr, ParseError> {
        self.expect(TokenKind::LParen)?;
        if self.eat(TokenKind::Star) {
            self.expect(TokenKind::RParen)?;
            return Ok(Expr::Function {
                name,
                args: Vec::new(),
                star: true,
                distinct: false,
            });
        }
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut args = Vec::new();
        if !self.at(TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(Expr::Function {
            name,
            args,
            star: false,
            distinct,
        })
    }

    fn case_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw(Keyword::Case)?;
        let mut branches = Vec::new();
        while self.eat_kw(Keyword::When) {
            let cond = self.expr()?;
            self.expect_kw(Keyword::Then)?;
            let value = self.expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return self.err("CASE requires at least one WHEN branch");
        }
        let else_value = if self.eat_kw(Keyword::Else) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw(Keyword::End)?;
        Ok(Expr::Case {
            branches,
            else_value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let stmt = parse_statement(
            "CREATE TABLE emp (name TEXT NOT NULL, dept VARCHAR(20), salary INT, PRIMARY KEY (name))",
        )
        .unwrap();
        let Statement::CreateTable(ct) = stmt else {
            panic!("not a create table")
        };
        assert_eq!(ct.name, "emp");
        assert_eq!(ct.columns.len(), 3);
        assert!(ct.columns[0].not_null);
        assert_eq!(ct.columns[1].ty, TypeName::Text);
        assert_eq!(ct.primary_key, vec!["name"]);
    }

    #[test]
    fn parses_inline_primary_key() {
        let stmt = parse_statement("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
        let Statement::CreateTable(ct) = stmt else {
            panic!()
        };
        assert_eq!(ct.primary_key, vec!["id"]);
        assert!(ct.columns[0].not_null);
    }

    #[test]
    fn parses_create_index() {
        let stmt = parse_statement("CREATE INDEX emp_name ON emp (name, dept)").unwrap();
        let Statement::CreateIndex(ci) = stmt else {
            panic!("not a create index")
        };
        assert_eq!(ci.name, "emp_name");
        assert_eq!(ci.table, "emp");
        assert_eq!(ci.columns, vec!["name", "dept"]);
        assert!(!ci.if_not_exists);
        let stmt = parse_statement("CREATE INDEX IF NOT EXISTS i ON t (a)").unwrap();
        let Statement::CreateIndex(ci) = stmt else {
            panic!()
        };
        assert!(ci.if_not_exists);
        assert!(parse_statement("CREATE INDEX i ON t ()").is_err());
        // `index` stays usable as a plain identifier outside CREATE:
        // column refs, table names, bare aliases, qualified stars.
        for sql in [
            "SELECT index FROM t WHERE index = 1",
            "SELECT * FROM index",
            "SELECT * FROM t index",
            "SELECT k index FROM t",
            "SELECT index.* FROM t AS index",
        ] {
            assert!(
                matches!(parse_statement(sql), Ok(Statement::Select(_))),
                "{sql}"
            );
        }
        let stmt = parse_statement("CREATE TABLE t (index INT)").unwrap();
        let Statement::CreateTable(ct) = stmt else {
            panic!()
        };
        assert_eq!(ct.columns[0].name, "index");
    }

    #[test]
    fn parses_explain() {
        let stmt = parse_statement("EXPLAIN SELECT a FROM t WHERE b = 1").unwrap();
        let Statement::Explain(q) = stmt else {
            panic!("not an explain")
        };
        // The payload is an ordinary query — same AST as without EXPLAIN.
        let Statement::Select(plain) = parse_statement("SELECT a FROM t WHERE b = 1").unwrap()
        else {
            panic!()
        };
        assert_eq!(q, plain);
        // Set operations and parenthesised queries are fine payloads.
        assert!(matches!(
            parse_statement("EXPLAIN SELECT a FROM t UNION SELECT a FROM u"),
            Ok(Statement::Explain(_))
        ));
        // EXPLAIN prefixes a query, not DML; and needs a query at all.
        assert!(parse_statement("EXPLAIN DELETE FROM t").is_err());
        assert!(parse_statement("EXPLAIN").is_err());
        // `explain` is a keyword: a bare identifier use now errors.
        assert!(parse_statement("SELECT explain FROM t").is_err());
    }

    #[test]
    fn parses_insert_values() {
        let stmt =
            parse_statement("INSERT INTO emp (name, salary) VALUES ('a', 1), ('b', 2)").unwrap();
        let Statement::Insert(ins) = stmt else {
            panic!()
        };
        assert_eq!(ins.table, "emp");
        assert_eq!(ins.columns, vec!["name", "salary"]);
        let InsertSource::Values(rows) = ins.source else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn parses_insert_select() {
        let stmt = parse_statement("INSERT INTO t SELECT * FROM s").unwrap();
        let Statement::Insert(ins) = stmt else {
            panic!()
        };
        assert!(matches!(ins.source, InsertSource::Query(_)));
    }

    #[test]
    fn parses_select_with_everything() {
        let q = parse_query(
            "SELECT DISTINCT e.name AS n, d.budget FROM emp e, dept AS d \
             WHERE e.dept = d.name AND e.salary > 100 \
             ORDER BY n DESC LIMIT 10 OFFSET 2",
        )
        .unwrap();
        let Query::Select(core) = q else { panic!() };
        assert!(core.distinct);
        assert_eq!(core.projection.len(), 2);
        assert_eq!(core.from.len(), 2);
        assert!(core.filter.is_some());
        assert_eq!(core.order_by.len(), 1);
        assert!(core.order_by[0].desc);
        assert_eq!(core.limit, Some(10));
        assert_eq!(core.offset, Some(2));
    }

    #[test]
    fn identifiers_fold_to_lowercase_unless_quoted() {
        let q = parse_query("SELECT NaMe FROM EMP").unwrap();
        let Query::Select(core) = q else { panic!() };
        assert_eq!(
            core.projection[0],
            SelectItem::Expr {
                expr: Expr::col("name"),
                alias: None
            }
        );
        let TableRef::Table { name, .. } = &core.from[0] else {
            panic!()
        };
        assert_eq!(name, "emp");
        let q = parse_query("SELECT \"NaMe\" FROM t").unwrap();
        let Query::Select(core) = q else { panic!() };
        assert_eq!(
            core.projection[0],
            SelectItem::Expr {
                expr: Expr::col("NaMe"),
                alias: None
            }
        );
    }

    #[test]
    fn union_is_left_associative_and_weaker_than_intersect() {
        let q =
            parse_query("SELECT a FROM t UNION SELECT a FROM u INTERSECT SELECT a FROM v").unwrap();
        let Query::SetOp {
            op: SetOp::Union,
            right,
            ..
        } = q
        else {
            panic!("expected top union")
        };
        assert!(matches!(
            *right,
            Query::SetOp {
                op: SetOp::Intersect,
                ..
            }
        ));
    }

    #[test]
    fn parses_set_op_all() {
        let q = parse_query("SELECT a FROM t UNION ALL SELECT a FROM u").unwrap();
        let Query::SetOp { all, .. } = q else {
            panic!()
        };
        assert!(all);
    }

    #[test]
    fn parses_parenthesised_query() {
        let q = parse_query("(SELECT a FROM t EXCEPT SELECT a FROM u) INTERSECT SELECT a FROM v")
            .unwrap();
        let Query::SetOp {
            op: SetOp::Intersect,
            left,
            ..
        } = q
        else {
            panic!()
        };
        assert!(matches!(
            *left,
            Query::SetOp {
                op: SetOp::Except,
                ..
            }
        ));
    }

    #[test]
    fn parses_joins() {
        let q = parse_query(
            "SELECT * FROM a INNER JOIN b ON a.x = b.x CROSS JOIN c LEFT JOIN d ON c.y = d.y",
        )
        .unwrap();
        let Query::Select(core) = q else { panic!() };
        let TableRef::Join {
            kind: JoinKind::Left,
            left,
            ..
        } = &core.from[0]
        else {
            panic!("expected left join at top")
        };
        let TableRef::Join {
            kind: JoinKind::Cross,
            left: l2,
            ..
        } = &**left
        else {
            panic!("expected cross join")
        };
        assert!(matches!(
            &**l2,
            TableRef::Join {
                kind: JoinKind::Inner,
                ..
            }
        ));
    }

    #[test]
    fn parses_exists_and_in_subquery() {
        let e = parse_expr("EXISTS (SELECT * FROM t WHERE t.a = 1)").unwrap();
        assert!(matches!(e, Expr::Exists { negated: false, .. }));
        let e = parse_expr("NOT EXISTS (SELECT * FROM t)").unwrap();
        // NOT EXISTS parses as NOT(EXISTS ...) via expr_not
        assert!(matches!(
            e,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
        let e = parse_expr("x IN (SELECT a FROM t)").unwrap();
        assert!(matches!(e, Expr::InSubquery { negated: false, .. }));
        let e = parse_expr("x NOT IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
        // Regression (found by the round-trip property test): a
        // parenthesised first list element is not a subquery.
        let e = parse_expr("x IN ((1 + 2), 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: false, .. }));
        let e = parse_expr("x IN ((SELECT a FROM t) UNION (SELECT b FROM u))").unwrap();
        assert!(matches!(e, Expr::InSubquery { .. }));
    }

    #[test]
    fn parses_scalar_subquery() {
        let e = parse_expr("(SELECT COUNT(*) FROM t) > 5").unwrap();
        let Expr::Binary { left, .. } = e else {
            panic!()
        };
        assert!(matches!(*left, Expr::ScalarSubquery(_)));
    }

    #[test]
    fn parses_between_like_isnull() {
        assert!(matches!(
            parse_expr("a BETWEEN 1 AND 2").unwrap(),
            Expr::Between { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("a NOT BETWEEN 1 AND 2").unwrap(),
            Expr::Between { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("a LIKE 'x%'").unwrap(),
            Expr::Like { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("a IS NULL").unwrap(),
            Expr::IsNull { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("a IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn precedence_or_and_not_cmp_arith() {
        // a = 1 OR b = 2 AND NOT c < 3 + 4 * 5
        let e = parse_expr("a = 1 OR b = 2 AND NOT c < 3 + 4 * 5").unwrap();
        let Expr::Binary {
            op: BinaryOp::Or,
            right,
            ..
        } = e
        else {
            panic!("top is OR")
        };
        let Expr::Binary {
            op: BinaryOp::And,
            right: and_r,
            ..
        } = *right
        else {
            panic!("right of OR is AND")
        };
        let Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } = *and_r
        else {
            panic!("NOT under AND")
        };
        let Expr::Binary {
            op: BinaryOp::Lt,
            right: lt_r,
            ..
        } = *expr
        else {
            panic!("cmp")
        };
        let Expr::Binary {
            op: BinaryOp::Add,
            right: add_r,
            ..
        } = *lt_r
        else {
            panic!("add")
        };
        assert!(matches!(
            *add_r,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn unary_minus_folds_literals() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::Literal(Literal::Int(-5)));
        assert_eq!(
            parse_expr("-2.5").unwrap(),
            Expr::Literal(Literal::Float(-2.5))
        );
        assert!(matches!(
            parse_expr("-a").unwrap(),
            Expr::Unary {
                op: UnaryOp::Neg,
                ..
            }
        ));
    }

    #[test]
    fn parses_case() {
        let e = parse_expr("CASE WHEN a = 1 THEN 'x' WHEN a = 2 THEN 'y' ELSE 'z' END").unwrap();
        let Expr::Case {
            branches,
            else_value,
        } = e
        else {
            panic!()
        };
        assert_eq!(branches.len(), 2);
        assert!(else_value.is_some());
    }

    #[test]
    fn parses_count_star_and_distinct() {
        let e = parse_expr("COUNT(*)").unwrap();
        assert!(matches!(e, Expr::Function { star: true, .. }));
        let e = parse_expr("COUNT(DISTINCT x)").unwrap();
        assert!(matches!(e, Expr::Function { distinct: true, .. }));
    }

    #[test]
    fn parses_statements_script() {
        let stmts =
            parse_statements("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELEC * FROM t").is_err());
        assert!(parse_query("SELECT * FROM t WHERE").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("a NOT 5").is_err());
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse_query("SELECT a FROM t garbage garbage").is_err());
    }

    #[test]
    fn subquery_in_from_requires_alias() {
        assert!(parse_query("SELECT * FROM (SELECT a FROM t) s").is_ok());
        assert!(parse_query("SELECT * FROM (SELECT a FROM t)").is_err());
    }

    #[test]
    fn delete_update_parse() {
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete { .. }
        ));
        let Statement::Update { assignments, .. } =
            parse_statement("UPDATE t SET a = 1, b = 'x' WHERE c > 0").unwrap()
        else {
            panic!()
        };
        assert_eq!(assignments.len(), 2);
    }
}
