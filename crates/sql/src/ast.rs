//! Abstract syntax tree for the Hippo SQL dialect.
//!
//! The tree is deliberately close to textbook SQL: a [`Query`] is a tree of
//! set operations over [`SelectCore`] blocks, expressions are a single
//! [`Expr`] enum. Identifier case: unquoted identifiers are normalised to
//! lower case by the parser; quoted identifiers keep their spelling.

use std::fmt;

/// A fully parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, ..., PRIMARY KEY (...))`
    CreateTable(CreateTable),
    /// `CREATE INDEX [IF NOT EXISTS] name ON table (col, ...)`
    CreateIndex(CreateIndex),
    /// `DROP TABLE [IF EXISTS] name`
    DropTable {
        /// Table to drop.
        name: String,
        /// Do not error when the table is missing.
        if_exists: bool,
    },
    /// `INSERT INTO name [(cols)] VALUES (...), (...)` or `INSERT INTO name query`
    Insert(Insert),
    /// `DELETE FROM name [WHERE cond]`
    Delete {
        /// Target table.
        table: String,
        /// Optional filter; `None` deletes everything.
        filter: Option<Expr>,
    },
    /// `UPDATE name SET col = expr, ... [WHERE cond]`
    Update {
        /// Target table.
        table: String,
        /// `(column, new value)` pairs.
        assignments: Vec<(String, Expr)>,
        /// Optional filter.
        filter: Option<Expr>,
    },
    /// Any query (`SELECT ...` possibly under set operations).
    Select(Query),
    /// `EXPLAIN query` — render the execution plan instead of running
    /// the query.
    Explain(Query),
}

/// `CREATE INDEX` definition: a named secondary hash index over a fixed
/// column set. The engine's optimizer rewrites equality predicates on
/// the indexed columns into `IndexLookup` access paths.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    /// Index name (normalised; unique within the target table).
    pub name: String,
    /// Table the index is built over.
    pub table: String,
    /// Indexed column names, in index-key order.
    pub columns: Vec<String>,
    /// `IF NOT EXISTS` was given.
    pub if_not_exists: bool,
}

/// `CREATE TABLE` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name (normalised).
    pub name: String,
    /// Column definitions in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Optional primary key column names.
    pub primary_key: Vec<String>,
    /// `IF NOT EXISTS` was given.
    pub if_not_exists: bool,
}

/// One column in a `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name (normalised).
    pub name: String,
    /// Declared type.
    pub ty: TypeName,
    /// `NOT NULL` was given.
    pub not_null: bool,
}

/// SQL type names supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    /// 64-bit signed integer (`INT`, `INTEGER`, `BIGINT`).
    Int,
    /// 64-bit float (`REAL`, `DOUBLE PRECISION`).
    Float,
    /// UTF-8 string (`TEXT`, `VARCHAR[(n)]` — length is ignored).
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeName::Int => write!(f, "BIGINT"),
            TypeName::Float => write!(f, "DOUBLE PRECISION"),
            TypeName::Text => write!(f, "TEXT"),
            TypeName::Bool => write!(f, "BOOLEAN"),
        }
    }
}

/// `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Explicit column list (empty = table order).
    pub columns: Vec<String>,
    /// Data source.
    pub source: InsertSource,
}

/// The data fed into an `INSERT`.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (...), (...)`
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO t SELECT ...`
    Query(Box<Query>),
}

/// A query: a tree of set operations whose leaves are `SELECT` blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A plain `SELECT` block.
    Select(Box<SelectCore>),
    /// `left op right`, e.g. `q1 UNION q2`.
    SetOp {
        /// Set operator.
        op: SetOp,
        /// `ALL` keeps duplicates (bag semantics).
        all: bool,
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
    },
}

/// Set operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `UNION`
    Union,
    /// `EXCEPT`
    Except,
    /// `INTERSECT`
    Intersect,
}

impl fmt::Display for SetOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetOp::Union => write!(f, "UNION"),
            SetOp::Except => write!(f, "EXCEPT"),
            SetOp::Intersect => write!(f, "INTERSECT"),
        }
    }
}

/// One `SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ... ORDER BY ... LIMIT`
/// block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectCore {
    /// `DISTINCT` was given.
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// `FROM` items, implicitly cross-joined when more than one.
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub filter: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
    /// `OFFSET n`.
    pub offset: Option<u64>,
}

impl SelectCore {
    /// An empty `SELECT` block to be filled in (used by builders/tests).
    pub fn empty() -> Self {
        SelectCore {
            distinct: false,
            projection: Vec::new(),
            from: Vec::new(),
            filter: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output name.
        alias: Option<String>,
    },
}

/// A `FROM`-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table with optional alias.
    Table {
        /// Table name (normalised).
        name: String,
        /// Optional alias (normalised).
        alias: Option<String>,
    },
    /// Parenthesised subquery with mandatory alias.
    Subquery {
        /// The inner query.
        query: Box<Query>,
        /// Alias binding the subquery's columns.
        alias: String,
    },
    /// `left [INNER|CROSS] JOIN right [ON cond]`
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// `ON` condition (`None` for `CROSS JOIN`).
        on: Option<Expr>,
    },
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `INNER JOIN ... ON`
    Inner,
    /// `CROSS JOIN`
    Cross,
    /// `LEFT [OUTER] JOIN ... ON`
    Left,
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending (default) or descending.
    pub desc: bool,
}

/// Scalar / boolean expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Literal),
    /// Possibly-qualified column reference: `col` or `alias.col`.
    Column {
        /// Optional qualifier (table name or alias, normalised).
        qualifier: Option<String>,
        /// Column name (normalised).
        name: String,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation (`NOT x`, `-x`).
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `true` for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (with `%` and `_`).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression.
        pattern: Box<Expr>,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery (must produce one column).
        query: Box<Query>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// The subquery.
        query: Box<Query>,
        /// `NOT EXISTS`.
        negated: bool,
    },
    /// Scalar subquery `(SELECT ...)` producing a single value.
    ScalarSubquery(Box<Query>),
    /// Function call, e.g. `COUNT(*)`, `ABS(x)`.
    Function {
        /// Function name (normalised to lower case).
        name: String,
        /// Arguments; `COUNT(*)` is encoded with `star = true` and no args.
        args: Vec<Expr>,
        /// `f(*)` form.
        star: bool,
        /// `f(DISTINCT x)` form.
        distinct: bool,
    },
    /// `CASE WHEN c THEN v ... [ELSE e] END`.
    Case {
        /// `(condition, value)` branches.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` value.
        else_value: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Column reference without qualifier.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Qualified column reference.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// String literal.
    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Literal(Literal::Str(v.into()))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinaryOp::And,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinaryOp::Or,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(self),
        }
    }

    /// Fold a list of conjuncts into one `AND` chain; `None` when empty.
    pub fn conjoin(conjuncts: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        conjuncts.into_iter().reduce(Expr::and)
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `NULL`
    Null,
    /// `TRUE`/`FALSE`
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||`
    Concat,
}

impl BinaryOp {
    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
        }
    }

    /// Is this a comparison operator (returns boolean)?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
        )
    }

    /// For `a op b`, the operator in `b op' a` with the same meaning.
    pub fn flip(self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::Eq,
            BinaryOp::Neq => BinaryOp::Neq,
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::Le => BinaryOp::Ge,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::Ge => BinaryOp::Le,
            _ => return None,
        })
    }

    /// Negation of a comparison, e.g. `<` becomes `>=`.
    pub fn negate_comparison(self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::Neq,
            BinaryOp::Neq => BinaryOp::Eq,
            BinaryOp::Lt => BinaryOp::Ge,
            BinaryOp::Le => BinaryOp::Gt,
            BinaryOp::Gt => BinaryOp::Le,
            BinaryOp::Ge => BinaryOp::Lt,
            _ => return None,
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Boolean negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders_compose() {
        let e = Expr::col("a")
            .eq(Expr::int(1))
            .and(Expr::qcol("t", "b").eq(Expr::str("x")));
        match e {
            Expr::Binary {
                op: BinaryOp::And, ..
            } => {}
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn conjoin_of_empty_is_none() {
        assert_eq!(Expr::conjoin(Vec::new()), None);
    }

    #[test]
    fn conjoin_of_single_is_identity() {
        let e = Expr::col("a");
        assert_eq!(Expr::conjoin([e.clone()]), Some(e));
    }

    #[test]
    fn comparison_flip_and_negate() {
        assert_eq!(BinaryOp::Lt.flip(), Some(BinaryOp::Gt));
        assert_eq!(BinaryOp::Lt.negate_comparison(), Some(BinaryOp::Ge));
        assert_eq!(BinaryOp::Add.flip(), None);
        assert!(BinaryOp::Eq.is_comparison());
        assert!(!BinaryOp::Concat.is_comparison());
    }
}
