//! # hippo-sql
//!
//! A self-contained SQL front end for the Hippo consistent-query-answering
//! system: lexer, abstract syntax tree, recursive-descent parser and a
//! deterministic SQL printer.
//!
//! The dialect is the subset Hippo needs when talking to its RDBMS backend:
//!
//! * DDL: `CREATE TABLE`, `DROP TABLE`
//! * DML: `INSERT`, `DELETE`, `UPDATE`
//! * Queries: `SELECT` with `WHERE`, joins (comma, `CROSS`, `INNER ... ON`),
//!   `GROUP BY`/aggregates, `ORDER BY`, `LIMIT`, `DISTINCT`, set operations
//!   (`UNION`, `EXCEPT`, `INTERSECT`, with optional `ALL`), scalar and
//!   `EXISTS`/`IN` subqueries.
//!
//! The printer renders every AST node back to SQL text such that
//! `parse(print(ast)) == ast` (see the round-trip property tests); Hippo
//! relies on this to ship envelope queries to the engine as plain SQL, the
//! same interface shape the original system used against PostgreSQL.
//!
//! ```
//! use hippo_sql::{parse_statement, Statement};
//! let stmt = parse_statement("SELECT name, salary FROM emp WHERE salary > 1000").unwrap();
//! assert!(matches!(stmt, Statement::Select(_)));
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::*;
pub use lexer::{tokenize, LexError};
pub use parser::{parse_expr, parse_query, parse_statement, parse_statements, ParseError};
pub use printer::{print_expr, print_query, print_statement};

/// A source location (byte offset) attached to lexer/parser errors.
pub type Pos = usize;
