//! Token definitions for the SQL lexer.

use std::fmt;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first character of the token in the input.
    pub pos: usize,
}

/// The kind of a lexical token.
///
/// Keywords are lexed as [`TokenKind::Keyword`] with an upper-cased text so
/// the parser can match case-insensitively; identifiers keep their original
/// spelling (SQL folds unquoted identifiers to lower case at binding time,
/// not lexing time).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Unquoted identifier or non-keyword word.
    Ident(String),
    /// Double-quoted identifier; quotes stripped, case preserved.
    QuotedIdent(String),
    /// A recognised SQL keyword (upper-cased).
    Keyword(Keyword),
    /// Integer literal: the unsigned magnitude as written. The parser
    /// applies any leading minus, so `-9223372036854775808` (`i64::MIN`,
    /// whose magnitude does not fit in `i64`) round-trips.
    Int(u64),
    /// Floating point literal.
    Float(f64),
    /// Single-quoted string literal with escapes resolved.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `||` string concatenation
    Concat,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::QuotedIdent(s) => write!(f, "\"{s}\""),
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Neq => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Concat => write!(f, "||"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

macro_rules! keywords {
    ($($name:ident => $text:literal),+ $(,)?) => {
        /// All SQL keywords recognised by the lexer.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($name),+
        }

        impl Keyword {
            /// Look up a word (already upper-cased) as a keyword.
            pub fn from_upper(s: &str) -> Option<Keyword> {
                match s {
                    $($text => Some(Keyword::$name),)+
                    _ => None,
                }
            }

            /// The canonical (upper-case) spelling.
            pub fn text(self) -> &'static str {
                match self {
                    $(Keyword::$name => $text),+
                }
            }
        }
    };
}

keywords! {
    All => "ALL",
    And => "AND",
    As => "AS",
    Asc => "ASC",
    Between => "BETWEEN",
    Bigint => "BIGINT",
    Boolean => "BOOLEAN",
    By => "BY",
    Case => "CASE",
    Create => "CREATE",
    Cross => "CROSS",
    Delete => "DELETE",
    Desc => "DESC",
    Distinct => "DISTINCT",
    Double => "DOUBLE",
    Drop => "DROP",
    Else => "ELSE",
    End => "END",
    Except => "EXCEPT",
    Exists => "EXISTS",
    Explain => "EXPLAIN",
    False => "FALSE",
    From => "FROM",
    Group => "GROUP",
    Having => "HAVING",
    If => "IF",
    In => "IN",
    Index => "INDEX",
    Inner => "INNER",
    Insert => "INSERT",
    Int => "INT",
    Integer => "INTEGER",
    Intersect => "INTERSECT",
    Into => "INTO",
    Is => "IS",
    Join => "JOIN",
    Key => "KEY",
    Left => "LEFT",
    Like => "LIKE",
    Limit => "LIMIT",
    Not => "NOT",
    Null => "NULL",
    Offset => "OFFSET",
    On => "ON",
    Or => "OR",
    Order => "ORDER",
    Outer => "OUTER",
    Precision => "PRECISION",
    Primary => "PRIMARY",
    Real => "REAL",
    Select => "SELECT",
    Set => "SET",
    Table => "TABLE",
    Text => "TEXT",
    Then => "THEN",
    True => "TRUE",
    Union => "UNION",
    Update => "UPDATE",
    Values => "VALUES",
    Varchar => "VARCHAR",
    When => "WHEN",
    Where => "WHERE",
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_roundtrip() {
        for kw in [
            Keyword::Select,
            Keyword::From,
            Keyword::Where,
            Keyword::Union,
        ] {
            assert_eq!(Keyword::from_upper(kw.text()), Some(kw));
        }
    }

    #[test]
    fn keyword_lookup_rejects_identifiers() {
        assert_eq!(Keyword::from_upper("EMP"), None);
        assert_eq!(
            Keyword::from_upper("select"),
            None,
            "lookup expects upper case"
        );
    }

    #[test]
    fn token_display_is_sql_like() {
        assert_eq!(TokenKind::Neq.to_string(), "<>");
        assert_eq!(TokenKind::Str("a'b".into()).to_string(), "'a'b'");
        assert_eq!(TokenKind::Keyword(Keyword::Select).to_string(), "SELECT");
    }
}
