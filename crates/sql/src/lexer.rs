//! Hand-written SQL lexer.
//!
//! Produces a flat token stream terminated by [`TokenKind::Eof`]. Supports
//! line comments (`-- ...`), block comments (`/* ... */`), single-quoted
//! strings with `''` escaping, double-quoted identifiers with `""` escaping,
//! integer and decimal literals (including exponent forms such as `1e-3`).

use crate::token::{Keyword, Token, TokenKind};
use std::fmt;

/// An error produced while tokenizing SQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the error was detected.
    pub pos: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `input` into a vector of tokens ending with `Eof`.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            src: input.as_bytes(),
            pos: 0,
            out: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn err(&self, message: impl Into<String>, pos: usize) -> LexError {
        LexError {
            message: message.into(),
            pos,
        }
    }

    fn push(&mut self, kind: TokenKind, pos: usize) {
        self.out.push(Token { kind, pos });
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.out);
            };
            match c {
                b'(' => {
                    self.bump();
                    self.push(TokenKind::LParen, start);
                }
                b')' => {
                    self.bump();
                    self.push(TokenKind::RParen, start);
                }
                b',' => {
                    self.bump();
                    self.push(TokenKind::Comma, start);
                }
                b';' => {
                    self.bump();
                    self.push(TokenKind::Semicolon, start);
                }
                b'.' => {
                    // `.5` style floats are not supported; `.` is always a separator.
                    self.bump();
                    self.push(TokenKind::Dot, start);
                }
                b'*' => {
                    self.bump();
                    self.push(TokenKind::Star, start);
                }
                b'+' => {
                    self.bump();
                    self.push(TokenKind::Plus, start);
                }
                b'-' => {
                    self.bump();
                    self.push(TokenKind::Minus, start);
                }
                b'/' => {
                    self.bump();
                    self.push(TokenKind::Slash, start);
                }
                b'%' => {
                    self.bump();
                    self.push(TokenKind::Percent, start);
                }
                b'=' => {
                    self.bump();
                    self.push(TokenKind::Eq, start);
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Neq, start);
                    } else {
                        return Err(self.err("expected '=' after '!'", start));
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            self.push(TokenKind::Le, start);
                        }
                        Some(b'>') => {
                            self.bump();
                            self.push(TokenKind::Neq, start);
                        }
                        _ => self.push(TokenKind::Lt, start),
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Ge, start);
                    } else {
                        self.push(TokenKind::Gt, start);
                    }
                }
                b'|' => {
                    self.bump();
                    if self.peek() == Some(b'|') {
                        self.bump();
                        self.push(TokenKind::Concat, start);
                    } else {
                        return Err(self.err("expected '|' after '|'", start));
                    }
                }
                b'\'' => self.lex_string(start)?,
                b'"' => self.lex_quoted_ident(start)?,
                b'0'..=b'9' => self.lex_number(start)?,
                c if c == b'_' || c.is_ascii_alphabetic() => self.lex_word(start),
                other => {
                    return Err(self.err(format!("unexpected character {:?}", other as char), start))
                }
            }
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.err("unterminated block comment", start)),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_string(&mut self, start: usize) -> Result<(), LexError> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        text.push('\'');
                    } else {
                        self.push(TokenKind::Str(text), start);
                        return Ok(());
                    }
                }
                Some(c) => text.push(c as char),
                None => return Err(self.err("unterminated string literal", start)),
            }
        }
    }

    fn lex_quoted_ident(&mut self, start: usize) -> Result<(), LexError> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some(b'"') => {
                    if self.peek() == Some(b'"') {
                        self.bump();
                        text.push('"');
                    } else {
                        if text.is_empty() {
                            return Err(self.err("empty quoted identifier", start));
                        }
                        self.push(TokenKind::QuotedIdent(text), start);
                        return Ok(());
                    }
                }
                Some(c) => text.push(c as char),
                None => return Err(self.err("unterminated quoted identifier", start)),
            }
        }
    }

    fn lex_number(&mut self, start: usize) -> Result<(), LexError> {
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let save = self.pos;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                // Not an exponent after all (e.g. `1e` followed by ident char);
                // back off and let the word lexer complain if needed.
                self.pos = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(format!("invalid float literal {text:?}"), start))?;
            self.push(TokenKind::Float(v), start);
        } else {
            let v: u64 = text
                .parse()
                .map_err(|_| self.err(format!("integer literal out of range: {text}"), start))?;
            self.push(TokenKind::Int(v), start);
        }
        Ok(())
    }

    fn lex_word(&mut self, start: usize) {
        while matches!(self.peek(), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii word");
        let upper = text.to_ascii_uppercase();
        match Keyword::from_upper(&upper) {
            Some(kw) => self.push(TokenKind::Keyword(kw), start),
            None => self.push(TokenKind::Ident(text.to_string()), start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_select() {
        let ks = kinds("SELECT a, b FROM t WHERE a = 1");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("b".into()),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Ident("t".into()),
                TokenKind::Keyword(Keyword::Where),
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Int(1),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("select")[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(kinds("SeLeCt")[0], TokenKind::Keyword(Keyword::Select));
    }

    #[test]
    fn lexes_operators() {
        let ks = kinds("<= >= <> != = < > || + - * / %");
        assert_eq!(
            ks,
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Neq,
                TokenKind::Neq,
                TokenKind::Eq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Concat,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_string_with_escaped_quote() {
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
    }

    #[test]
    fn lexes_quoted_identifier() {
        assert_eq!(
            kinds("\"Mixed Case\"")[0],
            TokenKind::QuotedIdent("Mixed Case".into())
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("3.5")[0], TokenKind::Float(3.5));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::Float(0.25));
    }

    #[test]
    fn dot_after_integer_is_qualified_name_not_float() {
        // `t1.c` style access where the qualifier ends in a digit.
        let ks = kinds("a1.b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a1".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("SELECT -- comment\n 1 /* block\n comment */ + 2");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Int(1),
                TokenKind::Plus,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("\"abc").is_err());
        assert!(tokenize("/* abc").is_err());
    }

    #[test]
    fn error_positions_point_at_offender() {
        let err = tokenize("a = 'x").unwrap_err();
        assert_eq!(err.pos, 4);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(tokenize("a ? b").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a | b").is_err());
    }

    #[test]
    fn huge_integer_literal_is_error() {
        assert!(tokenize("99999999999999999999999").is_err());
    }
}
