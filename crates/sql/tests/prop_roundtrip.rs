//! Property test: printing any generated AST and re-parsing it yields the
//! same AST (`parse ∘ print = id`). Hippo depends on this to ship
//! generated envelope queries to the RDBMS as SQL text.

use hippo_sql::*;
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    // Unquoted-safe identifiers plus a few nasty quoted ones.
    prop_oneof![
        4 => "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
            hippo_sql::parse_expr(s).map(|e| matches!(e, Expr::Column { .. })).unwrap_or(false)
        }),
        1 => Just("Mixed Case".to_string()),
        1 => Just("select".to_string()),
        1 => Just("we\"ird".to_string()),
    ]
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        any::<bool>().prop_map(Literal::Bool),
        any::<i64>().prop_map(Literal::Int),
        // Finite floats only: NaN/inf do not round-trip through SQL text.
        (-1e15f64..1e15).prop_map(Literal::Float),
        "[ a-zA-Z0-9'%_]{0,12}".prop_map(Literal::Str),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal().prop_map(Expr::Literal),
        arb_ident().prop_map(Expr::col),
        (arb_ident(), arb_ident()).prop_map(|(q, n)| Expr::qcol(q, n)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinaryOp::And),
                    Just(BinaryOp::Or),
                    Just(BinaryOp::Eq),
                    Just(BinaryOp::Neq),
                    Just(BinaryOp::Lt),
                    Just(BinaryOp::Le),
                    Just(BinaryOp::Gt),
                    Just(BinaryOp::Ge),
                    Just(BinaryOp::Add),
                    Just(BinaryOp::Sub),
                    Just(BinaryOp::Mul),
                    Just(BinaryOp::Div),
                    Just(BinaryOp::Mod),
                    Just(BinaryOp::Concat),
                ]
            )
                .prop_map(|(l, r, op)| Expr::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r)
                }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e)
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::IsNull {
                expr: Box::new(e),
                negated: n
            }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, n)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated: n
                }
            ),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..3),
                any::<bool>()
            )
                .prop_map(|(e, list, n)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: n
                }),
            (
                prop::collection::vec((inner.clone(), inner.clone()), 1..3),
                prop::option::of(inner.clone())
            )
                .prop_map(|(branches, ev)| Expr::Case {
                    branches,
                    else_value: ev.map(Box::new)
                }),
        ]
    })
}

fn arb_select_core() -> impl Strategy<Value = SelectCore> {
    (
        any::<bool>(),
        prop::collection::vec(
            prop_oneof![
                Just(SelectItem::Wildcard),
                (arb_expr(), prop::option::of(arb_ident()))
                    .prop_map(|(e, a)| SelectItem::Expr { expr: e, alias: a }),
            ],
            1..4,
        ),
        prop::collection::vec(
            (arb_ident(), prop::option::of(arb_ident()))
                .prop_map(|(n, a)| TableRef::Table { name: n, alias: a }),
            0..3,
        ),
        prop::option::of(arb_expr()),
        prop::option::of((0u64..100, 0u64..10)),
    )
        .prop_map(|(distinct, projection, from, filter, lim)| {
            let mut core = SelectCore::empty();
            core.distinct = distinct;
            core.projection = projection;
            core.from = from;
            core.filter = filter;
            if let Some((l, o)) = lim {
                core.limit = Some(l);
                core.offset = Some(o);
            }
            core
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    let leaf = arb_select_core().prop_map(|c| Query::Select(Box::new(c)));
    leaf.prop_recursive(2, 6, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![
                Just(SetOp::Union),
                Just(SetOp::Except),
                Just(SetOp::Intersect)
            ],
            any::<bool>(),
        )
            .prop_map(|(l, r, op, all)| Query::SetOp {
                op,
                all,
                left: Box::new(l),
                right: Box::new(r),
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr()) {
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed for {printed:?}: {err}"));
        prop_assert_eq!(reparsed, e, "printed: {}", printed);
    }

    #[test]
    fn query_print_parse_roundtrip(q in arb_query()) {
        let printed = print_query(&q);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|err| panic!("reparse failed for {printed:?}: {err}"));
        prop_assert_eq!(reparsed, q, "printed: {}", printed);
    }
}
