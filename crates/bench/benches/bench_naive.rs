//! Criterion bench for experiment **E7**: naive repair enumeration
//! (exponential in the number of conflicts) vs Hippo (polynomial) on the
//! same instances. This is the quantitative version of the paper's
//! argument against repair-materialising approaches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hippo_cqa::detect::detect_conflicts;
use hippo_cqa::naive::naive_consistent_answers;
use hippo_cqa::prelude::*;
use hippo_engine::{Database, Value};

fn instance(k: usize) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k INT, v INT, payload INT)")
        .unwrap();
    let mut rows = Vec::new();
    for i in 0..k {
        for copy in 0..3 {
            rows.push(vec![
                Value::Int(i as i64),
                Value::Int(copy as i64),
                Value::Int((i * 3 + copy) as i64),
            ]);
        }
    }
    db.insert_rows("t", rows).unwrap();
    db
}

fn bench_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_repair_blowup");
    group.sample_size(10);
    let q =
        SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(1, CmpOp::Ge, 2i64)));
    for &k in &[2usize, 4, 6, 8] {
        let db = instance(k);
        let constraints = vec![DenialConstraint::functional_dependency("t", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &constraints).unwrap();
        group.bench_with_input(BenchmarkId::new("naive_enumeration", k), &k, |b, _| {
            b.iter(|| naive_consistent_answers(&q, db.catalog(), &g))
        });
        let hippo = Hippo::with_options(instance(k), constraints, HippoOptions::full()).unwrap();
        group.bench_with_input(BenchmarkId::new("hippo_full", k), &k, |b, _| {
            b.iter(|| hippo.consistent_answers(&q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_naive);
criterion_main!(benches);
