//! Criterion bench for **sharded base mode over engine snapshots**
//! (PR 4): base-mode answer-pipeline throughput vs candidate count and
//! prover thread count, against the KG-mode reference on the same
//! workload.
//!
//! Every iteration clears the persistent cross-call verdict cache
//! first — otherwise iteration 1 seeds it and the rest measure cache
//! reads instead of the pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hippo_cqa::prelude::*;
use hippo_engine::Database;

fn diff_query() -> SjudQuery {
    SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)))
}

fn hippo_for(n: usize, rate: f64, opts: HippoOptions) -> Hippo {
    let spec = FdTableSpec::new("t", n, rate, 84);
    let mut db = Database::new();
    spec.populate(&mut db).unwrap();
    Hippo::with_options(db, vec![spec.fd()], opts).unwrap()
}

/// Base-mode pipeline time vs candidate count (5% conflicts, 1 thread).
fn bench_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("base_candidates");
    group.sample_size(10);
    let q = diff_query();
    for n in [1000usize, 4000, 16000] {
        let hippo = hippo_for(n, 0.05, HippoOptions::base().with_prover_threads(1));
        group.bench_with_input(BenchmarkId::new("base_1thread", n), &n, |b, _| {
            b.iter(|| {
                hippo.clear_verdict_cache();
                hippo.consistent_answers(&q).unwrap()
            })
        });
    }
    group.finish();
}

/// Thread scaling at fixed size: one frozen snapshot shared by all
/// workers, shard decomposition fixed — every row produces identical
/// answers, stats and SQL membership counts.
fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("base_threads");
    group.sample_size(10);
    let q = diff_query();
    for threads in [1usize, 2, 4, 8] {
        let hippo = hippo_for(
            16000,
            0.05,
            HippoOptions::base().with_prover_threads(threads),
        );
        group.bench_with_input(BenchmarkId::new("base_16k", threads), &threads, |b, _| {
            b.iter(|| {
                hippo.clear_verdict_cache();
                hippo.consistent_answers(&q).unwrap()
            })
        });
    }
    group.finish();
}

/// Base vs KG on the same workload (1 thread): what the per-shard SQL
/// membership memo leaves on the table vs envelope-prefetched flags.
fn bench_base_vs_kg(c: &mut Criterion) {
    let mut group = c.benchmark_group("base_vs_kg");
    group.sample_size(10);
    let q = diff_query();
    for (label, opts) in [
        ("base", HippoOptions::base().with_prover_threads(1)),
        ("kg", HippoOptions::kg().with_prover_threads(1)),
    ] {
        let hippo = hippo_for(16000, 0.05, opts);
        group.bench_function(BenchmarkId::new(label, "16k"), |b| {
            b.iter(|| {
                hippo.clear_verdict_cache();
                hippo.consistent_answers(&q).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidates, bench_threads, bench_base_vs_kg);
criterion_main!(benches);
