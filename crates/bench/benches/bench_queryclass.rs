//! Criterion bench for experiment **E3**: Hippo running time per query
//! class (S, SJ, SUD, SJUD) on the same instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hippo_cqa::prelude::*;

fn queries() -> Vec<(&'static str, SjudQuery)> {
    let s = SjudQuery::rel("r").select(Pred::cmp_const(2, CmpOp::Ge, 500i64));
    let sj = SjudQuery::rel("r")
        .product(SjudQuery::rel("s"))
        .select(Pred::cmp_cols(0, CmpOp::Eq, 3).and(Pred::cmp_const(2, CmpOp::Ge, 500i64)));
    let sud = SjudQuery::rel("r")
        .select(Pred::cmp_const(2, CmpOp::Ge, 800i64))
        .union(SjudQuery::rel("s").select(Pred::cmp_const(2, CmpOp::Lt, 100i64)))
        .diff(SjudQuery::rel("r").select(Pred::cmp_const(1, CmpOp::Lt, 1000i64)));
    let sjud =
        SjudQuery::rel("r")
            .product(SjudQuery::rel("s"))
            .select(Pred::cmp_cols(0, CmpOp::Eq, 3).and(Pred::cmp_const(2, CmpOp::Ge, 800i64)))
            .diff(SjudQuery::rel("r").product(SjudQuery::rel("s")).select(
                Pred::cmp_cols(0, CmpOp::Eq, 3).and(Pred::cmp_const(5, CmpOp::Lt, 100i64)),
            ));
    vec![("S", s), ("SJ", sj), ("SUD", sud), ("SJUD", sjud)]
}

fn bench_queryclass(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_queryclass");
    group.sample_size(10);
    let w = JoinWorkload::new(1000, 0.02, 79);
    let hippo =
        Hippo::with_options(w.build().unwrap(), w.constraints(), HippoOptions::full()).unwrap();
    for (class, q) in queries() {
        group.bench_with_input(BenchmarkId::new("hippo_full", class), &class, |b, _| {
            b.iter(|| hippo.consistent_answers(&q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queryclass);
criterion_main!(benches);
