//! Criterion bench for experiment **E2**: CQA running time vs conflict
//! rate at fixed size — Hippo's cost should be flat in the conflict rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hippo_cqa::prelude::*;

fn join_query() -> SjudQuery {
    SjudQuery::rel("r")
        .product(SjudQuery::rel("s"))
        .select(Pred::cmp_cols(0, CmpOp::Eq, 3).and(Pred::cmp_const(2, CmpOp::Ge, 500i64)))
}

fn bench_conflicts(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_conflicts");
    group.sample_size(10);
    for rate_pct in [0u32, 2, 5, 10] {
        let w = JoinWorkload::new(1000, rate_pct as f64 / 100.0, 78);
        let q = join_query();
        let hippo =
            Hippo::with_options(w.build().unwrap(), w.constraints(), HippoOptions::full()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("hippo_full", rate_pct),
            &rate_pct,
            |b, _| b.iter(|| hippo.consistent_answers(&q).unwrap()),
        );
        let db = w.build().unwrap();
        group.bench_with_input(
            BenchmarkId::new("rewriting", rate_pct),
            &rate_pct,
            |b, _| b.iter(|| rewritten_answers(&q, &w.constraints(), &db).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_conflicts);
criterion_main!(benches);
