//! Criterion bench for the **parallel batched prover** (PR 3): answer
//! pipeline throughput vs candidate count, prover thread count, and the
//! closure-signature cache (the *within-call* per-shard one).
//!
//! Every iteration clears the persistent cross-call verdict cache
//! (added in PR 4) first — otherwise iteration 1 seeds it and the rest
//! measure cache reads instead of the prover stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hippo_cqa::prelude::*;
use hippo_engine::Database;

fn diff_query() -> SjudQuery {
    SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)))
}

fn hippo_for(n: usize, rate: f64, opts: HippoOptions) -> Hippo {
    let spec = FdTableSpec::new("t", n, rate, 81);
    let mut db = Database::new();
    spec.populate(&mut db).unwrap();
    Hippo::with_options(db, vec![spec.fd()], opts).unwrap()
}

/// Answer-pipeline time vs candidate count (KG mode, 5% conflicts).
fn bench_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("prover_candidates");
    group.sample_size(10);
    let q = diff_query();
    for n in [1000usize, 4000, 16000] {
        let hippo = hippo_for(n, 0.05, HippoOptions::kg().with_prover_threads(1));
        group.bench_with_input(BenchmarkId::new("kg_1thread", n), &n, |b, _| {
            b.iter(|| {
                hippo.clear_verdict_cache();
                hippo.consistent_answers(&q).unwrap()
            })
        });
    }
    group.finish();
}

/// Thread scaling at fixed size (shard decomposition is fixed, so every
/// row produces identical answers and stats).
fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("prover_threads");
    group.sample_size(10);
    let q = diff_query();
    for threads in [1usize, 2, 4, 8] {
        let hippo = hippo_for(16000, 0.05, HippoOptions::kg().with_prover_threads(threads));
        group.bench_with_input(BenchmarkId::new("kg_16k", threads), &threads, |b, _| {
            b.iter(|| {
                hippo.clear_verdict_cache();
                hippo.consistent_answers(&q).unwrap()
            })
        });
    }
    group.finish();
}

/// Closure-signature cache ablation (single thread isolates the cache
/// effect from parallel speedup).
fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("prover_cache");
    group.sample_size(10);
    let q = diff_query();
    for (label, opts) in [
        ("memoized", HippoOptions::kg().with_prover_threads(1)),
        (
            "uncached",
            HippoOptions::kg()
                .with_prover_threads(1)
                .without_prover_cache(),
        ),
    ] {
        let hippo = hippo_for(16000, 0.05, opts);
        group.bench_function(BenchmarkId::new(label, "16k"), |b| {
            b.iter(|| {
                hippo.clear_verdict_cache();
                hippo.consistent_answers(&q).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidates, bench_threads, bench_cache);
criterion_main!(benches);
