//! Criterion bench for experiment **E4**: conflict detection / hypergraph
//! construction time vs relation size, plus the PR 2 additions —
//! worker-thread scaling on the sharded pipeline and incremental
//! redetection vs full rebuild.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hippo_cqa::detect::{detect_conflicts, detect_conflicts_with, DetectOptions};
use hippo_cqa::prelude::*;
use hippo_engine::{Database, Value};

fn bench_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_detect");
    group.sample_size(10);
    for &n in &[1000usize, 4000, 16000] {
        let spec = FdTableSpec::new("t", n, 0.02, 80);
        let mut db = Database::new();
        spec.populate(&mut db).unwrap();
        let constraints = [spec.fd()];
        group.bench_with_input(BenchmarkId::new("fd_fast_path", n), &n, |b, _| {
            b.iter(|| detect_conflicts(db.catalog(), &constraints).unwrap())
        });
    }
    // Exclusion constraints exercise the general (hash-joined) path.
    for &n in &[1000usize, 4000] {
        let w = JoinWorkload::new(n, 0.02, 80);
        let db = w.build().unwrap();
        let constraints = [DenialConstraint::exclusion("r", "s", &[(0, 0), (1, 1)])];
        group.bench_with_input(BenchmarkId::new("exclusion_hash_join", n), &n, |b, _| {
            b.iter(|| detect_conflicts(db.catalog(), &constraints).unwrap())
        });
    }
    group.finish();
}

/// Worker-thread scaling on the 16k-row FD workload (the shard
/// decomposition is fixed, so every thread count produces the same
/// graph).
fn bench_detect_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_detect_threads");
    group.sample_size(10);
    let spec = FdTableSpec::new("t", 16000, 0.02, 80);
    let mut db = Database::new();
    spec.populate(&mut db).unwrap();
    let constraints = [spec.fd()];
    for &threads in &[1usize, 2, 4, 8] {
        let opts = DetectOptions::with_threads(threads);
        group.bench_with_input(BenchmarkId::new("fd_16k", threads), &threads, |b, _| {
            b.iter(|| detect_conflicts_with(db.catalog(), &constraints, &opts).unwrap())
        });
    }
    group.finish();
}

/// Incremental redetect (insert one conflicting tuple, reconcile, undo,
/// reconcile) vs a full rebuild on the same 16k-row instance.
fn bench_redetect(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_redetect");
    group.sample_size(10);
    let spec = FdTableSpec::new("t", 16000, 0.02, 80);
    let mut db = Database::new();
    spec.populate(&mut db).unwrap();
    let mut hippo = Hippo::new(db, vec![spec.fd()]).unwrap();
    group.bench_function("full_rebuild", |b| {
        b.iter(|| hippo.redetect_full().unwrap())
    });
    group.bench_function("incremental_insert_delete_roundtrip", |b| {
        let mut i = 0i64;
        b.iter(|| {
            let row = vec![Value::Int(i % 16000), Value::Int(-1), Value::Int(0)];
            i += 1;
            let tids = hippo.insert_tuples("t", vec![row]).unwrap();
            hippo.redetect().unwrap();
            hippo.delete_tuples("t", &tids).unwrap();
            hippo.redetect().unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_detect, bench_detect_threads, bench_redetect);
criterion_main!(benches);
