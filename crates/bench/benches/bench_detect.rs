//! Criterion bench for experiment **E4**: conflict detection / hypergraph
//! construction time vs relation size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hippo_cqa::detect::detect_conflicts;
use hippo_cqa::prelude::*;
use hippo_engine::Database;

fn bench_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_detect");
    group.sample_size(10);
    for &n in &[1000usize, 4000, 16000] {
        let spec = FdTableSpec::new("t", n, 0.02, 80);
        let mut db = Database::new();
        spec.populate(&mut db).unwrap();
        let constraints = [spec.fd()];
        group.bench_with_input(BenchmarkId::new("fd_fast_path", n), &n, |b, _| {
            b.iter(|| detect_conflicts(db.catalog(), &constraints).unwrap())
        });
    }
    // Exclusion constraints exercise the general (hash-joined) path.
    for &n in &[1000usize, 4000] {
        let w = JoinWorkload::new(n, 0.02, 80);
        let db = w.build().unwrap();
        let constraints = [DenialConstraint::exclusion("r", "s", &[(0, 0), (1, 1)])];
        group.bench_with_input(BenchmarkId::new("exclusion_hash_join", n), &n, |b, _| {
            b.iter(|| detect_conflicts(db.catalog(), &constraints).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detect);
criterion_main!(benches);
