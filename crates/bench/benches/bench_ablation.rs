//! Criterion bench for experiment **E5**: optimization ablation — base
//! Hippo (per-check SQL membership queries) vs knowledge gathering vs
//! knowledge gathering + core filter on a difference query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hippo_cqa::prelude::*;
use hippo_engine::Database;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_ablation");
    group.sample_size(10);
    let spec = FdTableSpec::new("t", 1000, 0.05, 81);
    let q =
        SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)));
    for (label, opts) in [
        ("base", HippoOptions::base()),
        ("kg", HippoOptions::kg()),
        ("kg_core_filter", HippoOptions::full()),
    ] {
        let mut db = Database::new();
        spec.populate(&mut db).unwrap();
        let hippo = Hippo::with_options(db, vec![spec.fd()], opts).unwrap();
        group.bench_with_input(BenchmarkId::new(label, 1000), &label, |b, _| {
            b.iter(|| hippo.consistent_answers(&q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
