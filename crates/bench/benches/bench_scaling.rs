//! Criterion bench for experiment **E1**: CQA running time vs relation
//! size on the σ+join workload (2% conflicts), for each strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hippo_cqa::prelude::*;

fn join_query() -> SjudQuery {
    SjudQuery::rel("r")
        .product(SjudQuery::rel("s"))
        .select(Pred::cmp_cols(0, CmpOp::Eq, 3).and(Pred::cmp_const(2, CmpOp::Ge, 500i64)))
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_scaling");
    group.sample_size(10);
    for &n in &[500usize, 1000, 2000] {
        let w = JoinWorkload::new(n, 0.02, 77);
        let q = join_query();

        let db = w.build().unwrap();
        let sql = q.to_sql(db.catalog()).unwrap();
        group.bench_with_input(BenchmarkId::new("plain_sql", n), &n, |b, _| {
            b.iter(|| db.query(&sql).unwrap())
        });

        group.bench_with_input(BenchmarkId::new("rewriting", n), &n, |b, _| {
            b.iter(|| rewritten_answers(&q, &w.constraints(), &db).unwrap())
        });

        let hippo_kg =
            Hippo::with_options(w.build().unwrap(), w.constraints(), HippoOptions::kg()).unwrap();
        group.bench_with_input(BenchmarkId::new("hippo_kg", n), &n, |b, _| {
            b.iter(|| hippo_kg.consistent_answers(&q).unwrap())
        });

        let hippo_full =
            Hippo::with_options(w.build().unwrap(), w.constraints(), HippoOptions::full()).unwrap();
        group.bench_with_input(BenchmarkId::new("hippo_full", n), &n, |b, _| {
            b.iter(|| hippo_full.consistent_answers(&q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
