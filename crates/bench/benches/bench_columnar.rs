//! Vectorized vs row-mode execution on the shapes PR 10 targets: full-
//! scan filter, grouped aggregation, and the conflict detector's hash
//! pass, at 1k / 4k / 16k rows. The columnar override forces each
//! engine explicitly so both sides run on identical instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hippo_engine::{set_columnar_override, Database, Value};

fn db_with(n: usize) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k INT, v INT, s TEXT)").unwrap();
    let rows: Vec<Vec<Value>> = (0..n as i64)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i * 7 % 1000),
                Value::text(["x", "y", "z"][(i % 3) as usize]),
            ]
        })
        .collect();
    db.insert_rows("t", rows).unwrap();
    // Build the column store outside the timed region: steady-state
    // queries hit a warm store (DML invalidates it, reads rebuild once).
    db.catalog().table("t").unwrap().column_store().unwrap();
    db
}

fn bench_columnar(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar");
    group.sample_size(20);

    for &n in &[1000usize, 4000, 16000] {
        let db = db_with(n);
        for (engine, columnar) in [("vectorized", true), ("rowmode", false)] {
            group.bench_with_input(
                BenchmarkId::new(format!("filter_{engine}"), n),
                &n,
                |b, _| {
                    set_columnar_override(Some(columnar));
                    b.iter(|| db.query("SELECT k FROM t WHERE v >= 500").unwrap());
                    set_columnar_override(None);
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("aggregate_{engine}"), n),
                &n,
                |b, _| {
                    set_columnar_override(Some(columnar));
                    b.iter(|| {
                        db.query("SELECT s, COUNT(*), SUM(v) FROM t GROUP BY s")
                            .unwrap()
                    });
                    set_columnar_override(None);
                },
            );
        }

        // The FD-detection hash pass reads LHS projections; vectorized
        // it hashes straight off the contiguous column slices.
        let table = db.catalog().table("t").unwrap();
        let store = table.column_store().unwrap();
        group.bench_with_input(BenchmarkId::new("detect_hash_rowmode", n), &n, |b, _| {
            b.iter(|| {
                use std::hash::{Hash, Hasher};
                let mut acc = 0u64;
                for (_, row) in table.iter() {
                    let mut h = rustc_hash::FxHasher::default();
                    if row[1].is_null() {
                        continue;
                    }
                    row[1].hash(&mut h);
                    acc = acc.wrapping_add(h.finish());
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("detect_hash_vectorized", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                store.for_each_hash::<rustc_hash::FxHasher, _>(0..store.len(), &[1], |_, h| {
                    acc = acc.wrapping_add(h);
                });
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_columnar);
criterion_main!(benches);
