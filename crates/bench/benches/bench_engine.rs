//! Microbenchmarks for the RDBMS substrate itself (not a paper figure —
//! sanity numbers for the backend the CQA layer sits on): parsing, point
//! membership queries, hash joins and set operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hippo_engine::{Database, Value};

fn db_with(n: usize) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("CREATE TABLE u (k INT, v INT)").unwrap();
    let rows: Vec<Vec<Value>> = (0..n as i64)
        .map(|i| vec![Value::Int(i), Value::Int(i * 7 % 1000)])
        .collect();
    db.insert_rows("t", rows.clone()).unwrap();
    db.insert_rows("u", rows).unwrap();
    db
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);

    group.bench_function("parse_select", |b| {
        b.iter(|| {
            hippo_sql::parse_query(
                "SELECT a.k, b.v FROM t a INNER JOIN u b ON a.k = b.k WHERE a.v > 10 \
                 UNION SELECT k, v FROM t WHERE v < 5 ORDER BY 1 LIMIT 10",
            )
            .unwrap()
        })
    });

    for &n in &[1000usize, 10000] {
        let db = db_with(n);
        group.bench_with_input(BenchmarkId::new("hash_join", n), &n, |b, _| {
            b.iter(|| {
                db.query("SELECT COUNT(*) FROM t a, u b WHERE a.k = b.k AND a.v >= 500")
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("point_membership", n), &n, |b, _| {
            b.iter(|| {
                db.query("SELECT 1 FROM t WHERE k = 500 AND v = 500 LIMIT 1")
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("except", n), &n, |b, _| {
            b.iter(|| {
                db.query("SELECT k FROM t EXCEPT SELECT k FROM u WHERE v < 500")
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
