//! Criterion bench for **index-backed membership probes** (PR 5): one
//! prepared physical point probe — `SELECT 1 FROM t WHERE k = $0 AND
//! v = $1 AND payload = $2 LIMIT 1` — executed against a frozen
//! snapshot, with the optimizer choosing the access path. The
//! `IndexLookup` plan (hash-bucket probe, O(1)) is measured against
//! the `SeqScan` plan it replaces (early-exiting scan, O(table))
//! across table sizes; keys rotate so hits and misses both occur.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hippo_cqa::prelude::*;
use hippo_engine::{
    physicalize_with, BoundExpr, Database, DbSnapshot, LogicalPlan, PhysicalOptions, PhysicalPlan,
    Value,
};

fn snapshot_for(n: usize) -> DbSnapshot {
    let spec = FdTableSpec::new("t", n, 0.05, 84);
    let mut db = Database::new();
    spec.populate(&mut db).unwrap();
    db.snapshot()
}

/// The probe plan the base-mode membership path compiles per literal:
/// full-row equality with `Param` placeholders, `LIMIT 1`.
fn probe_plan(snap: &DbSnapshot, use_indexes: bool) -> PhysicalPlan {
    let predicate = BoundExpr::conjoin((0..3).map(|j| BoundExpr::Binary {
        op: hippo_sql::BinaryOp::Eq,
        left: Box::new(BoundExpr::Column(j)),
        right: Box::new(BoundExpr::Param(j)),
    }));
    let plan = LogicalPlan::Limit {
        input: Box::new(LogicalPlan::Project {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(LogicalPlan::Scan { table: "t".into() }),
                predicate,
            }),
            exprs: vec![BoundExpr::Literal(Value::Int(1))],
        }),
        limit: Some(1),
        offset: 0,
    };
    physicalize_with(plan, snap.catalog(), &PhysicalOptions { use_indexes })
}

fn bench_point_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_point");
    for n in [1000usize, 4000, 16000] {
        let snap = snapshot_for(n);
        for (label, use_indexes) in [("index", true), ("scan", false)] {
            let plan = probe_plan(&snap, use_indexes);
            assert_eq!(plan.uses_index(), use_indexes, "unexpected access path");
            let mut k = 0i64;
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    // Rotate past the table end so ~1 in 4 probes miss.
                    k = (k + 1) % (n as i64 + n as i64 / 3);
                    let params = [Value::Int(k), Value::Int(7), Value::Int(3)];
                    snap.run_prepared(&plan, &params).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_point_probe);
criterion_main!(benches);
