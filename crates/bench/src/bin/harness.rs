//! Experiment harness: regenerates every table/figure of the reproduction.
//!
//! Usage:
//!   harness [--quick] [--json PATH] [all|d1|d2|e1|e2|e3|e4|e5|e6|e7|e8|e9|e10|e11|e12|e13|e14|e15|e16]...
//!
//! With no experiment arguments, runs everything. `--quick` shrinks
//! workload sizes (used in CI and on laptops; the full sizes match
//! EXPERIMENTS.md). `--json PATH` additionally writes every produced
//! table as a JSON document — CI uploads it so benchmark trajectories
//! accumulate across commits.

use hippo_bench::experiments as ex;

fn main() {
    // Hidden crash-child modes for E14/E15: selected purely by env var
    // so arbitrary argv (meant for libtest targets) is ignored. Never
    // return when active — the parent SIGKILLs this process.
    ex::e14_child_from_env();
    ex::e15_child_from_env();

    let mut args = std::env::args().skip(1).peekable();
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => wanted.push(other.to_string()),
        }
    }
    let run_all = wanted.is_empty() || wanted.iter().any(|w| w == "all");

    let mut failures = 0;
    let mut tables: Vec<ex::Table> = Vec::new();
    let mut run = |id: &str, f: &dyn Fn(bool) -> Result<ex::Table, Box<dyn std::error::Error>>| {
        if run_all || wanted.iter().any(|w| w == id) {
            match f(quick) {
                Ok(t) => {
                    println!("{}\n", t.render());
                    tables.push(t);
                }
                Err(e) => {
                    eprintln!("experiment {id} failed: {e}");
                    failures += 1;
                }
            }
        }
    };

    println!(
        "# Hippo experiment harness ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    run("d1", &ex::d1_information);
    run("d2", &|_| ex::d2_expressiveness());
    run("e1", &ex::e1_scaling);
    run("e2", &ex::e2_conflicts);
    run("e3", &ex::e3_query_classes);
    run("e4", &ex::e4_detection);
    run("e5", &ex::e5_ablation);
    run("e6", &ex::e6_envelope);
    run("e7", &ex::e7_repair_blowup);
    run("e8", &ex::e8_parallel);
    run("e9", &ex::e9_prover);
    run("e10", &ex::e10_base_mode);
    run("e11", &ex::e11_index_probes);
    run("e12", &ex::e12_governance);
    run("e13", &ex::e13_chaos_service);
    run("e14", &ex::e14_crash_recovery);
    run("e15", &ex::e15_replication_failover);
    run("e16", &ex::e16_columnar);

    if let Some(path) = json_path {
        let json = render_json(quick, &tables);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            failures += 1;
        } else {
            println!("wrote JSON results to {path}");
        }
    }

    if failures > 0 {
        std::process::exit(1);
    }
}

/// Hand-rolled JSON rendering (the build environment has no serde).
fn render_json(quick: bool, tables: &[ex::Table]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"experiments\": [\n",
        if quick { "quick" } else { "full" }
    ));
    for (i, t) in tables.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"id\": {},\n", json_str(t.id)));
        out.push_str(&format!("      \"title\": {},\n", json_str(&t.title)));
        out.push_str(&format!(
            "      \"header\": {},\n",
            json_str_array(&t.header)
        ));
        out.push_str("      \"rows\": [");
        for (j, row) in t.rows.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str_array(row));
        }
        out.push_str("],\n");
        out.push_str(&format!("      \"notes\": {}\n", json_str_array(&t.notes)));
        out.push_str(if i + 1 < tables.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let parts: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", parts.join(", "))
}
