//! Experiment harness: regenerates every table/figure of the reproduction.
//!
//! Usage:
//!   harness [--quick] [all|d1|d2|e1|e2|e3|e4|e5|e6|e7]...
//!
//! With no experiment arguments, runs everything. `--quick` shrinks
//! workload sizes (used in CI and on laptops; the full sizes match
//! EXPERIMENTS.md).

use hippo_bench::experiments as ex;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let run_all = wanted.is_empty() || wanted.contains(&"all");

    let mut failures = 0;
    let mut run = |id: &str, f: &dyn Fn(bool) -> Result<ex::Table, Box<dyn std::error::Error>>| {
        if run_all || wanted.contains(&id) {
            match f(quick) {
                Ok(t) => println!("{}\n", t.render()),
                Err(e) => {
                    eprintln!("experiment {id} failed: {e}");
                    failures += 1;
                }
            }
        }
    };

    println!(
        "# Hippo experiment harness ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    run("d1", &ex::d1_information);
    run("d2", &|_| ex::d2_expressiveness());
    run("e1", &ex::e1_scaling);
    run("e2", &ex::e2_conflicts);
    run("e3", &ex::e3_query_classes);
    run("e4", &ex::e4_detection);
    run("e5", &ex::e5_ablation);
    run("e6", &ex::e6_envelope);
    run("e7", &ex::e7_repair_blowup);

    if failures > 0 {
        std::process::exit(1);
    }
}
