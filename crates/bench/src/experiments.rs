//! Experiment implementations: one function per table/figure of the
//! reproduction (see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! Each experiment returns a [`Table`] — a header plus rows of cells — so
//! the harness binary and the Criterion benches share the same workload
//! code. All workloads are seeded; re-running reproduces identical inputs.

use hippo_cqa::detect::detect_conflicts;
use hippo_cqa::naive::{conflict_free_answers, naive_consistent_answers, plain_answers};
use hippo_cqa::prelude::*;
use hippo_engine::{Database, Row, Value};
use std::time::{Duration, Instant};

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. "E1".
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (shape expectations, caveats).
    pub notes: Vec<String>,
}

impl Table {
    fn new(id: &'static str, title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            id,
            title: title.into(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut all = vec![self.header.clone()];
        all.extend(self.rows.clone());
        let cols = self.header.len();
        let widths: Vec<usize> = (0..cols)
            .map(|c| {
                all.iter()
                    .map(|r| r.get(c).map(String::len).unwrap_or(0))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        let fmt_row = |r: &[String]| {
            r.iter()
                .enumerate()
                .map(|(c, cell)| format!("{cell:>width$}", width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// The standard selection-over-join query used by E1/E2:
/// `σ(r.k = s.k ∧ r.payload ≥ p)(r × s)`.
fn join_query(payload_min: i64) -> SjudQuery {
    SjudQuery::rel("r")
        .product(SjudQuery::rel("s"))
        .select(Pred::cmp_cols(0, CmpOp::Eq, 3).and(Pred::cmp_const(2, CmpOp::Ge, payload_min)))
}

/// One measured row comparing the strategies on a join workload.
struct StrategyTimes {
    plain_sql: Duration,
    rewriting: Option<Duration>,
    hippo_base: Duration,
    hippo_kg: Duration,
    hippo_full: Duration,
    answers: usize,
}

fn measure_strategies(
    workload: &JoinWorkload,
    q: &SjudQuery,
) -> Result<StrategyTimes, Box<dyn std::error::Error>> {
    // Plain SQL evaluation of the query itself (ignore inconsistency).
    let db = workload.build()?;
    let sql = q.to_sql(db.catalog())?;
    let t = Instant::now();
    let _plain = db.query(&sql)?;
    let plain_sql = t.elapsed();

    // Query rewriting.
    let rewriting = match rewritten_answers(q, &workload.constraints(), &db) {
        Ok(_rows) => {
            let t = Instant::now();
            let _ = rewritten_answers(q, &workload.constraints(), &db)?;
            Some(t.elapsed())
        }
        Err(RewriteError::Unsupported(_)) => None,
        Err(e) => return Err(Box::new(e)),
    };

    // Hippo at three optimization levels (conflict detection excluded: it
    // is a once-per-instance cost, reported separately in E4).
    let run = |opts: HippoOptions| -> Result<(Duration, usize), Box<dyn std::error::Error>> {
        let hippo = Hippo::with_options(workload.build()?, workload.constraints(), opts)?;
        let t = Instant::now();
        let answers = hippo.consistent_answers(q)?;
        Ok((t.elapsed(), answers.len()))
    };
    let (hippo_base, _) = run(HippoOptions::base())?;
    let (hippo_kg, _) = run(HippoOptions::kg())?;
    let (hippo_full, n) = run(HippoOptions::full())?;

    Ok(StrategyTimes {
        plain_sql,
        rewriting,
        hippo_base,
        hippo_kg,
        hippo_full,
        answers: n,
    })
}

/// D1 — information extracted: CQA vs conflict-free strawman vs plain SQL,
/// varying conflict rate.
///
/// Workload: sensor-style readings with an FD `k → v` plus a CHECK denial
/// banning out-of-range values. Each conflict is a corrupted retransmission
/// whose value is *also* impossible — so the corrupted copy is in **no**
/// repair and the clean copy is in **every** repair. CQA proves the clean
/// copies consistent; the "delete everything that conflicts" strawman
/// throws both copies away. The gain column counts the rescued tuples.
pub fn d1_information(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut t = Table::new(
        "D1",
        "information extracted: consistent answers vs deleting conflicting tuples",
        &[
            "conflict%",
            "rows",
            "plain",
            "conflict-free",
            "consistent(CQA)",
            "CQA-gain",
        ],
    );
    let base_rows = if quick { 400 } else { 2000 };
    for rate in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT, v INT, payload INT)")?;
        let mut rng = StdRng::seed_from_u64(11);
        let mut rows = Vec::new();
        for i in 0..base_rows {
            rows.push(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..1000)),
                Value::Int(rng.gen_range(0..1000)),
            ]);
        }
        let n_conflicts = (base_rows as f64 * rate).round() as usize;
        for c in 0..n_conflicts {
            // Corrupted duplicate: same key, impossible value (≥ 5000).
            rows.push(vec![
                Value::Int(c as i64),
                Value::Int(5000 + rng.gen_range(0..1000)),
                Value::Int(rng.gen_range(0..1000)),
            ]);
        }
        db.insert_rows("t", rows)?;
        let constraints = vec![
            DenialConstraint::functional_dependency("t", &[0], 1),
            DenialConstraint::check(
                "t",
                vec![Comparison {
                    op: CmpOp::Ge,
                    left: Term::Attr(AttrRef { atom: 0, col: 1 }),
                    right: Term::Const(Value::Int(5000)),
                }],
            ),
        ];
        let (g, _) = detect_conflicts(db.catalog(), &constraints)?;
        // Query: the physically valid readings.
        let q = SjudQuery::rel("t").select(Pred::cmp_const(1, CmpOp::Lt, 1000i64));
        let plain = plain_answers(&q, db.catalog()).len();
        let straw = conflict_free_answers(&q, db.catalog(), &g).len();
        let total_rows = db.catalog().table("t")?.len();
        let hippo = Hippo::new(db, constraints)?;
        let cqa = hippo.consistent_answers(&q)?.len();
        let gain = cqa as i64 - straw as i64;
        t.rows.push(vec![
            format!("{:.0}%", rate * 100.0),
            total_rows.to_string(),
            plain.to_string(),
            straw.to_string(),
            cqa.to_string(),
            format!("{gain:+}"),
        ]);
    }
    t.notes.push(
        "every conflicting pair consists of a clean copy (in every repair: its corrupted \
         partner is impossible, hence in no repair) and a corrupted copy; CQA rescues all \
         clean copies, the strawman deletes them — the gain equals the conflict count"
            .into(),
    );
    Ok(t)
}

/// D2 — expressiveness matrix: which (query class, constraint class)
/// combinations each approach supports, with agreement checks vs ground
/// truth where both run.
pub fn d2_expressiveness() -> Result<Table, Box<dyn std::error::Error>> {
    let mut t = Table::new(
        "D2",
        "expressiveness: Hippo vs query rewriting (✓ = supported & matches ground truth)",
        &["query class", "constraints", "Hippo", "rewriting"],
    );

    let fresh_db = || -> Result<Database, Box<dyn std::error::Error>> {
        let mut d = Database::new();
        d.execute("CREATE TABLE a (x INT, y INT)")?;
        d.execute("CREATE TABLE b (x INT, y INT)")?;
        d.execute("INSERT INTO a VALUES (1,1), (1,2), (2,1), (3,5), (3,6), (3,7)")?;
        d.execute("INSERT INTO b VALUES (1,1), (2,9), (4,4)")?;
        Ok(d)
    };
    let db = fresh_db()?;

    let fd = DenialConstraint::functional_dependency("a", &[0], 1);
    let excl = DenialConstraint::exclusion("a", "b", &[(0, 0)]);
    let ternary = DenialConstraint::new(
        "ternary",
        vec!["a".into(), "a".into(), "a".into()],
        vec![
            Comparison::attr_eq(AttrRef { atom: 0, col: 0 }, AttrRef { atom: 1, col: 0 }),
            Comparison::attr_eq(AttrRef { atom: 1, col: 0 }, AttrRef { atom: 2, col: 0 }),
            Comparison {
                op: CmpOp::Lt,
                left: Term::Attr(AttrRef { atom: 0, col: 1 }),
                right: Term::Attr(AttrRef { atom: 1, col: 1 }),
            },
            Comparison {
                op: CmpOp::Lt,
                left: Term::Attr(AttrRef { atom: 1, col: 1 }),
                right: Term::Attr(AttrRef { atom: 2, col: 1 }),
            },
        ],
    );

    let s_query = SjudQuery::rel("a").select(Pred::cmp_const(1, CmpOp::Ge, 1i64));
    let sj_query = SjudQuery::rel("a")
        .product(SjudQuery::rel("b"))
        .select(Pred::cmp_cols(0, CmpOp::Eq, 2));
    let sud_query = SjudQuery::rel("a")
        .select(Pred::cmp_const(1, CmpOp::Le, 2i64))
        .union(SjudQuery::rel("b"))
        .diff(SjudQuery::rel("b").select(Pred::cmp_const(1, CmpOp::Gt, 5i64)));
    let sd_query =
        SjudQuery::rel("a").diff(SjudQuery::rel("b").select(Pred::cmp_const(1, CmpOp::Lt, 5i64)));

    let cases: Vec<(&str, SjudQuery, &str, Vec<DenialConstraint>)> = vec![
        ("S", s_query.clone(), "FD", vec![fd.clone()]),
        ("SJ", sj_query.clone(), "FD", vec![fd.clone()]),
        ("SD", sd_query.clone(), "FD", vec![fd.clone()]),
        ("SUD", sud_query.clone(), "FD", vec![fd.clone()]),
        (
            "S",
            s_query.clone(),
            "FD+exclusion",
            vec![fd.clone(), excl.clone()],
        ),
        ("S", s_query, "ternary denial", vec![ternary.clone()]),
        ("SJ", sj_query, "ternary denial", vec![ternary]),
    ];

    for (qclass, q, cclass, constraints) in cases {
        let (g, _) = detect_conflicts(db.catalog(), &constraints)?;
        let truth = naive_consistent_answers(&q, db.catalog(), &g);

        let hippo = Hippo::new(fresh_db()?, constraints.clone())?;
        let hippo_cell = if hippo.consistent_answers(&q)? == truth {
            "✓"
        } else {
            "✗ WRONG"
        };

        let rw_cell = match rewritten_answers(&q, &constraints, &db) {
            Ok(rows) => {
                if rows == truth {
                    "✓"
                } else {
                    "✗ WRONG"
                }
            }
            Err(RewriteError::Unsupported(_)) => "n/a",
            Err(_) => "error",
        };
        t.rows.push(vec![
            qclass.to_string(),
            cclass.to_string(),
            hippo_cell.to_string(),
            rw_cell.to_string(),
        ]);
    }
    t.notes.push(
        "rewriting is n/a for unions and for non-binary constraints — the gap the demo \
         highlights; Hippo covers the full SJUD class under arbitrary denial constraints"
            .into(),
    );
    Ok(t)
}

/// E1 — running time vs database size (join query, 2% conflicts).
pub fn e1_scaling(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    let mut t = Table::new(
        "E1",
        "running time vs relation size (σ+join query, 2% conflicts; ms)",
        &[
            "|r|=|s|",
            "plain SQL",
            "rewriting",
            "Hippo base",
            "Hippo+KG",
            "Hippo full",
            "answers",
        ],
    );
    let sizes: &[usize] = if quick {
        &[500, 1000, 2000]
    } else {
        &[1000, 2000, 4000, 8000, 16000]
    };
    for &n in sizes {
        let w = JoinWorkload::new(n, 0.02, 77);
        let q = join_query(500);
        let m = measure_strategies(&w, &q)?;
        t.rows.push(vec![
            n.to_string(),
            ms(m.plain_sql),
            m.rewriting.map(ms).unwrap_or_else(|| "n/a".into()),
            ms(m.hippo_base),
            ms(m.hippo_kg),
            ms(m.hippo_full),
            m.answers.to_string(),
        ]);
    }
    t.notes.push(
        "expected shape: Hippo tracks plain SQL within a small constant factor; \
         rewriting's correlated NOT EXISTS residues grow faster on joins"
            .into(),
    );
    Ok(t)
}

/// E2 — running time vs conflict percentage at fixed size.
pub fn e2_conflicts(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    let n = if quick { 1000 } else { 8000 };
    let mut t = Table::new(
        "E2",
        format!("running time vs conflict rate (|r|=|s|={n}; ms)"),
        &[
            "conflict%",
            "plain SQL",
            "rewriting",
            "Hippo base",
            "Hippo+KG",
            "Hippo full",
            "answers",
        ],
    );
    for rate in [0.0, 0.01, 0.02, 0.05, 0.10] {
        let w = JoinWorkload::new(n, rate, 78);
        let q = join_query(500);
        let m = measure_strategies(&w, &q)?;
        t.rows.push(vec![
            format!("{:.0}%", rate * 100.0),
            ms(m.plain_sql),
            m.rewriting.map(ms).unwrap_or_else(|| "n/a".into()),
            ms(m.hippo_base),
            ms(m.hippo_kg),
            ms(m.hippo_full),
            m.answers.to_string(),
        ]);
    }
    t.notes.push(
        "Hippo's cost is driven by envelope size, not conflict count: only conflicting \
         candidates reach the prover, so times stay nearly flat as conflicts grow"
            .into(),
    );
    Ok(t)
}

/// E3 — running time by query class (S, SJ, SUD, SJUD).
pub fn e3_query_classes(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    let n = if quick { 1000 } else { 8000 };
    let mut t = Table::new(
        "E3",
        format!("running time by query class (|r|=|s|={n}, 2% conflicts; ms)"),
        &["class", "plain SQL", "rewriting", "Hippo full", "answers"],
    );
    let w = JoinWorkload::new(n, 0.02, 79);

    let s_q = SjudQuery::rel("r").select(Pred::cmp_const(2, CmpOp::Ge, 500i64));
    let sj_q = join_query(500);
    let sud_q = SjudQuery::rel("r")
        .select(Pred::cmp_const(2, CmpOp::Ge, 800i64))
        .union(SjudQuery::rel("s").select(Pred::cmp_const(2, CmpOp::Lt, 100i64)))
        .diff(SjudQuery::rel("r").select(Pred::cmp_const(1, CmpOp::Lt, 1000i64)));
    let sjud_q =
        SjudQuery::rel("r")
            .product(SjudQuery::rel("s"))
            .select(Pred::cmp_cols(0, CmpOp::Eq, 3).and(Pred::cmp_const(2, CmpOp::Ge, 800i64)))
            .diff(SjudQuery::rel("r").product(SjudQuery::rel("s")).select(
                Pred::cmp_cols(0, CmpOp::Eq, 3).and(Pred::cmp_const(5, CmpOp::Lt, 100i64)),
            ));

    for (class, q) in [("S", s_q), ("SJ", sj_q), ("SUD", sud_q), ("SJUD", sjud_q)] {
        let db = w.build()?;
        let sql = q.to_sql(db.catalog())?;
        let t0 = Instant::now();
        let _ = db.query(&sql)?;
        let plain = t0.elapsed();

        let rw = match rewritten_answers(&q, &w.constraints(), &db) {
            Ok(_) => {
                let t0 = Instant::now();
                let _ = rewritten_answers(&q, &w.constraints(), &db)?;
                Some(t0.elapsed())
            }
            Err(RewriteError::Unsupported(_)) => None,
            Err(e) => return Err(Box::new(e)),
        };

        let hippo = Hippo::with_options(w.build()?, w.constraints(), HippoOptions::full())?;
        let t0 = Instant::now();
        let answers = hippo.consistent_answers(&q)?;
        let full = t0.elapsed();

        t.rows.push(vec![
            class.to_string(),
            ms(plain),
            rw.map(ms).unwrap_or_else(|| "n/a".into()),
            ms(full),
            answers.len().to_string(),
        ]);
    }
    t.notes
        .push("rewriting cannot run the union classes at all (n/a)".into());
    Ok(t)
}

/// E4 — conflict detection / hypergraph construction time vs size.
pub fn e4_detection(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    let mut t = Table::new(
        "E4",
        "conflict detection and hypergraph size vs relation size (2% conflicts)",
        &[
            "rows",
            "detect ms",
            "edges",
            "conflicting tuples",
            "combinations checked",
        ],
    );
    let sizes: &[usize] = if quick {
        &[1000, 4000, 16000]
    } else {
        &[1000, 4000, 16000, 64000, 128000]
    };
    for &n in sizes {
        let spec = FdTableSpec::new("t", n, 0.02, 80);
        let mut db = Database::new();
        spec.populate(&mut db)?;
        let (g, stats) = detect_conflicts(db.catalog(), &[spec.fd()])?;
        t.rows.push(vec![
            db.catalog().table("t")?.len().to_string(),
            ms(stats.elapsed),
            g.edge_count().to_string(),
            g.conflicting_vertex_count().to_string(),
            stats.combinations_checked.to_string(),
        ]);
    }
    t.notes
        .push("FD fast path: one hash pass, near-linear scaling".into());
    Ok(t)
}

/// E5 — ablation: membership checks and time across optimization levels.
pub fn e5_ablation(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    let n = if quick { 1000 } else { 8000 };
    let mut t = Table::new(
        "E5",
        format!("optimization ablation on a difference query (|t|={n}, 5% conflicts)"),
        &[
            "variant",
            "time ms",
            "DB membership queries",
            "prover calls",
            "filtered",
            "answers",
        ],
    );
    let spec = FdTableSpec::new("t", n, 0.05, 81);
    let constraints = vec![spec.fd()];
    let q =
        SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)));
    for (label, opts) in [
        ("base", HippoOptions::base()),
        ("+KG", HippoOptions::kg()),
        ("+KG +core-filter", HippoOptions::full()),
    ] {
        let mut db = Database::new();
        spec.populate(&mut db)?;
        let hippo = Hippo::with_options(db, constraints.clone(), opts)?;
        let t0 = Instant::now();
        let (answers, stats) = hippo.consistent_answers_with_stats(&q)?;
        let elapsed = t0.elapsed();
        t.rows.push(vec![
            label.to_string(),
            ms(elapsed),
            stats.membership_queries.to_string(),
            stats.prover_calls.to_string(),
            stats.filtered_consistent.to_string(),
            answers.len().to_string(),
        ]);
    }
    t.notes.push(
        "KG eliminates every per-tuple membership query; the core filter removes \
         prover calls for non-conflicting candidates"
            .into(),
    );
    Ok(t)
}

/// E6 — envelope tightness: candidates vs consistent answers vs filter.
pub fn e6_envelope(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    let n = if quick { 1000 } else { 8000 };
    let mut t = Table::new(
        "E6",
        format!("envelope tightness vs conflict rate (|t|={n}, difference query)"),
        &[
            "conflict%",
            "candidates",
            "core-filtered",
            "prover calls",
            "consistent",
        ],
    );
    for rate in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let spec = FdTableSpec::new("t", n, rate, 82);
        let mut db = Database::new();
        spec.populate(&mut db)?;
        let constraints = vec![spec.fd()];
        let q = SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(
            2,
            CmpOp::Ge,
            900i64,
        )));
        let hippo = Hippo::with_options(db, constraints, HippoOptions::full())?;
        let (answers, stats) = hippo.consistent_answers_with_stats(&q)?;
        t.rows.push(vec![
            format!("{:.0}%", rate * 100.0),
            stats.candidates.to_string(),
            stats.filtered_consistent.to_string(),
            stats.prover_calls.to_string(),
            answers.len().to_string(),
        ]);
    }
    t.notes
        .push("prover work grows only with the number of conflicting candidates".into());
    Ok(t)
}

/// E7 — why not repairs: repair count and naive CQA time vs number of
/// conflicts (exponential), against Hippo (polynomial).
pub fn e7_repair_blowup(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    let mut t = Table::new(
        "E7",
        "repair enumeration blow-up vs Hippo (3 copies per conflicting key → 3^k repairs)",
        &["conflicts", "repairs", "naive ms", "Hippo full ms", "agree"],
    );
    let counts: &[usize] = if quick {
        &[2, 4, 6, 8]
    } else {
        &[2, 4, 6, 8, 10, 12]
    };
    for &k in counts {
        // k independent FD conflicts of 3 tuples each: 3^k repairs.
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT, v INT, payload INT)")?;
        let mut rows = Vec::new();
        for i in 0..k {
            for copy in 0..3 {
                rows.push(vec![
                    Value::Int(i as i64),
                    Value::Int(copy as i64),
                    Value::Int((i * 3 + copy) as i64),
                ]);
            }
        }
        db.insert_rows("t", rows)?;
        let constraints = vec![DenialConstraint::functional_dependency("t", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &constraints)?;
        let q = SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(
            1,
            CmpOp::Ge,
            2i64,
        )));

        let t0 = Instant::now();
        let repairs = enumerate_repairs(&g, None).len();
        let truth = naive_consistent_answers(&q, db.catalog(), &g);
        let naive_time = t0.elapsed();

        let hippo = Hippo::with_options(db, constraints, HippoOptions::full())?;
        let t0 = Instant::now();
        let answers = hippo.consistent_answers(&q)?;
        let hippo_time = t0.elapsed();

        t.rows.push(vec![
            k.to_string(),
            repairs.to_string(),
            ms(naive_time),
            ms(hippo_time),
            (answers == truth).to_string(),
        ]);
    }
    t.notes.push(
        "repairs grow as 3^conflicts (the exponential the LP-based comparators pay); \
         Hippo's time stays flat — the paper's headline claim"
            .into(),
    );
    Ok(t)
}

/// E8 — sharded parallel detection: thread scaling on the 16k-row FD
/// workload, plus incremental redetect vs full rebuild after a
/// single-tuple insert.
pub fn e8_parallel(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    use hippo_cqa::detect::{detect_conflicts_with, DetectOptions};
    let n = 16_000;
    let reps = if quick { 3 } else { 10 };
    let mut t = Table::new(
        "E8",
        format!("sharded detection thread scaling + incremental redetect (|t|={n}, 2% conflicts)"),
        &["variant", "threads", "time ms", "speedup", "edges"],
    );
    let spec = FdTableSpec::new("t", n, 0.02, 80);
    let mut db = Database::new();
    spec.populate(&mut db)?;
    let constraints = vec![spec.fd()];

    // Thread scaling (fixed shard count — identical output, min-of-reps).
    let mut single_thread = Duration::ZERO;
    for &threads in &[1usize, 2, 4, 8] {
        let opts = DetectOptions::with_threads(threads);
        let mut best = Duration::MAX;
        let mut edges = 0;
        for _ in 0..reps {
            let t0 = Instant::now();
            let (g, _) = detect_conflicts_with(db.catalog(), &constraints, &opts)?;
            best = best.min(t0.elapsed());
            edges = g.edge_count();
        }
        if threads == 1 {
            single_thread = best;
        }
        t.rows.push(vec![
            "fd_detect".into(),
            threads.to_string(),
            ms(best),
            format!("{:.2}x", single_thread.as_secs_f64() / best.as_secs_f64()),
            edges.to_string(),
        ]);
    }

    // Incremental redetect after one insert vs a full rebuild.
    let mut hippo = Hippo::new(db, constraints)?;
    let mut best_full = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        hippo.redetect_full()?;
        best_full = best_full.min(t0.elapsed());
    }
    t.rows.push(vec![
        "full_redetect".into(),
        "-".into(),
        ms(best_full),
        "1.00x".into(),
        hippo.graph().edge_count().to_string(),
    ]);
    let mut best_inc = Duration::MAX;
    let mut edges_inc = 0;
    for i in 0..reps {
        // Insert a fresh conflict (v = -1 never occurs in the workload),
        // time the incremental reconciliation, then undo it.
        let row = vec![Value::Int(i as i64), Value::Int(-1), Value::Int(0)];
        let tids = hippo.insert_tuples("t", vec![row])?;
        let t0 = Instant::now();
        let stats = hippo.redetect()?;
        best_inc = best_inc.min(t0.elapsed());
        assert!(stats.incremental, "delta path expected");
        edges_inc = hippo.graph().edge_count();
        hippo.delete_tuples("t", &tids)?;
        hippo.redetect()?;
    }
    t.rows.push(vec![
        "incremental_redetect_1_insert".into(),
        "-".into(),
        ms(best_inc),
        format!("{:.2}x", best_full.as_secs_f64() / best_inc.as_secs_f64()),
        edges_inc.to_string(),
    ]);
    t.notes.push(
        "thread rows share one fixed shard decomposition (identical edge ids); speedup \
         is vs 1 thread and needs real cores — single-CPU environments show ~1x"
            .into(),
    );
    t.notes.push(
        "incremental redetect copies surviving edges and delta-probes the FD group \
         index: cost tracks the conflict graph + delta, not the instance"
            .into(),
    );
    Ok(t)
}

/// E9 — the parallel batched prover (PR 3): answer-pipeline thread
/// scaling, the closure-signature cache (ablation + hit-rate sweep over
/// conflict rates), and O(delta) vs O(outer) general-denial redetects.
pub fn e9_prover(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    let n = if quick { 2000 } else { 16000 };
    let reps = if quick { 3 } else { 10 };
    let mut t = Table::new(
        "E9",
        format!("parallel batched prover + closure cache + O(delta) general denials (|t|={n})"),
        &[
            "variant",
            "param",
            "time ms",
            "speedup",
            "prover calls",
            "cache hits",
            "detail",
        ],
    );
    let q =
        SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)));
    let build = |opts: HippoOptions| -> Result<Hippo, Box<dyn std::error::Error>> {
        let spec = FdTableSpec::new("t", n, 0.05, 81);
        let mut db = Database::new();
        spec.populate(&mut db)?;
        Ok(Hippo::with_options(db, vec![spec.fd()], opts)?)
    };
    let time_answers = |hippo: &Hippo| -> Result<(Duration, RunStats), Box<dyn std::error::Error>> {
        let mut best = Duration::MAX;
        let mut stats = RunStats::default();
        for _ in 0..reps {
            let t0 = Instant::now();
            let (_, s) = hippo.consistent_answers_with_stats(&q)?;
            let el = t0.elapsed();
            if el < best {
                best = el;
            }
            stats = s;
        }
        Ok((best, stats))
    };

    // (1) Prover thread scaling (fixed shard decomposition: identical
    // answers and stats on every row; speedup needs real cores).
    let mut single = Duration::ZERO;
    for threads in [1usize, 2, 4, 8] {
        let hippo = build(HippoOptions::kg().with_prover_threads(threads))?;
        let (best, stats) = time_answers(&hippo)?;
        if threads == 1 {
            single = best;
        }
        t.rows.push(vec![
            "prover_threads".into(),
            threads.to_string(),
            ms(best),
            format!("{:.2}x", single.as_secs_f64() / best.as_secs_f64()),
            stats.prover_calls.to_string(),
            stats.prover_cache_hits.to_string(),
            format!("answers={}", stats.answers),
        ]);
    }

    // (2) Closure-signature cache ablation, single-threaded so the
    // memoization effect is isolated from parallel speedup. The timed
    // column is the **prover stage** (`t_prover`): the envelope's SQL
    // evaluation dominates end-to-end time on this workload and would
    // bury the effect (end-to-end is in the detail column).
    let time_prover_stage =
        |hippo: &Hippo| -> Result<(Duration, Duration, RunStats), Box<dyn std::error::Error>> {
            let mut best = Duration::MAX;
            let mut total = Duration::MAX;
            let mut stats = RunStats::default();
            for _ in 0..reps {
                let (_, s) = hippo.consistent_answers_with_stats(&q)?;
                if s.t_prover < best {
                    best = s.t_prover;
                }
                total = total.min(s.t_total);
                stats = s;
            }
            Ok((best, total, stats))
        };
    let hippo_raw = build(
        HippoOptions::kg()
            .with_prover_threads(1)
            .without_prover_cache(),
    )?;
    let (best_raw, total_raw, stats_raw) = time_prover_stage(&hippo_raw)?;
    let hippo_memo = build(HippoOptions::kg().with_prover_threads(1))?;
    let (best_memo, total_memo, stats_memo) = time_prover_stage(&hippo_memo)?;
    t.rows.push(vec![
        "prover_cache".into(),
        "uncached".into(),
        ms(best_raw),
        "1.00x".into(),
        stats_raw.prover_calls.to_string(),
        "0".into(),
        format!(
            "tuples_proved={} total={}ms",
            stats_raw.prover.tuples_checked,
            ms(total_raw)
        ),
    ]);
    t.rows.push(vec![
        "prover_cache".into(),
        "memoized".into(),
        ms(best_memo),
        format!("{:.2}x", best_raw.as_secs_f64() / best_memo.as_secs_f64()),
        stats_memo.prover_calls.to_string(),
        stats_memo.prover_cache_hits.to_string(),
        format!(
            "tuples_proved={} total={}ms",
            stats_memo.prover.tuples_checked,
            ms(total_memo)
        ),
    ]);

    // (3) Cache hit-rate sweep over conflict rates.
    for rate in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let spec = FdTableSpec::new("t", n, rate, 81);
        let mut db = Database::new();
        spec.populate(&mut db)?;
        let hippo = Hippo::with_options(
            db,
            vec![spec.fd()],
            HippoOptions::kg().with_prover_threads(1),
        )?;
        let t0 = Instant::now();
        let (_, stats) = hippo.consistent_answers_with_stats(&q)?;
        let el = t0.elapsed();
        let hit_rate = if stats.prover_calls > 0 {
            100.0 * stats.prover_cache_hits as f64 / stats.prover_calls as f64
        } else {
            0.0
        };
        t.rows.push(vec![
            "cache_hit_rate".into(),
            format!("{:.0}%", rate * 100.0),
            ms(el),
            "-".into(),
            stats.prover_calls.to_string(),
            stats.prover_cache_hits.to_string(),
            format!("hit-rate {hit_rate:.1}%"),
        ]);
    }

    // (4) O(delta) vs O(outer) general-denial redetect: exclusion
    // constraint between t and s; the single changed tuple lands in the
    // *non-outer* atom, which used to force a rescan of t.
    let spec = FdTableSpec::new("t", n, 0.02, 83);
    let mut db = Database::new();
    spec.populate(&mut db)?;
    db.execute("CREATE TABLE s (k INT, v INT, payload INT)")?;
    let excl = DenialConstraint::exclusion("t", "s", &[(0, 0)]);
    let mut hippo = Hippo::new(db, vec![spec.fd(), excl])?;
    let mut best_full = Duration::MAX;
    let mut combos_full = 0usize;
    for _ in 0..reps {
        let t0 = Instant::now();
        let stats = hippo.redetect_full()?;
        let el = t0.elapsed();
        if el < best_full {
            best_full = el;
        }
        combos_full = stats.combinations_checked;
    }
    t.rows.push(vec![
        "gd_redetect".into(),
        "full_rebuild".into(),
        ms(best_full),
        "1.00x".into(),
        "-".into(),
        "-".into(),
        format!("combos={combos_full}"),
    ]);
    let mut best_inc = Duration::MAX;
    let mut combos_inc = 0usize;
    for i in 0..reps {
        let row = vec![Value::Int(i as i64), Value::Int(0), Value::Int(0)];
        let tids = hippo.insert_tuples("s", vec![row])?;
        let t0 = Instant::now();
        let stats = hippo.redetect()?;
        let el = t0.elapsed();
        if el < best_inc {
            best_inc = el;
        }
        assert!(stats.incremental, "delta path expected");
        combos_inc = stats.combinations_checked;
        hippo.delete_tuples("s", &tids)?;
        hippo.redetect()?;
    }
    t.rows.push(vec![
        "gd_redetect".into(),
        "delta_seeded_1_insert".into(),
        ms(best_inc),
        format!("{:.2}x", best_full.as_secs_f64() / best_inc.as_secs_f64()),
        "-".into(),
        "-".into(),
        format!("combos={combos_inc}"),
    ]);
    t.notes.push(
        "prover_threads rows share one fixed shard decomposition (identical answers and \
         stats); speedup is vs 1 thread and needs real cores — single-CPU environments \
         show ~1x"
            .into(),
    );
    t.notes.push(
        "delta_seeded redetect binds the changed tuple first and hash-extends through the \
         persistent per-atom join indexes: combos track the delta's join matches, the \
         full pass scans the outer atom"
            .into(),
    );
    Ok(t)
}

/// E10 — base mode over engine snapshots (PR 4): the paper's canonical
/// configuration (per-check SQL membership) now runs through the same
/// shard → merge pipeline as KG mode, against a frozen `DbSnapshot`
/// shared by all workers. Rows: prover-stage thread scaling, the
/// per-shard SQL membership memo, the cross-call verdict cache, and
/// fk-incremental redetect through the orphan-count index.
pub fn e10_base_mode(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    let n = if quick { 2000 } else { 16000 };
    let reps = if quick { 3 } else { 10 };
    let mut t = Table::new(
        "E10",
        format!("sharded base mode over snapshots + fk-incremental redetect (|t|={n})"),
        &[
            "variant",
            "param",
            "time ms",
            "speedup",
            "membership sql",
            "detail",
        ],
    );
    let q =
        SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)));
    let build = |opts: HippoOptions| -> Result<Hippo, Box<dyn std::error::Error>> {
        let spec = FdTableSpec::new("t", n, 0.05, 84);
        let mut db = Database::new();
        spec.populate(&mut db)?;
        Ok(Hippo::with_options(db, vec![spec.fd()], opts)?)
    };
    // Prover-stage time (the envelope's SQL evaluation dominates
    // end-to-end on this workload and would bury the scaling). Each
    // rep rebuilds the system so the cross-call verdict cache never
    // contaminates a timed call; base runs take seconds each at full
    // size — min-of-3 is plenty stable.
    let base_reps = 3usize;
    let time_prover_stage =
        |opts: HippoOptions| -> Result<(Duration, RunStats), Box<dyn std::error::Error>> {
            let mut best = Duration::MAX;
            let mut stats = RunStats::default();
            for _ in 0..base_reps {
                let hippo = build(opts.clone())?;
                let (_, s) = hippo.consistent_answers_with_stats(&q)?;
                if s.t_prover < best {
                    best = s.t_prover;
                }
                stats = s;
            }
            Ok((best, stats))
        };

    // (1) Base-mode thread scaling (fixed shard decomposition: every
    // row produces identical answers and stats — including the SQL
    // membership counts, since each shard's memo is shard-local).
    let mut single = Duration::ZERO;
    for threads in [1usize, 2, 4, 8] {
        let (best, stats) = time_prover_stage(HippoOptions::base().with_prover_threads(threads))?;
        if threads == 1 {
            single = best;
        }
        let memo_rate = {
            let probes = stats.membership_queries + stats.membership_memo_hits;
            if probes > 0 {
                100.0 * stats.membership_memo_hits as f64 / probes as f64
            } else {
                0.0
            }
        };
        t.rows.push(vec![
            "base_threads".into(),
            threads.to_string(),
            ms(best),
            format!("{:.2}x", single.as_secs_f64() / best.as_secs_f64()),
            stats.membership_queries.to_string(),
            format!(
                "answers={} shards={} memo {memo_rate:.1}%",
                stats.answers, stats.shards_used
            ),
        ]);
    }

    // (2) KG reference at one thread: what prefetching the flags in the
    // envelope buys over per-shard membership SQL.
    let (best_kg, stats_kg) = time_prover_stage(HippoOptions::kg().with_prover_threads(1))?;
    t.rows.push(vec![
        "kg_reference".into(),
        "1".into(),
        ms(best_kg),
        format!("{:.2}x", single.as_secs_f64() / best_kg.as_secs_f64()),
        stats_kg.membership_queries.to_string(),
        format!("answers={}", stats_kg.answers),
    ]);

    // (3) Cross-call verdict cache: a second identical run answers
    // entirely from the persistent signature map.
    let hippo = build(HippoOptions::base().with_prover_threads(1))?;
    let (_, s1) = hippo.consistent_answers_with_stats(&q)?;
    let first = s1.t_prover;
    let (_, s2) = hippo.consistent_answers_with_stats(&q)?;
    let mut best_second = s2.t_prover;
    for _ in 0..base_reps {
        let (_, s) = hippo.consistent_answers_with_stats(&q)?;
        best_second = best_second.min(s.t_prover);
    }
    t.rows.push(vec![
        "cross_call_cache".into(),
        "2nd call".into(),
        ms(best_second),
        format!("{:.2}x", first.as_secs_f64() / best_second.as_secs_f64()),
        s2.membership_queries.to_string(),
        format!(
            "cross hits {}/{} proved {}",
            s2.prover_cache_cross_hits, s2.prover_calls, s2.prover.tuples_checked
        ),
    ]);

    // (4) FK-incremental redetect: deleting one parent orphans its
    // children through the orphan-count index instead of a rebuild.
    let spec = FdTableSpec::new("t", n, 0.02, 85);
    let mut db = Database::new();
    spec.populate(&mut db)?;
    db.execute("CREATE TABLE parent (id INT)")?;
    // Every t.k has a parent: the instance starts fk-consistent, so a
    // single parent delete orphans exactly its own children — the case
    // the orphan-count index makes O(affected children).
    db.insert_rows(
        "parent",
        (0..n as i64).map(|i| vec![Value::Int(i)]).collect(),
    )?;
    let fk = ForeignKey::new("t", vec![0], "parent", vec![0]);
    // The FD rides along (parents stay constraint-free as required), so
    // the incremental path carries denial edges *and* flips orphans.
    let mut hippo = Hippo::with_foreign_keys(db, vec![spec.fd()], vec![fk])?;
    let mut best_full = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        hippo.redetect_full()?;
        best_full = best_full.min(t0.elapsed());
    }
    t.rows.push(vec![
        "fk_redetect".into(),
        "full_rebuild".into(),
        ms(best_full),
        "1.00x".into(),
        "-".into(),
        format!("edges={}", hippo.graph().edge_count()),
    ]);
    let mut best_inc = Duration::MAX;
    let mut edges_inc = 0;
    for _ in 0..reps {
        let (deleted, row) = hippo
            .db()
            .catalog()
            .table("parent")?
            .iter()
            .next()
            .map(|(tid, row)| (tid, row.clone()))
            .expect("parent rows remain");
        hippo.delete_tuples("parent", &[deleted])?;
        let t0 = Instant::now();
        let stats = hippo.redetect()?;
        best_inc = best_inc.min(t0.elapsed());
        assert!(stats.incremental, "fk delta path expected");
        edges_inc = hippo.graph().edge_count();
        // Restore the deleted parent so every rep measures the same
        // one-parent orphaning against the same instance.
        hippo.insert_tuples("parent", vec![row])?;
        hippo.redetect()?;
    }
    t.rows.push(vec![
        "fk_redetect".into(),
        "incremental_1_parent_delete".into(),
        ms(best_inc),
        format!("{:.2}x", best_full.as_secs_f64() / best_inc.as_secs_f64()),
        "-".into(),
        format!("edges={edges_inc}"),
    ]);
    t.notes.push(
        "base_threads rows share one fixed shard decomposition over one frozen snapshot \
         (identical answers, stats and SQL counts); speedup is vs 1 thread and needs real \
         cores — single-CPU environments show ~1x"
            .into(),
    );
    t.notes.push(
        "fk incremental redetect flips orphan edges through the per-FK orphan-count index: \
         cost tracks the batch and its affected children, not the instance"
            .into(),
    );
    Ok(t)
}

/// E11 — index-backed membership probes (PR 5): base mode's
/// per-candidate membership probe is compiled once to a prepared
/// physical plan whose access path the optimizer picks. On the FD
/// workload the key column carries the primary-key auto-index, so
/// every executed probe is an `IndexLookup` (hash-bucket, O(1));
/// the ablation row forces the sequential-scan plans — the
/// pre-refactor access path — on the same instance and query.
/// Answers are asserted bit-identical across both and against KG mode;
/// the new `AnswerStats::index_probes`/`scan_probes` counters verify
/// which access path actually ran.
pub fn e11_index_probes(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    let n = if quick { 2000 } else { 16000 };
    let reps = 3usize;
    let mut t = Table::new(
        "E11",
        format!("index-backed membership probes vs the scan path (|t|={n})"),
        &[
            "variant",
            "access path",
            "membership stage ms",
            "speedup",
            "probes (idx/scan)",
            "detail",
        ],
    );
    let q =
        SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)));
    let build = |opts: HippoOptions| -> Result<Hippo, Box<dyn std::error::Error>> {
        let spec = FdTableSpec::new("t", n, 0.05, 84);
        let mut db = Database::new();
        spec.populate(&mut db)?;
        Ok(Hippo::with_options(db, vec![spec.fd()], opts)?)
    };
    // Measure the prover stage (per-candidate membership resolution +
    // proving; the membership probes dominate it in base mode). Each
    // rep rebuilds the system so the cross-call verdict cache never
    // contaminates a timed call.
    let stage =
        |opts: HippoOptions| -> Result<(Duration, Vec<Row>, RunStats), Box<dyn std::error::Error>> {
            let mut best = Duration::MAX;
            let mut answers = Vec::new();
            let mut stats = RunStats::default();
            for _ in 0..reps {
                let hippo = build(opts.clone())?;
                let (a, s) = hippo.consistent_answers_with_stats(&q)?;
                if s.t_prover < best {
                    best = s.t_prover;
                }
                answers = a;
                stats = s;
            }
            Ok((best, answers, stats))
        };

    let (t_idx, ans_idx, s_idx) = stage(HippoOptions::base())?;
    // The acceptance check: every executed probe ran as an IndexLookup.
    assert_eq!(
        s_idx.index_probes, s_idx.membership_queries,
        "indexed run left probes on the scan path: {s_idx}"
    );
    assert_eq!(s_idx.scan_probes, 0, "{s_idx}");
    let (t_scan, ans_scan, s_scan) = stage(HippoOptions::base().without_index_probes())?;
    assert_eq!(s_scan.index_probes, 0, "{s_scan}");
    assert_eq!(
        s_scan.scan_probes, s_scan.membership_queries,
        "scan ablation still used the index: {s_scan}"
    );
    assert_eq!(ans_idx, ans_scan, "access path changed the answers");
    let (t_kg, ans_kg, _) = stage(HippoOptions::kg())?;
    assert_eq!(ans_idx, ans_kg, "base and KG disagree");

    t.rows.push(vec![
        "base_probes".into(),
        "IndexLookup".into(),
        ms(t_idx),
        format!("{:.2}x", t_scan.as_secs_f64() / t_idx.as_secs_f64()),
        format!("{}/{}", s_idx.index_probes, s_idx.scan_probes),
        format!(
            "answers={} membership_queries={} memo_hits={}",
            s_idx.answers, s_idx.membership_queries, s_idx.membership_memo_hits
        ),
    ]);
    t.rows.push(vec![
        "base_probes".into(),
        "SeqScan (pre-refactor)".into(),
        ms(t_scan),
        "1.00x".into(),
        format!("{}/{}", s_scan.index_probes, s_scan.scan_probes),
        format!("answers={}", s_scan.answers),
    ]);
    t.rows.push(vec![
        "kg_reference".into(),
        "prefetched flags".into(),
        ms(t_kg),
        format!("{:.2}x", t_scan.as_secs_f64() / t_kg.as_secs_f64()),
        "0/0".into(),
        format!("answers={}", ans_kg.len()),
    ]);
    t.notes.push(
        "probes (idx/scan) are the new AnswerStats::index_probes / scan_probes counters; \
         answers asserted bit-identical across the three rows"
            .into(),
    );
    t.notes.push(
        "both base rows execute the same prepared physical probe plans per literal \
         (no SQL text on the hot path); only the access path differs — the speedup \
         is the index"
            .into(),
    );
    Ok(t)
}

/// E12 — governance overhead. The resource-governance checkpoints ride
/// the E9/E11 hot paths (KG prover loop; base-mode membership probes):
/// an *ungoverned* call must pay nothing (budget creation is gated on
/// the options actually configuring governance), and a governed call
/// with generous limits should stay within a couple of percent — the
/// checks are strided and only every `CHECK_STRIDE`th does the
/// `Instant::now` read.
pub fn e12_governance(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    // The timed stages are small (a few ms); on a busy container the
    // run-to-run jitter exceeds the effect being measured, so this
    // experiment leans on many interleaved reps and best-of-each.
    let n = if quick { 2000 } else { 16000 };
    let reps = if quick { 5 } else { 20 };
    let mut t = Table::new(
        "E12",
        format!("governance checkpoint overhead on the E9/E11 hot paths (|t|={n})"),
        &[
            "variant",
            "governance",
            "stage ms",
            "overhead",
            "budget checks",
            "detail",
        ],
    );
    let q =
        SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)));
    let build = |opts: HippoOptions| -> Result<Hippo, Box<dyn std::error::Error>> {
        let spec = FdTableSpec::new("t", n, 0.05, 81);
        let mut db = Database::new();
        spec.populate(&mut db)?;
        Ok(Hippo::with_options(db, vec![spec.fd()], opts)?)
    };
    // Time the prover stage (the governed per-candidate loop; in base
    // mode it also contains every membership probe). Fresh system per
    // rep so the verdict cache never contaminates a timed call; one
    // measured rep of each config.
    let one_rep =
        |opts: HippoOptions| -> Result<(Duration, Vec<Row>, u64), Box<dyn std::error::Error>> {
            let hippo = build(opts.clone())?;
            let ans = hippo.consistent_answers_governed(&q)?;
            Ok((ans.stats.t_prover, ans.rows, ans.stats.budget_checks))
        };
    // Generous limits: never trip, but every checkpoint is live.
    let governed = |opts: HippoOptions| -> HippoOptions {
        opts.with_deadline(Duration::from_secs(3600))
            .with_row_budget(u64::MAX)
    };

    for (variant, base_opts) in [
        ("kg_prover", HippoOptions::kg()),
        ("base_membership", HippoOptions::base()),
    ] {
        // Interleave the governed/ungoverned reps (A/B/A/B…): each pair
        // runs under near-identical background load, so the per-pair
        // time ratio cancels the machine's slow drift, and the *median*
        // ratio sheds the bursty outliers that make separately-taken
        // minima flip sign run to run on a busy shared box.
        let mut t_off = Duration::MAX;
        let mut t_on = Duration::MAX;
        let mut ratios = Vec::with_capacity(reps);
        let mut ans_off = Vec::new();
        let mut ans_on = Vec::new();
        let mut c_off = 0u64;
        let mut c_on = 0u64;
        for _ in 0..reps {
            let (toff, a, c) = one_rep(base_opts.clone())?;
            if toff < t_off {
                t_off = toff;
            }
            ans_off = a;
            c_off = c;
            let (ton, a, c) = one_rep(governed(base_opts.clone()))?;
            if ton < t_on {
                t_on = ton;
            }
            ans_on = a;
            c_on = c;
            ratios.push(ton.as_secs_f64() / toff.as_secs_f64());
        }
        assert_eq!(ans_on, ans_off, "{variant}: governance changed the answers");
        assert_eq!(c_off, 0, "{variant}: ungoverned run counted budget checks");
        ratios.sort_by(|a, b| a.total_cmp(b));
        let overhead = (ratios[ratios.len() / 2] - 1.0) * 100.0;
        t.rows.push(vec![
            variant.into(),
            "off".into(),
            ms(t_off),
            "—".into(),
            "0".into(),
            format!("answers={}", ans_off.len()),
        ]);
        t.rows.push(vec![
            variant.into(),
            "deadline+row budget".into(),
            ms(t_on),
            format!("{overhead:+.2}%"),
            c_on.to_string(),
            format!("answers={}", ans_on.len()),
        ]);
    }
    t.notes.push(
        "overhead = median over interleaved rep pairs of governed/ungoverned − 1; \
         target ≤ 2% — checks are strided (every CHECK_STRIDE=256 units of work) so \
         the deadline read stays off the per-row path"
            .into(),
    );
    t.notes
        .push("answers asserted bit-identical with governance on and off".into());
    Ok(t)
}

/// E13 — chaos/traffic harness for the concurrent CQA service layer.
/// N client threads drive one [`hippo_server::Engine`] at a mixed
/// read:write:CQA ratio under three scenarios:
///
/// * `steady`: no faults, default admission — a correctness baseline;
/// * `overload`: admission squeezed to (2 active, 1 queued) so load
///   shedding fires, with clients retrying `Overloaded` through the
///   jittered-backoff [`hippo_server::RetryPolicy`];
/// * `chaos`: one saboteur client injects a writer panic mid-redetect,
///   a prover-shard panic, a millisecond deadline and a delayed shard
///   into the live traffic.
///
/// Invariants asserted on every scenario — the experiment *fails*
/// (returns `Err`) if any is violated:
///
/// * no deadlock (the traffic joins; drain completes afterwards);
/// * no poisoned epoch: every successful CQA answer is bit-identical
///   to a **serial oracle replay** — a fresh single-threaded `Hippo`
///   built from that epoch's own catalog — and every plain read sees
///   exactly its epoch's row count;
/// * every failure is structured: `Overloaded`/`Cancelled`/`Budget`/
///   injected `WorkerPanic` — nothing else;
/// * a failed write never publishes (`writer_recoveries` counts it and
///   the epoch id does not advance past successful writes).
///
/// Reported per scenario: request counts by outcome, epochs published,
/// writer recoveries, shed rate, and p50/p99 client latency.
pub fn e13_chaos_service(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    let rows = if quick { 1_200 } else { 6_000 };
    let clients = if quick { 4 } else { 8 };
    let iters = if quick { 24 } else { 48 };
    let mut t = Table::new(
        "E13",
        format!(
            "chaos/traffic harness on the service layer (|t|={rows}, {clients} clients × {iters} ops, 45:10:45 read:write:CQA)"
        ),
        &[
            "scenario", "reqs", "ok", "shed", "cancel", "budget", "panic", "recov", "epochs",
            "shed rate", "p50 ms", "p99 ms", "oracle",
        ],
    );
    for scenario in ["steady", "overload", "chaos"] {
        let out = chaos_scenario(scenario, rows, clients, iters)?;
        t.rows.push(vec![
            scenario.into(),
            out.requests.to_string(),
            out.ok.to_string(),
            out.shed.to_string(),
            out.cancelled.to_string(),
            out.budget.to_string(),
            out.panics.to_string(),
            out.recoveries.to_string(),
            out.epochs.to_string(),
            format!("{:.1}%", out.shed_rate * 100.0),
            ms(out.p50),
            ms(out.p99),
            format!("ok ({} epochs replayed)", out.epochs_checked),
        ]);
    }
    t.notes.push(
        "oracle = per pinned epoch, a fresh single-threaded Hippo rebuilt from that epoch's \
         catalog must reproduce every successful CQA answer bit-identically"
            .into(),
    );
    t.notes.push(
        "every client failure is structured (Overloaded/Cancelled/Budget/injected WorkerPanic); \
         drain() completes after traffic and subsequent requests get Shutdown"
            .into(),
    );
    Ok(t)
}

struct ChaosOutcome {
    requests: u64,
    ok: u64,
    shed: u64,
    cancelled: u64,
    budget: u64,
    panics: u64,
    recoveries: u64,
    epochs: u64,
    epochs_checked: usize,
    shed_rate: f64,
    p50: Duration,
    p99: Duration,
}

/// One seeded traffic run; see [`e13_chaos_service`] for the scenario
/// definitions and the invariants enforced here.
fn chaos_scenario(
    scenario: &str,
    rows: usize,
    clients: usize,
    iters: usize,
) -> Result<ChaosOutcome, Box<dyn std::error::Error>> {
    use hippo_server::{Engine, EngineConfig, RetryPolicy, WriteOp};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    let spec = FdTableSpec::new("t", rows, 0.05, 71);
    let mut db = Database::new();
    spec.populate(&mut db)?;
    let cons = vec![spec.fd()];
    let hippo = Hippo::with_options(db, cons.clone(), HippoOptions::full())?;
    let config = match scenario {
        "overload" => EngineConfig {
            max_active: 2,
            max_queue: 1,
            retry_after: Duration::from_millis(1),
            default_deadline: None,
        },
        _ => EngineConfig::default(),
    };
    let eng = Engine::new(hippo, config)?;
    let q =
        SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)));

    // Fresh insert keys, far outside the workload's 0..rows key range.
    let next_key = AtomicI64::new(10_000_000);
    // Per-epoch evidence for the serial oracle replay: the first clean
    // CQA answer seen on each epoch (later samples of the same epoch
    // must agree bit-for-bit), and the row count plain reads observed.
    type Samples = Mutex<HashMap<u64, (Arc<hippo_server::Epoch>, Vec<Row>)>>;
    let cqa_samples: Samples = Mutex::new(HashMap::new());
    let read_counts: Mutex<HashMap<u64, usize>> = Mutex::new(HashMap::new());
    let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let (ok_n, shed_n, cancel_n, budget_n, panic_n, other_n) = (
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    );

    std::thread::scope(|s| {
        for c in 0..clients {
            let eng = eng.clone();
            let q = &q;
            let next_key = &next_key;
            let cqa_samples = &cqa_samples;
            let read_counts = &read_counts;
            let latencies = &latencies;
            let (ok_n, shed_n, cancel_n, budget_n, panic_n, other_n) =
                (&ok_n, &shed_n, &cancel_n, &budget_n, &panic_n, &other_n);
            let saboteur = scenario == "chaos" && c == 0;
            let retry = (scenario == "overload").then(|| RetryPolicy {
                max_attempts: 5,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(8),
                seed: 0xC11E47 + c as u64,
            });
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xE13 + c as u64);
                let mut session = eng.session();
                let mut local_lat: Vec<Duration> = Vec::with_capacity(iters);
                for k in 0..iters {
                    // Pinning forever would starve the oracle of new
                    // epochs: re-pin every few ops.
                    if k % 4 == 0 {
                        session.refresh();
                    }
                    // Saboteur schedule: each arm is a fresh one-shot
                    // plan, injected into live traffic.
                    let mut clean = true;
                    if saboteur {
                        match k % 8 {
                            2 => {
                                // Writer panic mid-redetect: the write
                                // fails structurally, nothing publishes.
                                eng.set_writer_options(HippoOptions::full().with_faults(
                                    FaultPlan::new("detect", Some(0), FaultKind::Panic),
                                ));
                                let key = next_key.fetch_add(1, Ordering::Relaxed);
                                let r = eng.write(vec![WriteOp::Insert {
                                    table: "t".into(),
                                    rows: vec![vec![Value::Int(key), Value::Int(1), Value::Int(0)]],
                                }]);
                                if let Err(e) = &r {
                                    assert!(
                                        e.is_worker_panic() || e.is_budget(),
                                        "sabotaged write must fail structurally: {e}"
                                    );
                                }
                                eng.set_writer_options(HippoOptions::full());
                                continue;
                            }
                            5 => {
                                // Prover-shard panic inside a CQA read.
                                *session.options_mut() = HippoOptions::full().with_faults(
                                    FaultPlan::new("prover", Some(0), FaultKind::Panic),
                                );
                                clean = false;
                            }
                            7 => {
                                // A delayed shard racing a short deadline.
                                *session.options_mut() =
                                    HippoOptions::full().with_faults(FaultPlan::new(
                                        "prover",
                                        None,
                                        FaultKind::Delay(Duration::from_millis(30)),
                                    ));
                                session.set_deadline(Some(Duration::from_millis(10)));
                                clean = false;
                            }
                            3 => {
                                // Deadline trip with no fault plan.
                                session.set_deadline(Some(Duration::from_millis(1)));
                                clean = false;
                            }
                            _ => {}
                        }
                    }
                    let die = rng.gen_range(0u32..100);
                    let t0 = Instant::now();
                    let outcome: Result<(), hippo_engine::EngineError> = if die < 45 {
                        // Plain read on the pinned epoch.
                        session.query("SELECT * FROM t").map(|r| {
                            if clean {
                                let epoch = session.epoch().id();
                                let mut counts = read_counts.lock().unwrap();
                                let n = counts.entry(epoch).or_insert(r.rows.len());
                                assert_eq!(
                                    *n,
                                    r.rows.len(),
                                    "epoch {epoch}: plain reads disagree on row count"
                                );
                            }
                        })
                    } else if die < 55 {
                        // Write: a fresh conflict pair (two rows, same
                        // key) or one clean row.
                        let key = next_key.fetch_add(1, Ordering::Relaxed);
                        let rows = if die % 2 == 0 {
                            vec![
                                vec![Value::Int(key), Value::Int(1), Value::Int(0)],
                                vec![Value::Int(key), Value::Int(2), Value::Int(0)],
                            ]
                        } else {
                            vec![vec![Value::Int(key), Value::Int(5), Value::Int(0)]]
                        };
                        let op = vec![WriteOp::Insert {
                            table: "t".into(),
                            rows,
                        }];
                        match &retry {
                            Some(p) => p.run(|_| eng.write(op.clone())).map(|_| ()),
                            None => eng.write(op).map(|_| ()),
                        }
                    } else {
                        // CQA on the pinned epoch.
                        let r = match &retry {
                            Some(p) => p.run(|_| session.consistent_answers(q)),
                            None => session.consistent_answers(q),
                        };
                        r.map(|rows| {
                            if clean {
                                let epoch = Arc::clone(session.epoch());
                                let mut samples = cqa_samples.lock().unwrap();
                                let (_, first) = samples
                                    .entry(epoch.id())
                                    .or_insert_with(|| (epoch, rows.clone()));
                                assert_eq!(
                                    *first, rows,
                                    "two readers pinned to the same epoch diverged"
                                );
                            }
                        })
                    };
                    local_lat.push(t0.elapsed());
                    match outcome {
                        Ok(()) => {
                            ok_n.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_overloaded() => {
                            shed_n.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_cancelled() => {
                            cancel_n.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_budget() => {
                            budget_n.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_worker_panic() => {
                            assert!(
                                saboteur || scenario == "chaos",
                                "worker panic without an injected fault: {e}"
                            );
                            panic_n.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("unstructured failure in {scenario}: {e}");
                            other_n.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if !clean {
                        // Disarm: back to the session's vanilla options.
                        *session.options_mut() = HippoOptions::full();
                        session.set_deadline(None);
                    }
                }
                latencies.lock().unwrap().extend(local_lat);
            });
        }
    });

    // Traffic joined: no deadlock. Graceful drain must complete and
    // close the gate behind itself.
    eng.drain();
    let mut closed = eng.session();
    assert!(
        closed.consistent_answers(&q).unwrap_err().is_shutdown(),
        "drained service must reject with Shutdown"
    );

    // Serial oracle replay: every sampled epoch, rebuilt from its own
    // catalog into a fresh single-threaded Hippo, must reproduce the
    // answers the concurrent readers saw.
    let samples = cqa_samples.into_inner().unwrap();
    let read_counts = read_counts.into_inner().unwrap();
    let epochs_checked = samples.len();
    for (id, (epoch, rows_seen)) in &samples {
        let oracle_db = Database::from_catalog(epoch.frozen().catalog().clone());
        let oracle = Hippo::with_options(
            oracle_db,
            cons.clone(),
            HippoOptions::full().with_prover_threads(1),
        )?;
        let want = oracle.consistent_answers(&q)?;
        if want != *rows_seen {
            return Err(format!(
                "{scenario}: epoch {id} diverged from its serial oracle \
                 ({} vs {} answer rows)",
                rows_seen.len(),
                want.len()
            )
            .into());
        }
        if let Some(n) = read_counts.get(id) {
            let got = epoch.frozen().query("SELECT * FROM t")?.rows.len();
            if got != *n {
                return Err(format!(
                    "{scenario}: epoch {id} plain-read count {n} != catalog count {got}"
                )
                .into());
            }
        }
    }

    let stats = eng.stats();
    let (ok, shed, cancelled, budget, panics, other) = (
        ok_n.into_inner(),
        shed_n.into_inner(),
        cancel_n.into_inner(),
        budget_n.into_inner(),
        panic_n.into_inner(),
        other_n.into_inner(),
    );
    if other != 0 {
        return Err(format!("{scenario}: {other} unstructured failures").into());
    }
    if scenario == "overload" && stats.requests_shed == 0 {
        return Err("overload scenario shed nothing — admission never saturated".into());
    }
    if scenario == "chaos" && stats.writer_recoveries == 0 {
        return Err("chaos scenario: the injected writer panic never fired".into());
    }
    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    let pctl = |p: f64| -> Duration {
        if lat.is_empty() {
            Duration::ZERO
        } else {
            lat[((lat.len() - 1) as f64 * p).round() as usize]
        }
    };
    let requests = ok + shed + cancelled + budget + panics;
    Ok(ChaosOutcome {
        requests,
        ok,
        shed,
        cancelled,
        budget,
        panics,
        recoveries: stats.writer_recoveries,
        epochs: stats.epochs_published,
        epochs_checked,
        shed_rate: if requests == 0 {
            0.0
        } else {
            shed as f64 / requests as f64
        },
        p50: pctl(0.50),
        p99: pctl(0.99),
    })
}

// ---------------------------------------------------------------------
// E14: crash recovery — kill-tested durability.
// ---------------------------------------------------------------------

/// Base key for the crash-child's sequenced inserts: far above any key
/// the seeded workload generator produces.
const E14_BASE_KEY: i64 = 10_000_000;

fn e14_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("hippo-e14-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn e14_workload(
    rows: usize,
    seed: u64,
) -> Result<(Database, Vec<DenialConstraint>), Box<dyn std::error::Error>> {
    let spec = FdTableSpec::new("t", rows, 0.05, seed);
    let mut db = Database::new();
    spec.populate(&mut db)?;
    Ok((db, vec![spec.fd()]))
}

fn e14_row(key: i64) -> Row {
    vec![Value::Int(key), Value::Int(5), Value::Int(0)]
}

fn e14_query() -> SjudQuery {
    SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)))
}

/// Serial oracle: fresh single-threaded Hippo over the seeded base
/// table plus the first `k` sequenced crash-child rows.
fn e14_oracle(rows: usize, seed: u64, k: u64) -> Result<Vec<Row>, Box<dyn std::error::Error>> {
    let (db, cons) = e14_workload(rows, seed)?;
    let mut hippo = Hippo::with_options(db, cons, HippoOptions::full().with_prover_threads(1))?;
    for i in 0..k {
        hippo.insert_tuples("t", vec![e14_row(E14_BASE_KEY + i as i64)])?;
    }
    hippo.redetect()?;
    Ok(hippo.consistent_answers(&e14_query())?)
}

/// Hidden crash-child entry point, selected purely by environment so
/// that both the harness binary and the test binary can serve as the
/// SIGKILL target. `HIPPO_E14_CHILD=dir|rows|seed|start|limit` makes
/// the process open (or recover) a durable engine in `dir` and append
/// sequenced single-row transactions, acking each durable commit on
/// stdout, until it is killed.
pub fn e14_child_from_env() {
    let Ok(spec) = std::env::var("HIPPO_E14_CHILD") else {
        return;
    };
    use hippo_server::{DurabilityConfig, Engine, EngineConfig, WriteOp};
    let parts: Vec<&str> = spec.split('|').collect();
    let (dir, rows, seed, start, limit) = (
        std::path::PathBuf::from(parts[0]),
        parts[1].parse::<usize>().unwrap(),
        parts[2].parse::<u64>().unwrap(),
        parts[3].parse::<u64>().unwrap(),
        parts[4].parse::<u64>().unwrap(),
    );
    let config = DurabilityConfig {
        dir: dir.clone(),
        checkpoint_every_frames: 8,
    };
    let (db, cons) = e14_workload(rows, seed).unwrap();
    let eng = if dir.join("checkpoint.bin").exists() {
        Engine::recover(
            EngineConfig::default(),
            config,
            cons,
            Vec::new(),
            HippoOptions::full(),
        )
        .unwrap()
    } else {
        let hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
        Engine::new_durable(hippo, EngineConfig::default(), config).unwrap()
    };
    for i in start..start + limit {
        eng.write(vec![WriteOp::Insert {
            table: "t".into(),
            rows: vec![e14_row(E14_BASE_KEY + i as i64)],
        }])
        .unwrap();
        // Rust's stdout is line-buffered: the ack is flushed before the
        // next write begins, so every line the parent reads names a
        // transaction whose fsync completed.
        println!("acked {i}");
    }
    // Limit reached before the parent's kill: idle and wait for it.
    loop {
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// E14: crash recovery. Four phases:
///
/// 1. `fault`: in-process injected panics at every durability fault
///    point (`wal:append`, `wal:fsync`, `checkpoint:write`,
///    `checkpoint:swap`); the engine is dropped mid-write and
///    relaunched on the same directory.
/// 2. `sigkill`: an out-of-process child is spawned, runs real write
///    traffic against the same directory, and is SIGKILL'd mid-flight;
///    the parent recovers and checks the committed prefix.
/// 3. `recover_time`: recovery wall-time versus log length.
/// 4. `group_commit`: write throughput at batch sizes 1/4/16 (batch 1
///    = one fsync and one reconciliation per transaction).
///
/// Every phase checks recovered consistent answers bit-identically
/// against a fresh single-threaded oracle on the committed prefix.
pub fn e14_crash_recovery(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    use hippo_cqa::budget::{FaultKind, FaultPlan};
    use hippo_server::{DurabilityConfig, Engine, EngineConfig, WriteOp};

    let rows = if quick { 600 } else { 2_000 };
    let seed = 73u64;
    let mut t = Table::new(
        "E14",
        format!("crash recovery: durability fault points, SIGKILL traffic, recovery time, group commit (|t|={rows})"),
        &["phase", "case", "detail", "frames", "wal bytes", "ms", "result"],
    );

    let insert = |key: i64| -> WriteOp {
        WriteOp::Insert {
            table: "t".into(),
            rows: vec![e14_row(key)],
        }
    };
    let recover = |dir: &std::path::Path| -> Result<Engine, Box<dyn std::error::Error>> {
        let (_, cons) = e14_workload(rows, seed)?;
        let eng = Engine::recover(
            EngineConfig::default(),
            DurabilityConfig {
                dir: dir.to_path_buf(),
                checkpoint_every_frames: 0,
            },
            cons,
            Vec::new(),
            HippoOptions::full(),
        )?;
        if let Some(report) = eng.recovery_report() {
            println!("  [E14 recover] {report}");
        }
        Ok(eng)
    };

    // Phase 1: in-process panics at every durability fault point.
    for stage in [
        "wal:append",
        "wal:fsync",
        "checkpoint:write",
        "checkpoint:swap",
    ] {
        let dir = e14_dir(&format!("fault-{}", stage.replace(':', "-")));
        let (db, cons) = e14_workload(rows, seed)?;
        let hippo = Hippo::with_options(db, cons, HippoOptions::full())?;
        let eng = Engine::new_durable(
            hippo,
            EngineConfig::default(),
            DurabilityConfig {
                dir: dir.clone(),
                checkpoint_every_frames: 0,
            },
        )?;
        // One durable commit, then arm the fault and crash mid-write
        // (or mid-checkpoint).
        eng.write(vec![insert(E14_BASE_KEY)])?;
        eng.set_writer_options(HippoOptions::full().with_faults(FaultPlan::new(
            stage,
            Some(0),
            FaultKind::Panic,
        )));
        let is_ckpt = stage.starts_with("checkpoint");
        let failed = if is_ckpt {
            eng.checkpoint().is_err()
        } else {
            eng.write(vec![insert(E14_BASE_KEY + 1)]).is_err()
        };
        if !failed {
            return Err(format!("E14 fault {stage}: injected panic did not surface").into());
        }
        drop(eng); // crash: relaunch on the same directory

        let start = Instant::now();
        let eng2 = recover(&dir)?;
        let elapsed = start.elapsed();
        let report = eng2.recovery_report().unwrap();
        // A complete but unacknowledged frame on disk (possible only
        // for the fsync fault) is resolved forward — standard WAL
        // ambiguous-commit semantics. The replayed frame count says
        // which way it went; the oracle must match it either way.
        let committed = report.frames_replayed;
        let got = eng2.session().consistent_answers(&e14_query())?;
        if got != e14_oracle(rows, seed, committed)? {
            return Err(format!("E14 fault {stage}: recovery diverged from oracle").into());
        }
        t.rows.push(vec![
            "fault".into(),
            format!("{stage}/panic"),
            format!(
                "write {} after relaunch",
                if committed > 1 {
                    "resolved forward"
                } else {
                    "rolled back"
                }
            ),
            report.frames_replayed.to_string(),
            report.wal_bytes.to_string(),
            ms(elapsed),
            "oracle ok".into(),
        ]);
        drop(eng2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Phase 2: out-of-process SIGKILL mid-traffic.
    let kill_rounds = if quick { 3 } else { 5 };
    let kill_after = Duration::from_millis(if quick { 350 } else { 600 });
    let dir = e14_dir("sigkill");
    let mut next_start = 0u64;
    for round in 0..kill_rounds {
        let exe = std::env::current_exe()?;
        let mut child = std::process::Command::new(&exe)
            .env(
                "HIPPO_E14_CHILD",
                format!("{}|{rows}|{seed}|{next_start}|4000", dir.display()),
            )
            // When the target is a libtest binary these args select the
            // (otherwise no-op) child entry test and un-capture its
            // stdout; the harness binary checks the env var first and
            // never parses them.
            .args(["e14_child_entry", "--nocapture", "--test-threads=1"])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()?;
        std::thread::sleep(kill_after);
        if let Some(status) = child.try_wait()? {
            return Err(format!("E14 sigkill round {round}: child died early: {status}").into());
        }
        child.kill()?; // SIGKILL — no destructors, no flushes
        let out = child.wait_with_output()?;
        // A libtest child glues its preamble onto the first ack
        // ("test ... ... acked 0"), so search rather than prefix-match.
        let acked: Vec<u64> = String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter_map(|l| {
                l[l.rfind("acked ")?..]
                    .trim_start_matches("acked ")
                    .trim()
                    .parse()
                    .ok()
            })
            .collect();
        for (i, a) in acked.iter().enumerate() {
            if *a != next_start + i as u64 {
                return Err(format!("E14 sigkill round {round}: acks out of order").into());
            }
        }

        let start = Instant::now();
        let eng = match recover(&dir) {
            Ok(e) => e,
            // Killed before the birth checkpoint: an empty directory is
            // a legal crash state; the next round starts from scratch.
            Err(e) if e.to_string().contains("no checkpoint") => {
                t.rows.push(vec![
                    "sigkill".into(),
                    format!("round {round}"),
                    "killed before birth checkpoint".into(),
                    "0".into(),
                    "0".into(),
                    "-".into(),
                    "empty dir ok".into(),
                ]);
                next_start = 0;
                continue;
            }
            Err(e) => return Err(e),
        };
        let elapsed = start.elapsed();
        let report = eng.recovery_report().unwrap();

        // The recovered sequence must be a contiguous prefix that
        // contains every acked transaction.
        let mut session = eng.session();
        let mut keys: Vec<i64> = session
            .epoch()
            .frozen()
            .catalog()
            .table("t")?
            .iter()
            .filter_map(|(_, r)| match r[0] {
                Value::Int(k) if k >= E14_BASE_KEY => Some(k - E14_BASE_KEY),
                _ => None,
            })
            .collect();
        keys.sort_unstable();
        let k = keys.len() as u64;
        if keys.iter().enumerate().any(|(i, &key)| key != i as i64) {
            return Err(format!("E14 sigkill round {round}: recovered keys have gaps").into());
        }
        let durable_floor = next_start + acked.len() as u64;
        if k < durable_floor {
            return Err(format!(
                "E14 sigkill round {round}: lost acked writes (recovered {k} < acked {durable_floor})"
            )
            .into());
        }
        let got = session.consistent_answers(&e14_query())?;
        if got != e14_oracle(rows, seed, k)? {
            return Err(format!("E14 sigkill round {round}: recovery diverged from oracle").into());
        }
        t.rows.push(vec![
            "sigkill".into(),
            format!("round {round}"),
            format!(
                "acked={} recovered={k} ckpt_lsn={} torn_tail={}",
                durable_floor, report.checkpoint_lsn, report.torn_tail_truncated
            ),
            report.frames_replayed.to_string(),
            report.wal_bytes.to_string(),
            ms(elapsed),
            "prefix+oracle ok".into(),
        ]);
        next_start = k;
        drop(session);
        drop(eng);
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 3: recovery time versus log length (no checkpoints, so the
    // whole log replays).
    for frames in if quick {
        [16u64, 64, 256]
    } else {
        [64, 256, 1024]
    } {
        let dir = e14_dir(&format!("rectime-{frames}"));
        let (db, cons) = e14_workload(rows, seed)?;
        let hippo = Hippo::with_options(db, cons, HippoOptions::full())?;
        let eng = Engine::new_durable(
            hippo,
            EngineConfig::default(),
            DurabilityConfig {
                dir: dir.clone(),
                checkpoint_every_frames: 0,
            },
        )?;
        for i in 0..frames {
            eng.write(vec![insert(E14_BASE_KEY + i as i64)])?;
        }
        drop(eng);
        let start = Instant::now();
        let eng2 = recover(&dir)?;
        let elapsed = start.elapsed();
        let report = eng2.recovery_report().unwrap();
        let got = eng2.session().consistent_answers(&e14_query())?;
        if got != e14_oracle(rows, seed, frames)? {
            return Err(format!("E14 recover_time frames={frames}: oracle diverged").into());
        }
        t.rows.push(vec![
            "recover_time".into(),
            format!("frames={frames}"),
            "full log replay (no checkpoint)".into(),
            report.frames_replayed.to_string(),
            report.wal_bytes.to_string(),
            ms(elapsed),
            "oracle ok".into(),
        ]);
        drop(eng2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Phase 4: group-commit throughput at batch sizes 1/4/16. Each
    // size gets a fresh engine so table growth doesn't bias the
    // comparison. Batch 1 is the per-op-fsync baseline.
    let txns = if quick { 96u64 } else { 240 };
    let mut base_thr = 0.0f64;
    for batch in [1u64, 4, 16] {
        let dir = e14_dir(&format!("group-{batch}"));
        let (db, cons) = e14_workload(rows, seed)?;
        let hippo = Hippo::with_options(db, cons, HippoOptions::full())?;
        let eng = Engine::new_durable(
            hippo,
            EngineConfig::default(),
            DurabilityConfig {
                dir: dir.clone(),
                checkpoint_every_frames: 0,
            },
        )?;
        let start = Instant::now();
        let mut seq = 0u64;
        while seq < txns {
            let group: Vec<Vec<WriteOp>> = (0..batch)
                .map(|j| vec![insert(E14_BASE_KEY + (seq + j) as i64)])
                .collect();
            for r in eng.write_group(group)? {
                r?;
            }
            seq += batch;
        }
        let elapsed = start.elapsed();
        let stats = eng.stats();
        let thr = txns as f64 / elapsed.as_secs_f64();
        if batch == 1 {
            base_thr = thr;
        }
        drop(eng);
        let eng2 = recover(&dir)?;
        let got = eng2.session().consistent_answers(&e14_query())?;
        if got != e14_oracle(rows, seed, txns)? {
            return Err(format!("E14 group_commit batch={batch}: oracle diverged").into());
        }
        t.rows.push(vec![
            "group_commit".into(),
            format!("batch={batch}"),
            format!("{txns} txns, {} fsyncs, {:.0} tx/s", stats.wal_fsyncs, thr),
            stats.wal_frames.to_string(),
            "-".into(),
            ms(elapsed),
            format!("{:.1}x vs batch 1", thr / base_thr),
        ]);
        drop(eng2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    t.notes.push(
        "oracle = fresh single-threaded Hippo over the seeded base table plus the recovered \
         committed prefix; every phase requires bit-identical consistent answers"
            .into(),
    );
    t.notes.push(
        "sigkill invariants: acks are durable (never lost), recovered keys form a contiguous \
         prefix, torn tails truncate silently; acceptance: batch=16 group commit ≥2x the \
         per-op-fsync baseline"
            .into(),
    );
    Ok(t)
}

// =====================================================================
// E15: replication failover — kill-tested promotion, fencing, chaos
// transports, catch-up time and steady-state lag.
// =====================================================================

fn e15_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("hippo-e15-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn e15_replica_config(seed: u64) -> hippo_server::ReplicaConfig {
    let (_, cons) = e14_workload(1, seed).unwrap();
    let mut config = hippo_server::ReplicaConfig::new(cons);
    config.options = HippoOptions::full();
    config.resync_after = Duration::from_millis(30);
    config
}

/// Poll `cond` until it holds or `deadline` passes (structured error,
/// never a hang — experiments must fail loudly).
fn e15_wait(
    mut cond: impl FnMut() -> bool,
    what: &str,
    deadline: Duration,
) -> Result<(), Box<dyn std::error::Error>> {
    let start = Instant::now();
    while !cond() {
        if start.elapsed() > deadline {
            return Err(format!("E15: timed out waiting for {what}").into());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    Ok(())
}

/// Count the sequenced crash-traffic keys an engine holds and demand
/// they form a contiguous prefix `0..k`.
fn e15_applied_prefix(eng: &hippo_server::Engine) -> Result<u64, Box<dyn std::error::Error>> {
    let session = eng.session();
    let mut keys: Vec<i64> = session
        .epoch()
        .frozen()
        .catalog()
        .table("t")?
        .iter()
        .filter_map(|(_, r)| match r[0] {
            Value::Int(k) if k >= E14_BASE_KEY => Some(k - E14_BASE_KEY),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    for (i, &k) in keys.iter().enumerate() {
        if k != i as i64 {
            return Err(format!("E15: applied keys have gaps at index {i} (key {k})").into());
        }
    }
    Ok(keys.len() as u64)
}

/// Hidden crash-child entry point for E15, selected purely by
/// environment (`HIPPO_E15_CHILD=dir|rows|seed|limit`): open a durable
/// engine in `dir`, serve replication on an ephemeral TCP port
/// (announced as `port N` on stdout), then append sequenced single-row
/// transactions, acking each durable commit, until SIGKILL'd.
pub fn e15_child_from_env() {
    let Ok(spec) = std::env::var("HIPPO_E15_CHILD") else {
        return;
    };
    use hippo_server::{DurabilityConfig, Engine, EngineConfig, WriteOp};
    let parts: Vec<&str> = spec.split('|').collect();
    let (dir, rows, seed, limit) = (
        std::path::PathBuf::from(parts[0]),
        parts[1].parse::<usize>().unwrap(),
        parts[2].parse::<u64>().unwrap(),
        parts[3].parse::<u64>().unwrap(),
    );
    let (db, cons) = e14_workload(rows, seed).unwrap();
    let hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    let eng = Engine::new_durable(
        hippo,
        EngineConfig::default(),
        DurabilityConfig {
            dir,
            checkpoint_every_frames: 8,
        },
    )
    .unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let server = eng.serve_replication(listener).unwrap();
    // Line-buffered stdout: the parent reads this before attaching.
    println!("port {}", server.addr().port());
    for i in 0..limit {
        eng.write(vec![WriteOp::Insert {
            table: "t".into(),
            rows: vec![e14_row(E14_BASE_KEY + i as i64)],
        }])
        .unwrap();
        println!("acked {i}");
    }
    // Limit reached before the parent's kill: idle and wait for it.
    loop {
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// E15: WAL-shipping replication and kill-tested failover. Five phases:
///
/// 1. `failover`: an out-of-process primary serves replication over
///    TCP and runs acked write traffic; a replica follows; the primary
///    is SIGKILL'd mid-flight and the replica is **promoted**. The
///    promoted node's consistent answers must be bit-identical to a
///    serial oracle on its applied prefix, the term must bump, and
///    recovering the dead primary's directory must show the replica
///    applied a prefix of what was committed.
/// 2. `fencing`: a crafted higher-term heartbeat turns the live
///    primary into a zombie; its frames must be rejected without
///    touching replica state, and the rejection must teach the zombie
///    to stop feeding.
/// 3. `chaos`: armed `repl:drop`/`repl:corrupt`/`repl:delay` faults on
///    the shipping path heal via resync (bit-identical convergence);
///    `repl:disconnect` surfaces structurally and a re-attach recovers.
/// 4. `catchup`: a partitioned replica rejoins after N frames of
///    missed traffic; catch-up must go through the incremental WAL
///    path (no snapshot), timed per N.
/// 5. `lag`: steady-state replication lag sampled under write traffic,
///    converging to zero.
pub fn e15_replication_failover(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    use hippo_cqa::budget::{FaultKind, FaultPlan};
    use hippo_server::replicate::ReplMsg;
    use hippo_server::{
        ChannelTransport, DurabilityConfig, Engine, EngineConfig, Replica, TcpTransport, Transport,
        WriteOp,
    };

    let rows = if quick { 400 } else { 1_500 };
    let seed = 79u64;
    let mut t = Table::new(
        "E15",
        format!("replication failover: SIGKILL'd primary, promotion, fencing, chaos transports, catch-up and lag (|t|={rows})"),
        &["phase", "case", "detail", "lsns", "ms", "result"],
    );

    let insert = |key: i64| -> WriteOp {
        WriteOp::Insert {
            table: "t".into(),
            rows: vec![e14_row(key)],
        }
    };
    let durable = |dir: &std::path::Path| -> Result<Engine, Box<dyn std::error::Error>> {
        let (db, cons) = e14_workload(rows, seed)?;
        let hippo = Hippo::with_options(db, cons, HippoOptions::full())?;
        Ok(Engine::new_durable(
            hippo,
            EngineConfig::default(),
            DurabilityConfig {
                dir: dir.to_path_buf(),
                checkpoint_every_frames: 0,
            },
        )?)
    };
    let recover = |dir: &std::path::Path| -> Result<Engine, Box<dyn std::error::Error>> {
        let (_, cons) = e14_workload(rows, seed)?;
        let eng = Engine::recover(
            EngineConfig::default(),
            DurabilityConfig {
                dir: dir.to_path_buf(),
                checkpoint_every_frames: 0,
            },
            cons,
            Vec::new(),
            HippoOptions::full(),
        )?;
        if let Some(report) = eng.recovery_report() {
            println!("  [E15 recover] {report}");
        }
        Ok(eng)
    };
    let wait_caught_up = |eng: &Engine, replica: &Replica, what: &str| {
        let target = eng.replication_stats().last_lsn;
        e15_wait(
            || replica.staleness().applied_lsn >= target && replica.broken().is_none(),
            what,
            Duration::from_secs(30),
        )
    };

    // -----------------------------------------------------------------
    // Phase 1: SIGKILL the primary mid-traffic, promote the replica.
    // -----------------------------------------------------------------
    {
        let dir = e15_dir("failover");
        let min_acks = if quick { 25 } else { 60 };
        let exe = std::env::current_exe()?;
        let mut child = std::process::Command::new(&exe)
            .env(
                "HIPPO_E15_CHILD",
                format!("{}|{rows}|{seed}|4000", dir.display()),
            )
            // Libtest-target argv (see E14): selects the child entry
            // test and un-captures stdout; the harness binary checks
            // the env var first and ignores these.
            .args(["e15_child_entry", "--nocapture", "--test-threads=1"])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()?;
        // The port arrives on stdout *before* the kill, so the stream
        // must be read incrementally — a reader thread feeds a channel.
        let stdout = child.stdout.take().ok_or("E15: no child stdout")?;
        let (line_tx, line_rx) = std::sync::mpsc::channel::<String>();
        let reader = std::thread::spawn(move || {
            use std::io::BufRead as _;
            for line in std::io::BufReader::new(stdout).lines() {
                let Ok(l) = line else { break };
                if line_tx.send(l).is_err() {
                    break;
                }
            }
        });
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut port: Option<u16> = None;
        let mut acked = 0u64;
        while port.is_none() {
            if Instant::now() > deadline {
                let _ = child.kill();
                return Err("E15 failover: child never announced its port".into());
            }
            if let Ok(l) = line_rx.recv_timeout(Duration::from_millis(50)) {
                // Libtest glues its preamble onto the first line.
                if let Some(at) = l.rfind("port ") {
                    port = l[at + 5..].trim().parse().ok();
                }
            }
        }
        let transport = TcpTransport::connect(&format!("127.0.0.1:{}", port.unwrap()))?;
        let replica = Replica::start(Box::new(transport), e15_replica_config(seed));

        // Let real traffic flow: count acks until the kill threshold.
        while acked < min_acks {
            if Instant::now() > deadline {
                let _ = child.kill();
                return Err(format!("E15 failover: only {acked} acks before deadline").into());
            }
            if let Ok(l) = line_rx.recv_timeout(Duration::from_millis(50)) {
                if l.contains("acked ") {
                    acked += 1;
                }
            }
        }
        child.kill()?; // SIGKILL — no destructors, no flushes
        child.wait()?;
        // Drain the acks that were in flight when the kill landed.
        while let Ok(l) = line_rx.recv_timeout(Duration::from_millis(100)) {
            if l.contains("acked ") {
                acked += 1;
            }
        }
        reader.join().ok();

        // Let in-flight frames settle, then promote.
        let settle = Instant::now();
        let mut last = replica.staleness().applied_lsn;
        loop {
            std::thread::sleep(Duration::from_millis(60));
            let now = replica.staleness().applied_lsn;
            if now == last || settle.elapsed() > Duration::from_secs(10) {
                break;
            }
            last = now;
        }
        let term_before = replica.term();
        let start = Instant::now();
        let (promoted, report) = replica.promote(EngineConfig::default(), None)?;
        let promote_ms = start.elapsed();
        if report.term != term_before + 1 || promoted.term() != report.term {
            return Err(format!(
                "E15 failover: promotion must bump the fencing term ({term_before} -> {:?})",
                report
            )
            .into());
        }

        // The promoted node serves exactly its applied prefix...
        let k = e15_applied_prefix(&promoted)?;
        let got = promoted.session().consistent_answers(&e14_query())?;
        if got != e14_oracle(rows, seed, k)? {
            return Err("E15 failover: promoted answers diverged from the serial oracle".into());
        }
        // ...which is a prefix of what the dead primary committed, and
        // every acked transaction survived in the primary's own log.
        let dead = recover(&dir)?;
        let m = e15_applied_prefix(&dead)?;
        let dead_got = dead.session().consistent_answers(&e14_query())?;
        if dead_got != e14_oracle(rows, seed, m)? {
            return Err("E15 failover: recovered primary diverged from the serial oracle".into());
        }
        if k > m {
            return Err(format!(
                "E15 failover: replica applied {k} writes but only {m} were committed"
            )
            .into());
        }
        if acked > m {
            return Err(format!(
                "E15 failover: {acked} acked writes but only {m} recovered — durability lost"
            )
            .into());
        }
        t.rows.push(vec![
            "failover".into(),
            "sigkill + promote".into(),
            format!(
                "acked={acked} applied={k} committed={m} term={}",
                report.term
            ),
            report.applied_lsn.to_string(),
            ms(promote_ms),
            "prefix+oracle ok".into(),
        ]);
        drop(dead);
        drop(promoted);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -----------------------------------------------------------------
    // Phase 2: fencing — a zombie primary's frames are rejected.
    // -----------------------------------------------------------------
    {
        let dir = e15_dir("fencing");
        let eng = durable(&dir)?;
        let (a, b) = ChannelTransport::pair();
        let replica = Replica::start(Box::new(b), e15_replica_config(seed));
        eng.attach_replica(Box::new(a))?;
        eng.write(vec![insert(E14_BASE_KEY)])?;
        wait_caught_up(&eng, &replica, "fencing: initial sync")?;
        let settled = {
            let mut s = replica.session()?;
            s.consistent_answers(&e14_query())?
        };

        // A higher-term heartbeat teaches the replica the cluster
        // moved on; the still-live old primary is now a zombie.
        let (mut ours, theirs) = ChannelTransport::pair();
        replica.attach(Box::new(theirs));
        ours.send(
            &ReplMsg::Heartbeat {
                term: eng.term() + 1,
                last_lsn: replica.staleness().applied_lsn,
            }
            .encode(),
        )?;
        e15_wait(
            || replica.term() == eng.term() + 1,
            "fencing: term adoption",
            Duration::from_secs(10),
        )?;
        eng.write(vec![insert(E14_BASE_KEY + 1)])?;
        e15_wait(
            || replica.stats().frames_fenced >= 1,
            "fencing: stale frames rejected",
            Duration::from_secs(10),
        )?;
        let now = {
            let mut s = replica.session()?;
            s.consistent_answers(&e14_query())?
        };
        if now != settled {
            return Err("E15 fencing: fenced frames must not touch replica state".into());
        }
        e15_wait(
            || eng.replication_stats().feeds_fenced >= 1,
            "fencing: zombie learns via ack",
            Duration::from_secs(10),
        )?;
        let rs = replica.stats();
        t.rows.push(vec![
            "fencing".into(),
            "zombie primary".into(),
            format!(
                "frames_fenced={} feeds_fenced={}",
                rs.frames_fenced,
                eng.replication_stats().feeds_fenced
            ),
            rs.applied_lsn.to_string(),
            "-".into(),
            "state unchanged".into(),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -----------------------------------------------------------------
    // Phase 3: chaos transports — drop/corrupt/delay heal, disconnect
    // surfaces structurally and a re-attach recovers.
    // -----------------------------------------------------------------
    {
        let dir = e15_dir("chaos");
        let eng = durable(&dir)?;
        let gov = HippoOptions::full()
            .with_faults(
                FaultPlan::parse("repl:drop:*:drop,repl:corrupt:*:corrupt,repl:delay:*:delay5")
                    .map_err(|e| format!("E15 chaos: {e}"))?,
            )
            .governance();
        let (a, b) = ChannelTransport::pair();
        let replica = Replica::start(Box::new(b), e15_replica_config(seed));
        eng.attach_replica(Box::new(a.with_faults(gov, 0)))?;
        let start = Instant::now();
        for i in 0..8 {
            eng.write(vec![insert(E14_BASE_KEY + i)])?;
        }
        wait_caught_up(&eng, &replica, "chaos: convergence through faults")?;
        let elapsed = start.elapsed();
        let got = {
            let mut s = replica.session()?;
            s.consistent_answers(&e14_query())?
        };
        if got != eng.session().consistent_answers(&e14_query())? {
            return Err("E15 chaos: dropped/corrupted frames must heal, not diverge".into());
        }
        let rs = replica.stats();
        if rs.broken {
            return Err(format!("E15 chaos: replica broke: {rs}").into());
        }
        if rs.msgs_corrupt < 1 || rs.gaps_detected + rs.resync_requests < 1 {
            return Err(format!("E15 chaos: armed faults never fired: {rs}").into());
        }
        t.rows.push(vec![
            "chaos".into(),
            "drop+corrupt+delay".into(),
            format!(
                "corrupt={} resyncs={} snapshots={}",
                rs.msgs_corrupt,
                rs.gaps_detected + rs.resync_requests,
                rs.snapshots_loaded
            ),
            rs.applied_lsn.to_string(),
            ms(elapsed),
            "bit-identical".into(),
        ]);

        // Disconnect: structured hangup, then a clean re-attach.
        let disc_gov = HippoOptions::full()
            .with_faults(FaultPlan::new(
                "repl:disconnect",
                None,
                FaultKind::Disconnect,
            ))
            .governance();
        let (a2, b2) = ChannelTransport::pair();
        let replica2 = Replica::start(Box::new(b2), e15_replica_config(seed));
        eng.attach_replica(Box::new(a2.with_faults(disc_gov, 0)))?;
        eng.write(vec![insert(E14_BASE_KEY + 8)])?;
        e15_wait(
            || replica2.stats().disconnects >= 1,
            "chaos: structured disconnect",
            Duration::from_secs(10),
        )?;
        if replica2.broken().is_some() {
            return Err("E15 chaos: a disconnect must never break replica state".into());
        }
        let (a3, b3) = ChannelTransport::pair();
        replica2.attach(Box::new(b3));
        eng.attach_replica(Box::new(a3))?;
        wait_caught_up(&eng, &replica2, "chaos: post-disconnect recovery")?;
        let got = {
            let mut s = replica2.session()?;
            s.consistent_answers(&e14_query())?
        };
        if got != eng.session().consistent_answers(&e14_query())? {
            return Err("E15 chaos: re-attached replica diverged".into());
        }
        t.rows.push(vec![
            "chaos".into(),
            "disconnect + reattach".into(),
            format!("disconnects={}", replica2.stats().disconnects),
            replica2.staleness().applied_lsn.to_string(),
            "-".into(),
            "bit-identical".into(),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -----------------------------------------------------------------
    // Phase 4: catch-up time versus missed-log length. A replica syncs,
    // is partitioned (its primary dies), a successor commits N more
    // frames, and the replica rejoins — the catch-up must ride the
    // incremental WAL path, not a fresh snapshot.
    // -----------------------------------------------------------------
    for frames in if quick {
        [8u64, 32, 128]
    } else {
        [16, 64, 256]
    } {
        let dir = e15_dir(&format!("catchup-{frames}"));
        let eng = durable(&dir)?;
        let (a, b) = ChannelTransport::pair();
        let replica = Replica::start(Box::new(b), e15_replica_config(seed));
        eng.attach_replica(Box::new(a))?;
        eng.write(vec![insert(E14_BASE_KEY)])?;
        wait_caught_up(&eng, &replica, "catchup: initial sync")?;
        drop(eng); // partition: the feed dies with its engine

        let eng2 = recover(&dir)?;
        for i in 0..frames {
            eng2.write(vec![insert(E14_BASE_KEY + 1 + i as i64)])?;
        }
        let snapshots_before = replica.stats().snapshots_loaded;
        let (a2, b2) = ChannelTransport::pair();
        replica.attach(Box::new(b2));
        let start = Instant::now();
        eng2.attach_replica(Box::new(a2))?;
        wait_caught_up(&eng2, &replica, "catchup: rejoin")?;
        let elapsed = start.elapsed();
        let rs = replica.stats();
        if rs.snapshots_loaded != snapshots_before {
            return Err(format!(
                "E15 catchup frames={frames}: rejoin took a snapshot instead of the log: {rs}"
            )
            .into());
        }
        let got = {
            let mut s = replica.session()?;
            s.consistent_answers(&e14_query())?
        };
        if got != eng2.session().consistent_answers(&e14_query())? {
            return Err(format!("E15 catchup frames={frames}: diverged after rejoin").into());
        }
        t.rows.push(vec![
            "catchup".into(),
            format!("frames={frames}"),
            format!(
                "incremental replay (frames_applied={} ops={})",
                rs.frames_applied, rs.ops_applied
            ),
            rs.applied_lsn.to_string(),
            ms(elapsed),
            "incremental ok".into(),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -----------------------------------------------------------------
    // Phase 5: steady-state replication lag under write traffic.
    // -----------------------------------------------------------------
    {
        let dir = e15_dir("lag");
        let eng = durable(&dir)?;
        let (a, b) = ChannelTransport::pair();
        let replica = Replica::start(Box::new(b), e15_replica_config(seed));
        eng.attach_replica(Box::new(a))?;
        let writes = if quick { 30u64 } else { 80 };
        let mut max_lag = 0u64;
        let mut lag_sum = 0u64;
        let start = Instant::now();
        for i in 0..writes {
            eng.write(vec![insert(E14_BASE_KEY + i as i64)])?;
            let lag = replica.staleness().lsn_lag;
            max_lag = max_lag.max(lag);
            lag_sum += lag;
        }
        wait_caught_up(&eng, &replica, "lag: final convergence")?;
        let elapsed = start.elapsed();
        let st = replica.staleness();
        if st.lsn_lag != 0 {
            return Err(format!("E15 lag: settled replica still lags: {st:?}").into());
        }
        let got = {
            let mut s = replica.session()?;
            s.consistent_answers(&e14_query())?
        };
        if got != eng.session().consistent_answers(&e14_query())? {
            return Err("E15 lag: converged replica diverged".into());
        }
        t.rows.push(vec![
            "lag".into(),
            format!("writes={writes}"),
            format!(
                "max_lag={max_lag} mean_lag={:.1} settled_lag=0",
                lag_sum as f64 / writes as f64
            ),
            st.applied_lsn.to_string(),
            ms(elapsed),
            "converged to 0".into(),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    t.notes.push(
        "oracle = fresh single-threaded Hippo over the seeded base table plus the applied \
         committed prefix; failover requires promoted answers bit-identical to it and \
         applied <= committed (no invented writes), acked <= committed (no lost acks)"
            .into(),
    );
    t.notes.push(
        "fencing: promotion bumps a monotonic term carried in every frame; stale-term frames \
         are rejected without touching state and the rejection teaches the zombie to stop"
            .into(),
    );
    Ok(t)
}

/// Best-of-`reps` wall-clock of `f` (min absorbs scheduler noise).
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// E16 (PR 10): columnar batch execution — typed column vectors with
/// selection-vector operators against the row-at-a-time engine, on the
/// E9 workload table. Three variants: the full-scan filter and grouped
/// aggregation SQL hot paths (columnar forced on vs off on the same
/// instance; answers must match bit for bit and the engine-choice
/// counters must prove which engine ran), the FD-detection LHS hash
/// pass (contiguous typed column slices vs slot-by-slot `Value`
/// hashing), and end-to-end conflict detection. In full mode the
/// vectorized filter, aggregate and hash pass must each hold their
/// speedup targets; quick mode (CI) only checks correctness — 2k-row
/// scans finish in microseconds, where shared-runner noise drowns
/// ratios.
pub fn e16_columnar(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    use hippo_engine::set_columnar_override;
    use std::hash::{Hash, Hasher};
    use std::hint::black_box;

    let n = if quick { 2000 } else { 16000 };
    let reps = if quick { 30 } else { 10 };
    let mut t = Table::new(
        "E16",
        format!("columnar batch execution: vectorized vs row mode (|t|={n})"),
        &["variant", "engine", "time ms", "speedup", "detail"],
    );

    let spec = FdTableSpec::new("t", n, 0.05, 81);
    let mut db = Database::new();
    spec.populate(&mut db)?;
    // Warm the column store once: every timed region below measures the
    // steady state (DML invalidates the store; the next read rebuilds).
    db.catalog().table("t")?.column_store();

    // (1) Full-scan filter and grouped aggregation through SQL.
    for (variant, sql, target) in [
        ("filter_scan", "SELECT k FROM t WHERE payload >= 500", 2.0),
        (
            "aggregate",
            "SELECT payload, COUNT(*), SUM(v) FROM t GROUP BY payload",
            1.2,
        ),
    ] {
        let mut times = [Duration::ZERO; 2];
        let mut answers: Vec<Vec<Row>> = Vec::new();
        for (i, columnar) in [true, false].into_iter().enumerate() {
            set_columnar_override(Some(columnar));
            answers.push(db.query(sql)?.rows);
            db.reset_stats();
            db.query(sql)?;
            let s = db.stats();
            // The engine-choice counters prove which engine really ran.
            if columnar && (s.batches_executed == 0 || s.vectorized_rows == 0) {
                return Err(format!("{variant}: columnar run fell back to row mode").into());
            }
            if !columnar && s.vectorized_rows != 0 {
                return Err(format!("{variant}: row-mode run used the vectorized engine").into());
            }
            times[i] = best_of(reps, || {
                black_box(db.query(sql).unwrap());
            });
            set_columnar_override(None);
        }
        if answers[0] != answers[1] {
            return Err(format!("{variant}: columnar answers diverge from row mode").into());
        }
        let speedup = times[1].as_secs_f64() / times[0].as_secs_f64();
        if !quick && speedup < target {
            return Err(format!(
                "{variant}: vectorized speedup {speedup:.2}x below the {target}x target"
            )
            .into());
        }
        let rows_out = answers[0].len();
        for (engine, time, rel) in [
            ("vectorized", times[0], format!("{speedup:.2}x")),
            ("rowmode", times[1], "1.00x".into()),
        ] {
            t.rows.push(vec![
                variant.into(),
                engine.into(),
                ms(time),
                rel,
                format!("rows_out={rows_out} answers bit-identical"),
            ]);
        }
    }

    // (2) The FD-detection LHS hash pass in isolation: slot loop over
    // `Value` rows vs `ColumnStore::hash_cols` on contiguous slices
    // (identical hash bytes — this is exactly the E9 Phase A work).
    let table = db.catalog().table("t")?;
    let store = table
        .column_store()
        .ok_or("column store unavailable for t")?;
    let lhs = [0usize];
    let row_pass = best_of(reps, || {
        let mut acc = 0u64;
        for (_, row) in table.iter() {
            let mut h = rustc_hash::FxHasher::default();
            if row[lhs[0]].is_null() {
                continue;
            }
            row[lhs[0]].hash(&mut h);
            acc = acc.wrapping_add(h.finish());
        }
        black_box(acc);
    });
    let col_pass = best_of(reps, || {
        let mut acc = 0u64;
        store.for_each_hash::<rustc_hash::FxHasher, _>(0..store.len(), &lhs, |_, h| {
            acc = acc.wrapping_add(h);
        });
        black_box(acc);
    });
    let speedup = row_pass.as_secs_f64() / col_pass.as_secs_f64();
    if !quick && speedup < 2.0 {
        return Err(
            format!("detect_hash: vectorized speedup {speedup:.2}x below the 2x target").into(),
        );
    }
    t.rows.push(vec![
        "detect_hash".into(),
        "vectorized".into(),
        ms(col_pass),
        format!("{speedup:.2}x"),
        format!("{} live rows hashed, identical hash bytes", store.len()),
    ]);
    t.rows.push(vec![
        "detect_hash".into(),
        "rowmode".into(),
        ms(row_pass),
        "1.00x".into(),
        format!("{} live rows hashed", table.len()),
    ]);

    // (3) End-to-end conflict detection (Phase A vectorized, Phase B
    // identical): the graph must not change shape with the toggle.
    let constraints = vec![spec.fd()];
    let mut edges = [0usize; 2];
    let mut detect_times = [Duration::ZERO; 2];
    for (i, columnar) in [true, false].into_iter().enumerate() {
        set_columnar_override(Some(columnar));
        let (g, _) = detect_conflicts(db.catalog(), &constraints)?;
        edges[i] = g.edge_count();
        detect_times[i] = best_of(reps.min(5), || {
            black_box(detect_conflicts(db.catalog(), &constraints).unwrap());
        });
        set_columnar_override(None);
    }
    if edges[0] != edges[1] {
        return Err("detect_full: edge count changed with the columnar toggle".into());
    }
    let speedup = detect_times[1].as_secs_f64() / detect_times[0].as_secs_f64();
    for (engine, time, rel) in [
        ("vectorized", detect_times[0], format!("{speedup:.2}x")),
        ("rowmode", detect_times[1], "1.00x".into()),
    ] {
        t.rows.push(vec![
            "detect_full".into(),
            engine.into(),
            ms(time),
            rel,
            format!("edges={} (identical)", edges[0]),
        ]);
    }

    t.notes.push(
        "vectorized = typed column vectors + validity bitmaps + selection-vector operators \
         (crates/engine/src/column.rs); rowmode = the streamed row-at-a-time operators. \
         Answers, errors and budget charges are bit-identical by construction — only the \
         engine-choice counters (batches_executed / vectorized_rows / rowmode_rows) differ"
            .into(),
    );
    t.notes.push(
        "speedup targets (filter >= 2x, detect hash pass >= 2x) are asserted in full mode; \
         quick mode checks correctness only (2k-row scans are microsecond-scale and \
         CI-runner noise dominates the ratio)"
            .into(),
    );
    Ok(t)
}

/// Run every experiment; `quick` shrinks sizes for CI.
pub fn run_all(quick: bool) -> Result<Vec<Table>, Box<dyn std::error::Error>> {
    Ok(vec![
        d1_information(quick)?,
        d2_expressiveness()?,
        e1_scaling(quick)?,
        e2_conflicts(quick)?,
        e3_query_classes(quick)?,
        e4_detection(quick)?,
        e5_ablation(quick)?,
        e6_envelope(quick)?,
        e7_repair_blowup(quick)?,
        e8_parallel(quick)?,
        e9_prover(quick)?,
        e10_base_mode(quick)?,
        e11_index_probes(quick)?,
        e12_governance(quick)?,
        e13_chaos_service(quick)?,
        e14_crash_recovery(quick)?,
        e15_replication_failover(quick)?,
        e16_columnar(quick)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d2_matrix_has_no_wrong_cells() {
        let t = d2_expressiveness().unwrap();
        for row in &t.rows {
            assert_ne!(row[2], "✗ WRONG", "{row:?}");
            assert_ne!(row[3], "✗ WRONG", "{row:?}");
        }
        // rewriting must be n/a for the union row and ternary rows
        let sud = t.rows.iter().find(|r| r[0] == "SUD").unwrap();
        assert_eq!(sud[3], "n/a");
        let tern = t.rows.iter().find(|r| r[1] == "ternary denial").unwrap();
        assert_eq!(tern[3], "n/a");
    }

    #[test]
    fn e7_hippo_agrees_with_naive_everywhere() {
        let t = e7_repair_blowup(true).unwrap();
        for row in &t.rows {
            assert_eq!(row[4], "true", "{row:?}");
        }
        // Repair counts are 3^k.
        assert_eq!(t.rows[0][1], "9");
        assert_eq!(t.rows[1][1], "81");
    }

    #[test]
    fn e5_kg_kills_membership_queries() {
        let t = e5_ablation(true).unwrap();
        let base = &t.rows[0];
        let kg = &t.rows[1];
        assert!(base[2].parse::<usize>().unwrap() > 0);
        assert_eq!(kg[2], "0");
        // Answers identical across variants.
        assert_eq!(base[5], kg[5]);
        assert_eq!(kg[5], t.rows[2][5]);
    }

    #[test]
    fn e6_candidate_counts_consistent() {
        let t = e6_envelope(true).unwrap();
        for row in &t.rows {
            let candidates: usize = row[1].parse().unwrap();
            let filtered: usize = row[2].parse().unwrap();
            let prover: usize = row[3].parse().unwrap();
            let consistent: usize = row[4].parse().unwrap();
            assert_eq!(filtered + prover, candidates, "{row:?}");
            assert!(consistent <= candidates);
            assert!(filtered <= consistent);
        }
    }

    #[test]
    fn e9_rows_are_internally_consistent() {
        let t = e9_prover(true).unwrap();
        // Thread rows: identical prover calls / cache hits / answers.
        let threads: Vec<&Vec<String>> =
            t.rows.iter().filter(|r| r[0] == "prover_threads").collect();
        assert_eq!(threads.len(), 4);
        for r in &threads {
            assert_eq!(r[4], threads[0][4], "prover calls differ: {r:?}");
            assert_eq!(r[5], threads[0][5], "cache hits differ: {r:?}");
            assert_eq!(r[6], threads[0][6], "answers differ: {r:?}");
        }
        // Cache rows: memoized proves fewer tuples than uncached.
        let uncached = t.rows.iter().find(|r| r[1] == "uncached").unwrap();
        let memoized = t.rows.iter().find(|r| r[1] == "memoized").unwrap();
        assert_eq!(uncached[5], "0");
        let hits: usize = memoized[5].parse().unwrap();
        assert!(hits > 0, "memoized run must hit the cache: {memoized:?}");
        // Hit-rate sweep: hits ≤ calls on every row.
        for r in t.rows.iter().filter(|r| r[0] == "cache_hit_rate") {
            let calls: usize = r[4].parse().unwrap();
            let hits: usize = r[5].parse().unwrap();
            assert!(hits <= calls, "{r:?}");
        }
        // Delta-seeded redetect checks far fewer combinations than the
        // full pass (no outer-atom rescan).
        let combos =
            |r: &Vec<String>| -> usize { r[6].strip_prefix("combos=").unwrap().parse().unwrap() };
        let full = t.rows.iter().find(|r| r[1] == "full_rebuild").unwrap();
        let delta = t
            .rows
            .iter()
            .find(|r| r[1] == "delta_seeded_1_insert")
            .unwrap();
        assert!(
            combos(delta) * 100 <= combos(full),
            "delta combos {} vs full {}",
            combos(delta),
            combos(full)
        );
    }

    #[test]
    fn e11_rows_are_internally_consistent() {
        let t = e11_index_probes(true).unwrap();
        // Row 0: indexed — all probes through the index.
        let idx_split = &t.rows[0][4];
        assert!(idx_split.ends_with("/0"), "{idx_split}");
        assert!(!idx_split.starts_with("0/"), "no probes executed at all?");
        // Row 1: scan ablation — no index probes.
        assert!(t.rows[1][4].starts_with("0/"), "{:?}", t.rows[1]);
        // All three rows agree on the answer count (also asserted
        // inside the experiment itself).
        let ans = |row: &[String]| {
            row[5]
                .split("answers=")
                .nth(1)
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(ans(&t.rows[0]), ans(&t.rows[1]));
        assert_eq!(ans(&t.rows[0]), ans(&t.rows[2]));
    }

    #[test]
    fn e10_rows_are_internally_consistent() {
        let t = e10_base_mode(true).unwrap();
        // Base thread rows: identical answers, shard counts and SQL
        // membership counts on every row.
        let threads: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "base_threads").collect();
        assert_eq!(threads.len(), 4);
        for r in &threads {
            assert_eq!(r[4], threads[0][4], "membership sql differs: {r:?}");
            assert_eq!(r[5], threads[0][5], "answers/shards differ: {r:?}");
        }
        assert!(
            threads[0][4].parse::<usize>().unwrap() > 0,
            "base mode pays membership SQL"
        );
        // KG reference issues zero membership SQL.
        let kg = t.rows.iter().find(|r| r[0] == "kg_reference").unwrap();
        assert_eq!(kg[4], "0");
        // Cross-call cache: the second run proves nothing.
        let cc = t.rows.iter().find(|r| r[0] == "cross_call_cache").unwrap();
        assert!(cc[5].contains("proved 0"), "{cc:?}");
        // FK redetect rows exist and the incremental one flips edges.
        assert!(t.rows.iter().any(|r| r[1] == "full_rebuild"));
        assert!(t.rows.iter().any(|r| r[1] == "incremental_1_parent_delete"));
    }

    #[test]
    fn table_renders() {
        let t = d1_information(true).unwrap();
        let s = t.render();
        assert!(s.contains("D1"));
        assert!(s.lines().count() > 5);
    }

    /// SIGKILL target for [`e14_crash_recovery`]: a no-op unless the
    /// parent set `HIPPO_E14_CHILD`, in which case it never returns —
    /// it runs durable write traffic until the parent kills it.
    #[test]
    fn e14_child_entry() {
        e14_child_from_env();
    }

    /// SIGKILL target for [`e15_replication_failover`]: a no-op unless
    /// the parent set `HIPPO_E15_CHILD`, in which case it never
    /// returns — it serves replication and runs durable write traffic
    /// until the parent kills it.
    #[test]
    fn e15_child_entry() {
        e15_child_from_env();
    }

    #[test]
    fn e15_replication_failover_invariants_hold_quick() {
        // The failover, fencing, chaos and catch-up invariants are
        // enforced inside the experiment: Ok means promotion bumped
        // the term, promoted answers matched the serial oracle on the
        // applied prefix, no acked write was lost, fenced frames never
        // touched state, and every rejoin rode the incremental path.
        let t = e15_replication_failover(true).unwrap();
        assert_eq!(t.rows.iter().filter(|r| r[0] == "failover").count(), 1);
        assert_eq!(t.rows.iter().filter(|r| r[0] == "fencing").count(), 1);
        assert_eq!(t.rows.iter().filter(|r| r[0] == "chaos").count(), 2);
        assert_eq!(t.rows.iter().filter(|r| r[0] == "catchup").count(), 3);
        assert_eq!(t.rows.iter().filter(|r| r[0] == "lag").count(), 1);
        let failover = t.rows.iter().find(|r| r[0] == "failover").unwrap();
        assert!(failover[2].contains("term=2"), "{failover:?}");
        assert_eq!(failover[5], "prefix+oracle ok");
    }

    #[test]
    fn e14_crash_recovery_invariants_hold_quick() {
        // Kill-recovery, prefix and oracle invariants are enforced
        // inside the experiment: Ok means they held for every fault
        // point, every SIGKILL round, and every batch size.
        let t = e14_crash_recovery(true).unwrap();
        assert_eq!(
            t.rows.iter().filter(|r| r[0] == "fault").count(),
            4,
            "one row per durability fault point"
        );
        assert!(t.rows.iter().filter(|r| r[0] == "sigkill").count() >= 3);
        // Acceptance: group commit at batch 16 beats per-op fsync 2x.
        let b16 = t
            .rows
            .iter()
            .find(|r| r[1] == "batch=16")
            .expect("batch=16 row");
        let speedup: f64 = b16[6].split('x').next().unwrap().parse().unwrap();
        assert!(
            speedup >= 2.0,
            "group commit must amortize: {speedup}x ({b16:?})"
        );
    }

    #[test]
    fn e13_chaos_invariants_hold_quick() {
        // The invariants (oracle replay, structured-failures-only, no
        // deadlock, drain) are enforced inside the experiment: Ok means
        // they all held for every scenario.
        let t = e13_chaos_service(true).unwrap();
        assert_eq!(t.rows.len(), 3);
        let overload = t.rows.iter().find(|r| r[0] == "overload").unwrap();
        assert_ne!(
            overload[3], "0",
            "overload scenario must shed: {overload:?}"
        );
        let chaos = t.rows.iter().find(|r| r[0] == "chaos").unwrap();
        assert_ne!(chaos[7], "0", "chaos writer panic must recover: {chaos:?}");
    }
}
