//! # hippo-bench
//!
//! Experiment harness and Criterion benchmarks reproducing the Hippo
//! paper's demonstration measurements. See [`experiments`] for the
//! per-table/figure implementations and DESIGN.md for the experiment
//! index; the `harness` binary prints every table.

pub mod experiments;
