//! Service-level counters, mirroring the one-line `Display` style of
//! the core crate's `DetectStats` / `AnswerStats`.

use std::fmt;
use std::time::Duration;

/// A point-in-time snapshot of one [`crate::Engine`]'s service
/// counters (all monotonic except the occupancy gauges).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Epochs published so far, including the initial one.
    pub epochs_published: u64,
    /// Write transactions applied and published.
    pub writes_applied: u64,
    /// Requests admitted (immediately or after queueing).
    pub requests_admitted: u64,
    /// Requests shed at admission with `Overloaded`.
    pub requests_shed: u64,
    /// Writes that failed (panic, injected fault or budget trip)
    /// without publishing — the writer recovered and the previous
    /// epoch stayed live.
    pub writer_recoveries: u64,
    /// WAL frames durably committed (commit + abandoned-audit).
    pub wal_frames: u64,
    /// WAL fsyncs issued; `wal_frames / wal_fsyncs` is the realized
    /// group-commit batch factor.
    pub wal_fsyncs: u64,
    /// Snapshot checkpoints written (each truncates the absorbed log).
    pub checkpoints: u64,
    /// Checkpoint attempts that failed (non-fatal: the log survives).
    pub checkpoint_failures: u64,
    /// Commit groups holding more than one transaction.
    pub group_commits: u64,
    /// Transactions that committed inside such groups.
    pub grouped_writes: u64,
    /// Writes refused at the admission gate during drain.
    pub writes_abandoned: u64,
    /// Requests executing right now.
    pub active: usize,
    /// Requests waiting in the admission queue right now.
    pub queued: usize,
    /// Age of the currently published epoch.
    pub epoch_age: Duration,
    /// The service is draining: new requests get `Shutdown`.
    pub draining: bool,
    /// The engine writes a WAL (durability attached).
    pub durable: bool,
}

impl fmt::Display for ServiceStats {
    /// One-line report in the `DetectStats`/`AnswerStats` family
    /// style: counters first, gauges after, flags last.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epochs_published={} writes_applied={} requests_admitted={} \
             requests_shed={} writer_recoveries={} active={} queued={} \
             epoch_age={:.3}ms",
            self.epochs_published,
            self.writes_applied,
            self.requests_admitted,
            self.requests_shed,
            self.writer_recoveries,
            self.active,
            self.queued,
            self.epoch_age.as_secs_f64() * 1e3,
        )?;
        if self.durable {
            write!(
                f,
                " wal_frames={} wal_fsyncs={} checkpoints={} checkpoint_failures={} \
                 group_commits={} grouped_writes={} writes_abandoned={}",
                self.wal_frames,
                self.wal_fsyncs,
                self.checkpoints,
                self.checkpoint_failures,
                self.group_commits,
                self.grouped_writes,
                self.writes_abandoned,
            )?;
        }
        if self.draining {
            write!(f, " draining")?;
        }
        Ok(())
    }
}

/// A [`crate::Session`]'s view of its pinned epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStats {
    /// Id of the epoch this session reads from.
    pub pinned_epoch: u64,
    /// Write transactions folded into the pinned epoch.
    pub pinned_writes: u64,
    /// How long ago the pinned epoch was published (grows until the
    /// session refreshes, even as newer epochs land).
    pub pinned_age: Duration,
    /// Requests this session has completed (any outcome).
    pub requests: u64,
}

impl fmt::Display for SessionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pinned_epoch={} pinned_writes={} pinned_age={:.3}ms requests={}",
            self.pinned_epoch,
            self.pinned_writes,
            self.pinned_age.as_secs_f64() * 1e3,
            self.requests,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_stats_one_line_report() {
        let s = ServiceStats {
            epochs_published: 3,
            writes_applied: 2,
            requests_admitted: 40,
            requests_shed: 5,
            writer_recoveries: 1,
            active: 2,
            queued: 1,
            epoch_age: Duration::from_micros(1500),
            ..ServiceStats::default()
        };
        let line = s.to_string();
        assert!(line.contains("epochs_published=3"), "{line}");
        assert!(line.contains("requests_shed=5"), "{line}");
        assert!(line.contains("writer_recoveries=1"), "{line}");
        assert!(line.contains("epoch_age=1.500ms"), "{line}");
        assert!(!line.contains("draining"), "{line}");
        assert!(
            !line.contains("wal_frames"),
            "durability counters hidden on non-durable engines: {line}"
        );
        let d = ServiceStats {
            draining: true,
            ..s.clone()
        };
        assert!(d.to_string().ends_with("draining"));
        let dur = ServiceStats {
            durable: true,
            wal_frames: 12,
            wal_fsyncs: 4,
            checkpoints: 1,
            group_commits: 2,
            grouped_writes: 9,
            writes_abandoned: 3,
            ..s
        };
        let line = dur.to_string();
        assert!(line.contains("wal_frames=12"), "{line}");
        assert!(line.contains("wal_fsyncs=4"), "{line}");
        assert!(line.contains("checkpoints=1"), "{line}");
        assert!(line.contains("group_commits=2"), "{line}");
        assert!(line.contains("writes_abandoned=3"), "{line}");
    }

    #[test]
    fn session_stats_one_line_report() {
        let s = SessionStats {
            pinned_epoch: 7,
            pinned_writes: 6,
            pinned_age: Duration::from_millis(2),
            requests: 11,
        };
        let line = s.to_string();
        assert!(line.contains("pinned_epoch=7"), "{line}");
        assert!(line.contains("pinned_age=2.000ms"), "{line}");
        assert!(line.contains("requests=11"), "{line}");
    }
}
