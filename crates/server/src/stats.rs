//! Service-level counters, mirroring the one-line `Display` style of
//! the core crate's `DetectStats` / `AnswerStats`.

use std::fmt;
use std::time::Duration;

/// A point-in-time snapshot of one [`crate::Engine`]'s service
/// counters (all monotonic except the occupancy gauges).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Epochs published so far, including the initial one.
    pub epochs_published: u64,
    /// Write transactions applied and published.
    pub writes_applied: u64,
    /// Requests admitted (immediately or after queueing).
    pub requests_admitted: u64,
    /// Requests shed at admission with `Overloaded`.
    pub requests_shed: u64,
    /// Writes that failed (panic, injected fault or budget trip)
    /// without publishing — the writer recovered and the previous
    /// epoch stayed live.
    pub writer_recoveries: u64,
    /// WAL frames durably committed (commit + abandoned-audit).
    pub wal_frames: u64,
    /// WAL fsyncs issued; `wal_frames / wal_fsyncs` is the realized
    /// group-commit batch factor.
    pub wal_fsyncs: u64,
    /// Snapshot checkpoints written (each truncates the absorbed log).
    pub checkpoints: u64,
    /// Checkpoint attempts that failed (non-fatal: the log survives).
    pub checkpoint_failures: u64,
    /// Commit groups holding more than one transaction.
    pub group_commits: u64,
    /// Transactions that committed inside such groups.
    pub grouped_writes: u64,
    /// Writes refused at the admission gate during drain.
    pub writes_abandoned: u64,
    /// Requests executing right now.
    pub active: usize,
    /// Requests waiting in the admission queue right now.
    pub queued: usize,
    /// Age of the currently published epoch.
    pub epoch_age: Duration,
    /// The service is draining: new requests get `Shutdown`.
    pub draining: bool,
    /// The engine writes a WAL (durability attached).
    pub durable: bool,
}

impl fmt::Display for ServiceStats {
    /// One-line report in the `DetectStats`/`AnswerStats` family
    /// style: counters first, gauges after, flags last.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epochs_published={} writes_applied={} requests_admitted={} \
             requests_shed={} writer_recoveries={} active={} queued={} \
             epoch_age={:.3}ms",
            self.epochs_published,
            self.writes_applied,
            self.requests_admitted,
            self.requests_shed,
            self.writer_recoveries,
            self.active,
            self.queued,
            self.epoch_age.as_secs_f64() * 1e3,
        )?;
        if self.durable {
            write!(
                f,
                " wal_frames={} wal_fsyncs={} checkpoints={} checkpoint_failures={} \
                 group_commits={} grouped_writes={} writes_abandoned={}",
                self.wal_frames,
                self.wal_fsyncs,
                self.checkpoints,
                self.checkpoint_failures,
                self.group_commits,
                self.grouped_writes,
                self.writes_abandoned,
            )?;
        }
        if self.draining {
            write!(f, " draining")?;
        }
        Ok(())
    }
}

/// A [`crate::Session`]'s view of its pinned epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStats {
    /// Id of the epoch this session reads from.
    pub pinned_epoch: u64,
    /// Write transactions folded into the pinned epoch.
    pub pinned_writes: u64,
    /// How long ago the pinned epoch was published (grows until the
    /// session refreshes, even as newer epochs land).
    pub pinned_age: Duration,
    /// Requests this session has completed (any outcome).
    pub requests: u64,
}

impl fmt::Display for SessionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pinned_epoch={} pinned_writes={} pinned_age={:.3}ms requests={}",
            self.pinned_epoch,
            self.pinned_writes,
            self.pinned_age.as_secs_f64() * 1e3,
            self.requests,
        )
    }
}

/// Primary-side replication counters (see
/// [`crate::Engine::replication_stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// The fencing term this primary stamps on every message.
    pub term: u64,
    /// Highest committed LSN (the shipping horizon).
    pub last_lsn: u64,
    /// Live attached replicas.
    pub replicas: usize,
    /// Minimum acked LSN across live replicas (0 with none attached):
    /// everything at or below it is applied everywhere.
    pub min_acked_lsn: u64,
    /// Frames enqueued to feeds (counted per replica).
    pub frames_shipped: u64,
    /// Full catalog snapshots served (fresh or unrecoverably-behind
    /// replicas).
    pub snapshots_shipped: u64,
    /// Resyncs served from the log suffix instead of a snapshot.
    pub incremental_syncs: u64,
    /// Acks received from replicas.
    pub acks_received: u64,
    /// Heartbeats sent on idle streams.
    pub heartbeats_sent: u64,
    /// Feeds stopped because a higher term fenced this primary.
    pub feeds_fenced: u64,
    /// Feeds dropped (transport died or replica went away).
    pub feeds_dropped: u64,
}

impl fmt::Display for ReplicationStats {
    /// One-line report in the `ServiceStats` family style.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "term={} last_lsn={} replicas={} min_acked_lsn={} frames_shipped={} \
             snapshots_shipped={} incremental_syncs={} acks_received={} \
             heartbeats_sent={} feeds_fenced={} feeds_dropped={}",
            self.term,
            self.last_lsn,
            self.replicas,
            self.min_acked_lsn,
            self.frames_shipped,
            self.snapshots_shipped,
            self.incremental_syncs,
            self.acks_received,
            self.heartbeats_sent,
            self.feeds_fenced,
            self.feeds_dropped,
        )
    }
}

/// How far a [`crate::replicate::Replica`] trails its primary, as
/// surfaced on every replica read path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Staleness {
    /// The fencing term the replica follows (0 = never contacted).
    pub term: u64,
    /// Highest LSN the replica has applied.
    pub applied_lsn: u64,
    /// The primary's last known commit horizon.
    pub primary_lsn: u64,
    /// `primary_lsn - applied_lsn`: committed frames not yet applied
    /// here.
    pub lsn_lag: u64,
    /// Time since the replica last knew it was caught up (~0 while
    /// tracking the primary; grows while behind *or* partitioned).
    pub lag_time: Duration,
}

impl fmt::Display for Staleness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "term={} applied_lsn={} primary_lsn={} lsn_lag={} lag_time={:.3}ms",
            self.term,
            self.applied_lsn,
            self.primary_lsn,
            self.lsn_lag,
            self.lag_time.as_secs_f64() * 1e3,
        )
    }
}

/// Replica-side counters (see [`crate::replicate::Replica::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStats {
    /// The fencing term the replica follows.
    pub term: u64,
    /// Highest LSN applied.
    pub applied_lsn: u64,
    /// The primary's last known horizon.
    pub primary_lsn: u64,
    /// Committed frames not yet applied here.
    pub lsn_lag: u64,
    /// Time since last known caught-up.
    pub lag_time: Duration,
    /// Epochs this replica has published from replayed state.
    pub epochs_published: u64,
    /// Commit frames applied.
    pub frames_applied: u64,
    /// Individual ops inside those frames.
    pub ops_applied: u64,
    /// Messages rejected for carrying a stale (fenced) term.
    pub frames_fenced: u64,
    /// Messages lost to corruption (transport crc or decode).
    pub msgs_corrupt: u64,
    /// LSN gaps detected (each triggers a resync, never a skip).
    pub gaps_detected: u64,
    /// Resync `Hello`s sent (gaps, corruption, or silent lag).
    pub resync_requests: u64,
    /// Full snapshots loaded.
    pub snapshots_loaded: u64,
    /// Transports that died and were detached.
    pub disconnects: u64,
    /// Live attached sources.
    pub sources: usize,
    /// The replica has replicated state and can serve sessions.
    pub has_state: bool,
    /// A divergence/apply error broke this replica (it serves its last
    /// good epoch but refuses promotion).
    pub broken: bool,
}

impl fmt::Display for ReplicaStats {
    /// One-line report: position first, counters after, flags last.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "term={} applied_lsn={} primary_lsn={} lsn_lag={} lag_time={:.3}ms \
             epochs_published={} frames_applied={} ops_applied={} frames_fenced={} \
             msgs_corrupt={} gaps_detected={} resync_requests={} snapshots_loaded={} \
             disconnects={} sources={}",
            self.term,
            self.applied_lsn,
            self.primary_lsn,
            self.lsn_lag,
            self.lag_time.as_secs_f64() * 1e3,
            self.epochs_published,
            self.frames_applied,
            self.ops_applied,
            self.frames_fenced,
            self.msgs_corrupt,
            self.gaps_detected,
            self.resync_requests,
            self.snapshots_loaded,
            self.disconnects,
            self.sources,
        )?;
        if !self.has_state {
            write!(f, " no_state")?;
        }
        if self.broken {
            write!(f, " BROKEN")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_stats_one_line_report() {
        let s = ServiceStats {
            epochs_published: 3,
            writes_applied: 2,
            requests_admitted: 40,
            requests_shed: 5,
            writer_recoveries: 1,
            active: 2,
            queued: 1,
            epoch_age: Duration::from_micros(1500),
            ..ServiceStats::default()
        };
        let line = s.to_string();
        assert!(line.contains("epochs_published=3"), "{line}");
        assert!(line.contains("requests_shed=5"), "{line}");
        assert!(line.contains("writer_recoveries=1"), "{line}");
        assert!(line.contains("epoch_age=1.500ms"), "{line}");
        assert!(!line.contains("draining"), "{line}");
        assert!(
            !line.contains("wal_frames"),
            "durability counters hidden on non-durable engines: {line}"
        );
        let d = ServiceStats {
            draining: true,
            ..s.clone()
        };
        assert!(d.to_string().ends_with("draining"));
        let dur = ServiceStats {
            durable: true,
            wal_frames: 12,
            wal_fsyncs: 4,
            checkpoints: 1,
            group_commits: 2,
            grouped_writes: 9,
            writes_abandoned: 3,
            ..s
        };
        let line = dur.to_string();
        assert!(line.contains("wal_frames=12"), "{line}");
        assert!(line.contains("wal_fsyncs=4"), "{line}");
        assert!(line.contains("checkpoints=1"), "{line}");
        assert!(line.contains("group_commits=2"), "{line}");
        assert!(line.contains("writes_abandoned=3"), "{line}");
    }

    #[test]
    fn replication_stats_one_line_reports() {
        let p = ReplicationStats {
            term: 2,
            last_lsn: 40,
            replicas: 3,
            min_acked_lsn: 38,
            frames_shipped: 120,
            snapshots_shipped: 3,
            ..ReplicationStats::default()
        };
        let line = p.to_string();
        assert!(line.contains("term=2"), "{line}");
        assert!(line.contains("min_acked_lsn=38"), "{line}");
        assert!(!line.contains('\n'), "{line}");

        let st = Staleness {
            term: 2,
            applied_lsn: 38,
            primary_lsn: 40,
            lsn_lag: 2,
            lag_time: Duration::from_millis(5),
        };
        assert!(st.to_string().contains("lsn_lag=2"));

        let r = ReplicaStats {
            term: 2,
            applied_lsn: 38,
            primary_lsn: 40,
            lsn_lag: 2,
            lag_time: Duration::from_millis(5),
            epochs_published: 9,
            frames_applied: 38,
            ops_applied: 70,
            frames_fenced: 1,
            msgs_corrupt: 0,
            gaps_detected: 0,
            resync_requests: 0,
            snapshots_loaded: 1,
            disconnects: 0,
            sources: 1,
            has_state: true,
            broken: false,
        };
        let line = r.to_string();
        assert!(line.contains("frames_applied=38"), "{line}");
        assert!(!line.contains("no_state"), "{line}");
        assert!(!line.contains("BROKEN"), "{line}");
        let b = ReplicaStats {
            has_state: false,
            broken: true,
            ..r
        };
        let line = b.to_string();
        assert!(line.ends_with("no_state BROKEN"), "{line}");
    }

    #[test]
    fn session_stats_one_line_report() {
        let s = SessionStats {
            pinned_epoch: 7,
            pinned_writes: 6,
            pinned_age: Duration::from_millis(2),
            requests: 11,
        };
        let line = s.to_string();
        assert!(line.contains("pinned_epoch=7"), "{line}");
        assert!(line.contains("pinned_age=2.000ms"), "{line}");
        assert!(line.contains("requests=11"), "{line}");
    }
}
