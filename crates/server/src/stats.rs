//! Service-level counters, mirroring the one-line `Display` style of
//! the core crate's `DetectStats` / `AnswerStats`.

use std::fmt;
use std::time::Duration;

/// A point-in-time snapshot of one [`crate::Engine`]'s service
/// counters (all monotonic except the occupancy gauges).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Epochs published so far, including the initial one.
    pub epochs_published: u64,
    /// Write transactions applied and published.
    pub writes_applied: u64,
    /// Requests admitted (immediately or after queueing).
    pub requests_admitted: u64,
    /// Requests shed at admission with `Overloaded`.
    pub requests_shed: u64,
    /// Writes that failed (panic, injected fault or budget trip)
    /// without publishing — the writer recovered and the previous
    /// epoch stayed live.
    pub writer_recoveries: u64,
    /// Requests executing right now.
    pub active: usize,
    /// Requests waiting in the admission queue right now.
    pub queued: usize,
    /// Age of the currently published epoch.
    pub epoch_age: Duration,
    /// The service is draining: new requests get `Shutdown`.
    pub draining: bool,
}

impl fmt::Display for ServiceStats {
    /// One-line report in the `DetectStats`/`AnswerStats` family
    /// style: counters first, gauges after, flags last.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epochs_published={} writes_applied={} requests_admitted={} \
             requests_shed={} writer_recoveries={} active={} queued={} \
             epoch_age={:.3}ms",
            self.epochs_published,
            self.writes_applied,
            self.requests_admitted,
            self.requests_shed,
            self.writer_recoveries,
            self.active,
            self.queued,
            self.epoch_age.as_secs_f64() * 1e3,
        )?;
        if self.draining {
            write!(f, " draining")?;
        }
        Ok(())
    }
}

/// A [`crate::Session`]'s view of its pinned epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStats {
    /// Id of the epoch this session reads from.
    pub pinned_epoch: u64,
    /// Write transactions folded into the pinned epoch.
    pub pinned_writes: u64,
    /// How long ago the pinned epoch was published (grows until the
    /// session refreshes, even as newer epochs land).
    pub pinned_age: Duration,
    /// Requests this session has completed (any outcome).
    pub requests: u64,
}

impl fmt::Display for SessionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pinned_epoch={} pinned_writes={} pinned_age={:.3}ms requests={}",
            self.pinned_epoch,
            self.pinned_writes,
            self.pinned_age.as_secs_f64() * 1e3,
            self.requests,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_stats_one_line_report() {
        let s = ServiceStats {
            epochs_published: 3,
            writes_applied: 2,
            requests_admitted: 40,
            requests_shed: 5,
            writer_recoveries: 1,
            active: 2,
            queued: 1,
            epoch_age: Duration::from_micros(1500),
            draining: false,
        };
        let line = s.to_string();
        assert!(line.contains("epochs_published=3"), "{line}");
        assert!(line.contains("requests_shed=5"), "{line}");
        assert!(line.contains("writer_recoveries=1"), "{line}");
        assert!(line.contains("epoch_age=1.500ms"), "{line}");
        assert!(!line.contains("draining"), "{line}");
        let d = ServiceStats {
            draining: true,
            ..s
        };
        assert!(d.to_string().ends_with("draining"));
    }

    #[test]
    fn session_stats_one_line_report() {
        let s = SessionStats {
            pinned_epoch: 7,
            pinned_writes: 6,
            pinned_age: Duration::from_millis(2),
            requests: 11,
        };
        let line = s.to_string();
        assert!(line.contains("pinned_epoch=7"), "{line}");
        assert!(line.contains("pinned_age=2.000ms"), "{line}");
        assert!(line.contains("requests=11"), "{line}");
    }
}
