//! Concurrent CQA service layer for the Hippo system: **epoch-published
//! snapshots** behind a single-writer/many-reader protocol, with
//! bounded admission, per-request deadline propagation, client-side
//! retry and graceful drain. Library-first: [`Engine`] and [`Session`]
//! are plain types — no network, no executor — so the same protocol
//! can sit under any transport.
//!
//! # The epoch protocol
//!
//! Every published epoch is an `Arc<`[`Epoch`]`>` bundling a
//! [`FrozenHippo`] — the database snapshot, the conflict hypergraph
//! and the verdict cache, frozen together by [`Hippo::freeze`] — so a
//! reader's entire request runs against one self-consistent state
//! with **zero locks** on the data path. Writes serialize through one
//! writer slot and only ever publish *after* full success:
//!
//! ```text
//!                 ┌───────────── single writer (Mutex) ─────────────┐
//! write(ops) ──▶  │ apply ops ──▶ redetect (◆ governed, panics      │
//!                 │ (recorded)     contained) ──▶ freeze()          │
//!                 │    │ Err / panic: writer_recoveries += 1,       │
//!                 │    │ state poisoned → next redetect rebuilds;   │
//!                 │    ▼ NOTHING PUBLISHED                          │
//!                 │ publish: swap RwLock<Arc<Epoch>> ── epoch n+1   │
//!                 └──────────────────────────┬──────────────────────┘
//!                                            ▼
//!            readers: Session::pin ──▶ Arc<Epoch n> ── lock-free
//!            query / consistent_answers on the pinned epoch
//! ```
//!
//! A panicking or budget-tripped write therefore **never** replaces
//! the published epoch — readers keep answering from the last good
//! one, and the writer stays usable (the next successful write
//! reconciles from scratch and publishes everything).
//!
//! # Admission and overload
//!
//! Every request — read, CQA run or write — passes the bounded
//! admission gate before touching data:
//!
//! ```text
//!            ┌─ admission ────────────────────────────────┐
//! request ──▶│ active < max_active ────────────▶ RUN      │──▶ permit
//!            │ else queued < max_queue ──▶ WAIT (deadline-│    (RAII)
//!            │      capped; drain wakes ▶ Shutdown)       │
//!            │ else ──▶ SHED: Overloaded { retry_after }  │
//!            │ draining ──▶ Shutdown                      │
//!            └────────────────────────────────────────────┘
//! ```
//!
//! Shedding is immediate (the queue is bounded, so overload degrades
//! into fast structured rejections, not unbounded latency), and the
//! request's deadline keeps ticking while it queues: whatever deadline
//! remains after admission is what the execution stages get, via the
//! engine's cooperative [`Budget`](hippo_engine::Budget). Clients
//! wrap calls in a [`RetryPolicy`] that retries only transient
//! `Overloaded`/`Cancelled` outcomes, with jittered exponential
//! backoff floored at the server's `retry_after` hint.
//!
//! [`Engine::drain`] flips the gate to `Shutdown` for new arrivals,
//! wakes every queued waiter, and blocks until in-flight requests
//! finish (or trip their own budgets) — then the process can exit
//! with nothing half-done.

mod admission;
mod retry;
mod stats;

pub use retry::RetryPolicy;
pub use stats::{ServiceStats, SessionStats};

use admission::Admission;
use hippo_cqa::budget::ConsistentAnswer;
use hippo_cqa::detect::DetectStats;
use hippo_cqa::hippo::{FrozenHippo, Hippo, HippoOptions};
use hippo_cqa::parallel::panic_message;
use hippo_cqa::query::SjudQuery;
use hippo_engine::{CancelHandle, EngineError, QueryResult, Row, TupleId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Service configuration. The defaults suit tests; production-ish
/// callers size `max_active` to core count and set a deadline.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Requests executing concurrently (readers and the writer alike);
    /// minimum 1.
    pub max_active: usize,
    /// Requests allowed to wait behind the active set; beyond this,
    /// arrivals are shed with `Overloaded`.
    pub max_queue: usize,
    /// The back-off hint attached to `Overloaded` rejections.
    pub retry_after: Duration,
    /// Default per-request deadline for sessions (covers queue wait
    /// *and* execution); `None` = ungoverned. Sessions can override
    /// per request via [`Session::set_deadline`].
    pub default_deadline: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_active: 4,
            max_queue: 8,
            retry_after: Duration::from_millis(2),
            default_deadline: None,
        }
    }
}

/// One published state of the service: an id, the frozen system, and
/// provenance. Readers hold epochs alive through `Arc`s; publishing a
/// new epoch never invalidates a pinned one.
#[derive(Debug)]
pub struct Epoch {
    id: u64,
    frozen: FrozenHippo,
    /// Write transactions folded into this epoch since startup.
    writes_applied: u64,
    published_at: Instant,
}

impl Epoch {
    /// Monotonic epoch id (0 = the startup epoch).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The frozen system: catalog snapshot + hypergraph + verdict
    /// cache.
    pub fn frozen(&self) -> &FrozenHippo {
        &self.frozen
    }

    /// Write transactions folded into this epoch since startup.
    pub fn writes_applied(&self) -> u64 {
        self.writes_applied
    }

    /// Time since this epoch was published.
    pub fn age(&self) -> Duration {
        self.published_at.elapsed()
    }
}

/// One recorded mutation inside a [`Engine::write`] transaction.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Insert rows into a table.
    Insert { table: String, rows: Vec<Row> },
    /// Delete tuples by id (unknown ids are skipped, matching
    /// [`Hippo::delete_tuples`]).
    Delete { table: String, tids: Vec<TupleId> },
    /// Update tuples in place (ids survive).
    Update {
        table: String,
        updates: Vec<(TupleId, Row)>,
    },
}

/// What a successful [`Engine::write`] published.
#[derive(Debug, Clone)]
pub struct WriteReceipt {
    /// The epoch this write became visible in.
    pub epoch: u64,
    /// The reconciliation's detection stats (incremental whenever
    /// every change since the last epoch was recorded).
    pub detect: DetectStats,
    /// Tuple ids assigned to inserted rows, in op order.
    pub inserted: Vec<TupleId>,
}

struct WriterState {
    hippo: Hippo,
    writes_applied: u64,
}

struct Shared {
    epoch: RwLock<Arc<Epoch>>,
    writer: Mutex<WriterState>,
    admission: Admission,
    config: EngineConfig,
    epochs_published: AtomicU64,
    writer_recoveries: AtomicU64,
}

/// The service engine: owns the single writer slot and the published
/// epoch pointer. Cheap to clone (all clones share one service);
/// `Send + Sync`, so clients are plain threads.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<Shared>,
}

// The service exists to be shared across client threads.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<Engine>();
    assert_sync_send::<Epoch>();
};

impl Engine {
    /// Start a service around a reconciled [`Hippo`], publishing epoch
    /// 0 immediately. Fails if the system has unreconciled changes
    /// (same rule as [`Hippo::freeze`]).
    pub fn new(hippo: Hippo, config: EngineConfig) -> Result<Engine, EngineError> {
        let frozen = hippo.freeze()?;
        let epoch = Arc::new(Epoch {
            id: 0,
            frozen,
            writes_applied: 0,
            published_at: Instant::now(),
        });
        let admission = Admission::new(config.max_active, config.max_queue, config.retry_after);
        Ok(Engine {
            shared: Arc::new(Shared {
                epoch: RwLock::new(epoch),
                writer: Mutex::new(WriterState {
                    hippo,
                    writes_applied: 0,
                }),
                admission,
                config,
                epochs_published: AtomicU64::new(1),
                writer_recoveries: AtomicU64::new(0),
            }),
        })
    }

    /// The currently published epoch (an `Arc` clone; the caller's
    /// copy stays valid across later publishes).
    pub fn current_epoch(&self) -> Arc<Epoch> {
        self.shared.epoch.read().unwrap().clone()
    }

    /// Open a reader session pinned to the current epoch.
    pub fn session(&self) -> Session {
        let epoch = self.current_epoch();
        let options = epoch.frozen.options.clone();
        Session {
            shared: Arc::clone(&self.shared),
            deadline: self.shared.config.default_deadline,
            options,
            epoch,
            requests: 0,
        }
    }

    /// Apply a write transaction through the serialized writer path
    /// and publish the resulting epoch. Concurrency-safe: writes
    /// serialize on the writer lock (after passing admission like any
    /// request), readers never block.
    ///
    /// On **any** failure — op validation, a governed redetect
    /// tripping its budget, an injected fault, or a panic inside
    /// reconciliation — nothing is published: readers keep the last
    /// good epoch, the writer state is poisoned so the next
    /// reconciliation rebuilds from scratch, and
    /// [`ServiceStats::writer_recoveries`] increments. Ops applied
    /// before the failure remain in the (unpublished) live state and
    /// become visible with the next successful write's epoch.
    pub fn write(&self, ops: Vec<WriteOp>) -> Result<WriteReceipt, EngineError> {
        let _permit = self.shared.admission.admit(None)?;
        let mut w = self.shared.writer.lock().unwrap();
        type Applied = (DetectStats, Vec<TupleId>);
        let applied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> Result<Applied, EngineError> {
                let mut inserted = Vec::new();
                for op in &ops {
                    match op {
                        WriteOp::Insert { table, rows } => {
                            inserted.extend(w.hippo.insert_tuples(table, rows.clone())?);
                        }
                        WriteOp::Delete { table, tids } => {
                            w.hippo.delete_tuples(table, tids)?;
                        }
                        WriteOp::Update { table, updates } => {
                            w.hippo.update_tuples(table, updates.clone())?;
                        }
                    }
                }
                let stats = w.hippo.redetect()?;
                Ok((stats, inserted))
            },
        ));
        match applied {
            Ok(Ok((detect, inserted))) => {
                let frozen = w.hippo.freeze()?;
                w.writes_applied += 1;
                let epoch = {
                    let mut cur = self.shared.epoch.write().unwrap();
                    let id = cur.id + 1;
                    *cur = Arc::new(Epoch {
                        id,
                        frozen,
                        writes_applied: w.writes_applied,
                        published_at: Instant::now(),
                    });
                    id
                };
                self.shared.epochs_published.fetch_add(1, Ordering::Relaxed);
                Ok(WriteReceipt {
                    epoch,
                    detect,
                    inserted,
                })
            }
            Ok(Err(e)) => {
                // Structured failure (validation, budget trip, injected
                // fault): `redetect`'s poison-on-entry already forces
                // the next reconciliation onto the full path.
                self.shared
                    .writer_recoveries
                    .fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
            Err(payload) => {
                // A panic may have interrupted op application itself,
                // leaving recorded state out of sync with the catalog —
                // poison explicitly so the next redetect rebuilds.
                let _ = w.hippo.db_mut();
                self.shared
                    .writer_recoveries
                    .fetch_add(1, Ordering::Relaxed);
                Err(EngineError::worker_panic(
                    "write",
                    0,
                    &panic_message(payload.as_ref()),
                ))
            }
        }
    }

    /// Replace the writer's governance/options (deadline, fault plan,
    /// thread count) for subsequent writes. This is how the chaos
    /// harness arms "writer panics mid-redetect".
    pub fn set_writer_options(&self, options: HippoOptions) {
        self.shared.writer.lock().unwrap().hippo.options = options;
    }

    /// Graceful shutdown: reject new requests with `Shutdown`, wake
    /// queued waiters into `Shutdown`, and block until every in-flight
    /// request has finished (or tripped its budget). Idempotent.
    pub fn drain(&self) {
        self.shared.admission.drain();
    }

    /// Has [`Engine::drain`] begun?
    pub fn is_draining(&self) -> bool {
        self.shared.admission.is_draining()
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let (active, queued) = self.shared.admission.occupancy();
        let epoch = self.current_epoch();
        ServiceStats {
            epochs_published: self.shared.epochs_published.load(Ordering::Relaxed),
            writes_applied: epoch.writes_applied,
            requests_admitted: self.shared.admission.admitted_count(),
            requests_shed: self.shared.admission.shed_count(),
            writer_recoveries: self.shared.writer_recoveries.load(Ordering::Relaxed),
            active,
            queued,
            epoch_age: epoch.age(),
            draining: self.is_draining(),
        }
    }
}

/// A reader session: pinned to one epoch until [`Session::refresh`],
/// with its own deadline and (armable) cancellation handle. Cheap —
/// one per client thread, or one per request, as the caller prefers.
///
/// Every data call runs admission → deadline-budgeted execution
/// against the pinned epoch's [`FrozenHippo`]; the live writer is
/// never touched.
pub struct Session {
    shared: Arc<Shared>,
    epoch: Arc<Epoch>,
    options: HippoOptions,
    deadline: Option<Duration>,
    requests: u64,
}

impl Session {
    /// The epoch this session reads from.
    pub fn epoch(&self) -> &Arc<Epoch> {
        &self.epoch
    }

    /// Re-pin to the latest published epoch (keeping this session's
    /// deadline, mode flags and armed cancellation).
    pub fn refresh(&mut self) {
        self.epoch = self.shared.epoch.read().unwrap().clone();
    }

    /// Override the per-request deadline (`None` = ungoverned). The
    /// deadline covers queue wait and execution together.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// Mutable access to the session's answer-mode options (KG/core
    /// filter/threads/degraded). Governance deadlines still come from
    /// [`Session::set_deadline`].
    pub fn options_mut(&mut self) -> &mut HippoOptions {
        &mut self.options
    }

    /// A handle that cancels this session's in-flight (or next)
    /// request from another thread. Sticky until
    /// [`CancelHandle::reset`].
    pub fn cancel_handle(&mut self) -> CancelHandle {
        self.options.cancel_handle()
    }

    /// This session's view of its pinned epoch.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            pinned_epoch: self.epoch.id,
            pinned_writes: self.epoch.writes_applied,
            pinned_age: self.epoch.age(),
            requests: self.requests,
        }
    }

    /// Admission + remaining-deadline accounting shared by the data
    /// calls. Returns the request's effective options (deadline
    /// adjusted for time spent queueing).
    fn admit(
        &self,
        arrival: Instant,
    ) -> Result<(admission::Permit<'_>, HippoOptions), EngineError> {
        let absolute = self.deadline.map(|d| arrival + d);
        let permit = self.shared.admission.admit(absolute)?;
        let mut options = self.options.clone();
        options.governance.deadline = match self.deadline {
            None => None,
            Some(d) => {
                let remaining = d.saturating_sub(arrival.elapsed());
                if remaining.is_zero() {
                    return Err(EngineError::budget(
                        "admission",
                        arrival.elapsed().as_micros() as u64,
                        d.as_micros() as u64,
                    ));
                }
                Some(remaining)
            }
        };
        Ok((permit, options))
    }

    /// Run a plain (non-CQA) SQL `SELECT` against the pinned epoch.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult, EngineError> {
        let arrival = Instant::now();
        self.requests += 1;
        let (_permit, options) = self.admit(arrival)?;
        let gov = options.governance();
        self.epoch.frozen.query_governed(sql, gov.budget_ref())
    }

    /// Compute consistent answers on the pinned epoch (sorted rows).
    pub fn consistent_answers(&mut self, query: &SjudQuery) -> Result<Vec<Row>, EngineError> {
        Ok(self.consistent_answers_governed(query)?.rows)
    }

    /// The governed CQA entry point: admission, deadline propagation,
    /// then the epoch's full answer pipeline with this session's mode
    /// flags. Completeness semantics are exactly
    /// [`Hippo::consistent_answers_governed`]'s.
    pub fn consistent_answers_governed(
        &mut self,
        query: &SjudQuery,
    ) -> Result<ConsistentAnswer, EngineError> {
        let arrival = Instant::now();
        self.requests += 1;
        let (_permit, options) = self.admit(arrival)?;
        self.epoch.frozen.consistent_answers_with(query, &options)
    }
}
