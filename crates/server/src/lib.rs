//! Concurrent CQA service layer for the Hippo system: **epoch-published
//! snapshots** behind a single-writer/many-reader protocol, with
//! bounded admission, per-request deadline propagation, client-side
//! retry and graceful drain. Library-first: [`Engine`] and [`Session`]
//! are plain types — no network, no executor — so the same protocol
//! can sit under any transport.
//!
//! # The epoch protocol
//!
//! Every published epoch is an `Arc<`[`Epoch`]`>` bundling a
//! [`FrozenHippo`] — the database snapshot, the conflict hypergraph
//! and the verdict cache, frozen together by [`Hippo::freeze`] — so a
//! reader's entire request runs against one self-consistent state
//! with **zero locks** on the data path. Writes serialize through one
//! writer slot and only ever publish *after* full success:
//!
//! ```text
//!                 ┌───────────── single writer (Mutex) ─────────────┐
//! write(ops) ──▶  │ apply ops ──▶ redetect (◆ governed, panics      │
//!                 │ (recorded)     contained) ──▶ freeze()          │
//!                 │    │ Err / panic: writer_recoveries += 1,       │
//!                 │    │ state poisoned → next redetect rebuilds;   │
//!                 │    ▼ NOTHING PUBLISHED                          │
//!                 │ publish: swap RwLock<Arc<Epoch>> ── epoch n+1   │
//!                 └──────────────────────────┬──────────────────────┘
//!                                            ▼
//!            readers: Session::pin ──▶ Arc<Epoch n> ── lock-free
//!            query / consistent_answers on the pinned epoch
//! ```
//!
//! A panicking or budget-tripped write therefore **never** replaces
//! the published epoch — readers keep answering from the last good
//! one, and the writer stays usable (the next successful write
//! reconciles from scratch and publishes everything).
//!
//! # Admission and overload
//!
//! Every request — read, CQA run or write — passes the bounded
//! admission gate before touching data:
//!
//! ```text
//!            ┌─ admission ────────────────────────────────┐
//! request ──▶│ active < max_active ────────────▶ RUN      │──▶ permit
//!            │ else queued < max_queue ──▶ WAIT (deadline-│    (RAII)
//!            │      capped; drain wakes ▶ Shutdown)       │
//!            │ else ──▶ SHED: Overloaded { retry_after }  │
//!            │ draining ──▶ Shutdown                      │
//!            └────────────────────────────────────────────┘
//! ```
//!
//! Shedding is immediate (the queue is bounded, so overload degrades
//! into fast structured rejections, not unbounded latency), and the
//! request's deadline keeps ticking while it queues: whatever deadline
//! remains after admission is what the execution stages get, via the
//! engine's cooperative [`Budget`](hippo_engine::Budget). Clients
//! wrap calls in a [`RetryPolicy`] that retries only transient
//! `Overloaded`/`Cancelled` outcomes, with jittered exponential
//! backoff floored at the server's `retry_after` hint.
//!
//! [`Engine::drain`] flips the gate to `Shutdown` for new arrivals,
//! wakes every queued waiter, and blocks until in-flight requests
//! finish (or trip their own budgets) — then the process can exit
//! with nothing half-done. It returns the number of writes refused at
//! the gate; on a durable engine those are logged as abandoned-audit
//! frames before drain returns, so a lossy shutdown leaves evidence.
//!
//! # Durability (optional)
//!
//! [`Engine::new_durable`] adds a checksummed write-ahead op log and
//! snapshot checkpoints under a caller-owned directory (held exclusive
//! by an advisory [`DirLock`] for the engine's lifetime);
//! [`Engine::recover`] rebuilds the exact pre-crash published state
//! from them. The state machine:
//!
//! ```text
//! write:      apply ops ─▶ redetect ─▶ freeze ─▶ WAL append ─▶ fsync ─▶ publish
//!             (group commit: whole queue drains into N frames, ONE fsync,
//!              one redetect/freeze, one epoch swap — the fsync is the
//!              commit point: unsynced frames are truncated, never replayed)
//!
//! checkpoint: catalog ─▶ tmp file ─▶ fsync ─▶ rename ─▶ dir fsync ─▶ truncate log
//!             (crash-atomic; replay filters lsn ≤ checkpoint, so a crash
//!              between rename and truncate double-applies nothing)
//!
//! recover:    lock dir ─▶ load checkpoint ─▶ replay committed log suffix
//!             (torn tail truncated) ─▶ full conflict re-detection ─▶
//!             publish epoch 1
//! ```
//!
//! Failed durable writes never ride along: the writer is rebuilt from
//! the published epoch's catalog, so the live state always equals
//! "checkpoint + committed log" exactly. (Non-durable engines keep the
//! cheaper poison-and-ride-along recovery, where a failed write's
//! partially applied ops become visible with the next success.)
//! Conflict state is derived data and never logged — recovery recomputes
//! it, so a stale verdict cannot survive a crash.
//!
//! # Replication and failover
//!
//! A durable engine ships its committed WAL frames to any number of
//! [`Replica`]s over a [`Transport`] (in-process channel or TCP —
//! every message rides the same crc-checked frame envelope as the log
//! itself). The ship point sits strictly after the group-commit fsync:
//! a replica can only ever see frames the primary is committed to.
//! Replicas replay with crash-recovery's discipline (contiguous LSNs,
//! verified tuple ids, abandoned-audit frames skipped), publish each
//! applied batch as a fresh epoch, and serve reads/CQA with surfaced
//! staleness; writes are refused with a structured `NotPrimary` error.
//!
//! ```text
//!                         PRIMARY (term T)
//!   write ─▶ fsync ─▶ publish ─▶ hub.ship ──▶ feeder ──▶ transport ──┐
//!                        (per-replica acked LSNs ◀── Ack{T, lsn} ◀─) │
//!                                                                    ▼
//!   REPLICA states:                                            Frames{T,…}
//!
//!      ┌─────────┐ Hello{needs_snapshot}  ┌──────────┐  lsn = applied+1
//!      │ EMPTY   │ ──────────────────────▶│ SYNCING  │─────────────────┐
//!      └─────────┘        Snapshot{T,lsn} └──────────┘ apply ▶ publish │
//!           ▲                                  ▲                       ▼
//!           │              gap / corrupt /     │ Hello{applied}  ┌───────────┐
//!           │              silent lag ─────────┴─────────────────│ FOLLOWING │
//!           │                                                    └─────┬─────┘
//!           │ msg.term < T′: reject + Ack{T′}  (fencing)               │ promote()
//!           │                                                          ▼
//!      zombie ex-primary (term T) ◀── Ack{T′} tells it it's fenced ┌─────────┐
//!                                                                  │ PRIMARY │
//!                                                                  │ term T′ │
//!                                                                  │  = T+1  │
//!                                                                  └─────────┘
//! ```
//!
//! [`Replica::promote`] finishes replaying every received committed
//! frame, bumps the fencing term, and stands up a fresh [`Engine`];
//! every message carries its sender's term, so a zombie ex-primary's
//! frames are rejected by replicas that follow the new primary (and
//! the zombie learns it is fenced from the higher term in the `Ack`s
//! it gets back). The four `repl:*` fault points (see
//! `hippo_cqa::budget`) inject drops, corruption, delays and
//! disconnects on the ship path to chaos-test all of this.
//!
//! [`Replica`]: replicate::Replica
//! [`Replica::promote`]: replicate::Replica::promote
//! [`Transport`]: transport::Transport

mod admission;
pub mod checkpoint;
pub mod recover;
pub mod replicate;
mod retry;
mod stats;
pub mod transport;
pub mod wal;

pub use recover::RecoveryReport;
pub use replicate::{PromotionReport, Replica, ReplicaConfig, ReplicaSession};
pub use retry::RetryPolicy;
pub use stats::{ReplicaStats, ReplicationStats, ServiceStats, SessionStats, Staleness};
pub use transport::{ChannelTransport, TcpTransport, Transport};
pub use wal::DirLock;

use admission::Admission;
use checkpoint::{read_checkpoint, write_checkpoint};
use hippo_cqa::budget::ConsistentAnswer;
use hippo_cqa::constraint::DenialConstraint;
use hippo_cqa::detect::DetectStats;
use hippo_cqa::hippo::{FrozenHippo, Hippo, HippoOptions};
use hippo_cqa::inclusion::ForeignKey;
use hippo_cqa::parallel::panic_message;
use hippo_cqa::query::SjudQuery;
use hippo_engine::{CancelHandle, Database, EngineError, QueryResult, Row, TupleId};
use recover::recover_dir;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};
use wal::{Frame, FrameKind, Wal, WalOp};

/// Service configuration. The defaults suit tests; production-ish
/// callers size `max_active` to core count and set a deadline.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Requests executing concurrently (readers and the writer alike);
    /// minimum 1.
    pub max_active: usize,
    /// Requests allowed to wait behind the active set; beyond this,
    /// arrivals are shed with `Overloaded`.
    pub max_queue: usize,
    /// The back-off hint attached to `Overloaded` rejections.
    pub retry_after: Duration,
    /// Default per-request deadline for sessions (covers queue wait
    /// *and* execution); `None` = ungoverned. Sessions can override
    /// per request via [`Session::set_deadline`].
    pub default_deadline: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_active: 4,
            max_queue: 8,
            retry_after: Duration::from_millis(2),
            default_deadline: None,
        }
    }
}

/// Durability settings for [`Engine::new_durable`] / [`Engine::recover`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory owning the WAL, checkpoint and lock files. Created if
    /// missing; held exclusive while any clone of the engine lives.
    pub dir: PathBuf,
    /// Write a snapshot checkpoint (and truncate the log) once this
    /// many frames have accumulated since the last one; `0` = only
    /// explicit [`Engine::checkpoint`] calls.
    pub checkpoint_every_frames: u64,
}

impl DurabilityConfig {
    /// Durability under `dir` with the default checkpoint cadence (64
    /// frames).
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_every_frames: 64,
        }
    }
}

/// One published state of the service: an id, the frozen system, and
/// provenance. Readers hold epochs alive through `Arc`s; publishing a
/// new epoch never invalidates a pinned one.
#[derive(Debug)]
pub struct Epoch {
    id: u64,
    frozen: FrozenHippo,
    /// Write transactions folded into this epoch since startup.
    writes_applied: u64,
    published_at: Instant,
}

impl Epoch {
    /// Monotonic epoch id (0 = the startup epoch).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The frozen system: catalog snapshot + hypergraph + verdict
    /// cache.
    pub fn frozen(&self) -> &FrozenHippo {
        &self.frozen
    }

    /// Write transactions folded into this epoch since startup.
    pub fn writes_applied(&self) -> u64 {
        self.writes_applied
    }

    /// Time since this epoch was published.
    pub fn age(&self) -> Duration {
        self.published_at.elapsed()
    }
}

/// One recorded mutation inside a [`Engine::write`] transaction.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Insert rows into a table.
    Insert { table: String, rows: Vec<Row> },
    /// Delete tuples by id (unknown ids are skipped, matching
    /// [`Hippo::delete_tuples`]).
    Delete { table: String, tids: Vec<TupleId> },
    /// Update tuples in place (ids survive).
    Update {
        table: String,
        updates: Vec<(TupleId, Row)>,
    },
}

/// What a successful [`Engine::write`] published.
#[derive(Debug, Clone)]
pub struct WriteReceipt {
    /// The epoch this write became visible in.
    pub epoch: u64,
    /// The reconciliation's detection stats (incremental whenever
    /// every change since the last epoch was recorded).
    pub detect: DetectStats,
    /// Tuple ids assigned to inserted rows, in op order.
    pub inserted: Vec<TupleId>,
}

/// The writer's durable attachments (WAL handle + checkpoint cadence).
struct Durability {
    wal: Wal,
    dir: PathBuf,
    checkpoint_every: u64,
    frames_since_checkpoint: u64,
    /// LSN of the newest appended frame (0 = none yet).
    last_lsn: u64,
}

struct WriterState {
    hippo: Hippo,
    writes_applied: u64,
    durability: Option<Durability>,
    /// A durable writer rebuild failed; retry before the next commit.
    needs_rebuild: bool,
}

/// A write transaction's result slot: filled exactly once, by
/// whichever thread drains the commit queue.
type CommitSlot = Arc<Mutex<Option<Result<WriteReceipt, EngineError>>>>;

/// One queued write transaction awaiting a commit leader.
struct CommitReq {
    ops: Vec<WriteOp>,
    slot: CommitSlot,
}

struct Shared {
    epoch: RwLock<Arc<Epoch>>,
    writer: Mutex<WriterState>,
    /// Write transactions waiting for a commit leader (group commit).
    commit_queue: Mutex<VecDeque<CommitReq>>,
    /// Ops refused at admission during drain, pending their audit frame.
    abandoned: Mutex<Vec<Vec<WriteOp>>>,
    admission: Admission,
    config: EngineConfig,
    durable: bool,
    /// Replication state: fencing term, commit horizon, live feeds.
    hub: replicate::ReplicationHub,
    recovery: Option<recover::RecoveryReport>,
    epochs_published: AtomicU64,
    writer_recoveries: AtomicU64,
    wal_frames: AtomicU64,
    wal_fsyncs: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_failures: AtomicU64,
    group_commits: AtomicU64,
    grouped_writes: AtomicU64,
    writes_abandoned: AtomicU64,
}

impl Shared {
    fn new(
        epoch: Arc<Epoch>,
        writer: WriterState,
        config: EngineConfig,
        recovery: Option<recover::RecoveryReport>,
    ) -> Shared {
        let admission = Admission::new(config.max_active, config.max_queue, config.retry_after);
        let hub = replicate::ReplicationHub::new();
        if let Some(d) = &writer.durability {
            // A recovered engine's horizon starts at the recovered log
            // position, so replicas resuming from an older LSN resync
            // rather than silently matching.
            hub.note_lsn(d.last_lsn);
        }
        Shared {
            epoch: RwLock::new(epoch),
            durable: writer.durability.is_some(),
            hub,
            writer: Mutex::new(writer),
            commit_queue: Mutex::new(VecDeque::new()),
            abandoned: Mutex::new(Vec::new()),
            admission,
            config,
            recovery,
            epochs_published: AtomicU64::new(1),
            writer_recoveries: AtomicU64::new(0),
            wal_frames: AtomicU64::new(0),
            wal_fsyncs: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            grouped_writes: AtomicU64::new(0),
            writes_abandoned: AtomicU64::new(0),
        }
    }
}

/// The service engine: owns the single writer slot and the published
/// epoch pointer. Cheap to clone (all clones share one service);
/// `Send + Sync`, so clients are plain threads.
///
/// The durability [`DirLock`] rides on the `Engine` clones, not on the
/// shared state: when the last clone drops, the directory unlocks even
/// while [`Session`]s pinned to old epochs keep answering — so a
/// successor engine can recover from the directory without waiting for
/// readers to finish.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<Shared>,
    _dir_lock: Option<Arc<DirLock>>,
}

// The service exists to be shared across client threads.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<Engine>();
    assert_sync_send::<Epoch>();
};

impl Engine {
    /// Start a service around a reconciled [`Hippo`], publishing epoch
    /// 0 immediately. Fails if the system has unreconciled changes
    /// (same rule as [`Hippo::freeze`]).
    pub fn new(hippo: Hippo, config: EngineConfig) -> Result<Engine, EngineError> {
        let frozen = hippo.freeze()?;
        let epoch = Arc::new(Epoch {
            id: 0,
            frozen,
            writes_applied: 0,
            published_at: Instant::now(),
        });
        let writer = WriterState {
            hippo,
            writes_applied: 0,
            durability: None,
            needs_rebuild: false,
        };
        Ok(Engine {
            shared: Arc::new(Shared::new(epoch, writer, config, None)),
            _dir_lock: None,
        })
    }

    /// Start a **durable** service: lock `durability.dir`, write the
    /// birth checkpoint (a snapshot of `hippo`'s catalog), open an
    /// empty WAL, and publish epoch 0. Fails with
    /// [`ErrorKind::Locked`](hippo_engine::ErrorKind) if another engine
    /// holds the directory, and refuses a directory that already has a
    /// checkpoint — that is existing data, use [`Engine::recover`].
    pub fn new_durable(
        hippo: Hippo,
        config: EngineConfig,
        durability: DurabilityConfig,
    ) -> Result<Engine, EngineError> {
        let dir_lock = Arc::new(DirLock::acquire(&durability.dir)?);
        if read_checkpoint(&durability.dir)?.is_some() {
            return Err(EngineError::new(format!(
                "durability directory {} already holds a checkpoint — \
                 use Engine::recover to reopen existing data",
                durability.dir.display()
            )));
        }
        let frozen = hippo.freeze()?;
        write_checkpoint(
            &durability.dir,
            frozen.catalog(),
            0,
            &hippo.options.governance(),
        )?;
        let (wal, _scan) = Wal::open(&durability.dir)?;
        let epoch = Arc::new(Epoch {
            id: 0,
            frozen,
            writes_applied: 0,
            published_at: Instant::now(),
        });
        let writer = WriterState {
            hippo,
            writes_applied: 0,
            durability: Some(Durability {
                last_lsn: wal.next_lsn().saturating_sub(1),
                wal,
                dir: durability.dir.clone(),
                checkpoint_every: durability.checkpoint_every_frames,
                frames_since_checkpoint: 0,
            }),
            needs_rebuild: false,
        };
        Ok(Engine {
            shared: Arc::new(Shared::new(epoch, writer, config, None)),
            _dir_lock: Some(dir_lock),
        })
    }

    /// Reopen a durability directory after a crash or shutdown: load
    /// the latest checkpoint, replay the committed log suffix
    /// (truncating any torn tail), rebuild the Hippo system — which
    /// re-runs **full** conflict detection from the recovered data —
    /// and publish the result as epoch 1. The constraints and foreign
    /// keys are schema-level configuration the log does not carry, so
    /// the caller supplies them (they must match the crashed engine's).
    pub fn recover(
        config: EngineConfig,
        durability: DurabilityConfig,
        constraints: Vec<DenialConstraint>,
        foreign_keys: Vec<ForeignKey>,
        options: HippoOptions,
    ) -> Result<Engine, EngineError> {
        let dir_lock = Arc::new(DirLock::acquire(&durability.dir)?);
        let (catalog, wal, report) = recover_dir(&durability.dir)?;
        let db = Database::from_catalog(catalog);
        // Construction runs the full ungoverned detect; the caller's
        // options (fault plans included) only apply to later calls.
        let mut hippo = Hippo::with_foreign_keys(db, constraints, foreign_keys)?;
        hippo.options = options;
        let frozen = hippo.freeze()?;
        let epoch = Arc::new(Epoch {
            id: 1,
            frozen,
            writes_applied: 0,
            published_at: Instant::now(),
        });
        let writer = WriterState {
            hippo,
            writes_applied: 0,
            durability: Some(Durability {
                last_lsn: wal.next_lsn().saturating_sub(1),
                wal,
                dir: durability.dir.clone(),
                checkpoint_every: durability.checkpoint_every_frames,
                frames_since_checkpoint: report.frames_replayed,
            }),
            needs_rebuild: false,
        };
        Ok(Engine {
            shared: Arc::new(Shared::new(epoch, writer, config, Some(report))),
            _dir_lock: Some(dir_lock),
        })
    }

    /// What [`Engine::recover`] found and replayed (`None` on engines
    /// not born from recovery).
    pub fn recovery_report(&self) -> Option<recover::RecoveryReport> {
        self.shared.recovery.clone()
    }

    /// Is this engine writing a WAL?
    pub fn is_durable(&self) -> bool {
        self.shared.durable
    }

    /// The currently published epoch (an `Arc` clone; the caller's
    /// copy stays valid across later publishes).
    pub fn current_epoch(&self) -> Arc<Epoch> {
        self.shared.epoch.read().unwrap().clone()
    }

    /// Open a reader session pinned to the current epoch.
    pub fn session(&self) -> Session {
        let epoch = self.current_epoch();
        let options = epoch.frozen.options.clone();
        Session {
            shared: Arc::clone(&self.shared),
            deadline: self.shared.config.default_deadline,
            options,
            epoch,
            requests: 0,
        }
    }

    /// Apply a write transaction through the serialized writer path
    /// and publish the resulting epoch. Concurrency-safe: writes
    /// serialize on the writer lock (after passing admission like any
    /// request), readers never block.
    ///
    /// On **any** failure — op validation, a governed redetect
    /// tripping its budget, an injected fault, or a panic inside
    /// reconciliation — nothing is published: readers keep the last
    /// good epoch, the writer state is poisoned so the next
    /// reconciliation rebuilds from scratch, and
    /// [`ServiceStats::writer_recoveries`] increments. Ops applied
    /// before the failure remain in the (unpublished) live state and
    /// become visible with the next successful write's epoch.
    /// On a durable engine the receipt additionally means the
    /// transaction's frame is **fsync'd in the WAL** — a crash after
    /// `write` returns cannot lose it — and a group of writers blocked
    /// on the writer slot commits together: one log write, one fsync,
    /// one reconciliation, one epoch swap (each still gets its own
    /// receipt). Failed durable writes never ride along; the writer is
    /// rebuilt from the published epoch instead of poisoned.
    pub fn write(&self, ops: Vec<WriteOp>) -> Result<WriteReceipt, EngineError> {
        let permit = match self.shared.admission.admit(None) {
            Ok(p) => p,
            Err(e) => {
                if e.is_shutdown() {
                    // Draining: remember what this writer wanted so
                    // `drain` can log it as an abandoned-audit frame.
                    self.shared.abandoned.lock().unwrap().push(ops);
                    self.shared.writes_abandoned.fetch_add(1, Ordering::Relaxed);
                }
                return Err(e);
            }
        };
        let slot = Arc::new(Mutex::new(None));
        self.shared
            .commit_queue
            .lock()
            .unwrap()
            .push_back(CommitReq {
                ops,
                slot: Arc::clone(&slot),
            });
        let mut w = self.shared.writer.lock().unwrap();
        if let Some(done) = slot.lock().unwrap().take() {
            // A leader that held the writer slot drained the queue —
            // our transaction included — while we waited for it.
            return done;
        }
        self.lead_commit(&mut w);
        drop(w);
        drop(permit);
        let res = slot.lock().unwrap().take();
        res.expect("commit leader fills every drained slot")
    }

    /// Submit several transactions as one admission request and one
    /// commit group: the whole batch shares a single reconciliation,
    /// log write, fsync and epoch swap, but each transaction gets its
    /// own receipt (or error — one bad transaction does not fail its
    /// groupmates). This is the deterministic way to exercise group
    /// commit; concurrent [`Engine::write`] callers form the same
    /// groups adaptively.
    pub fn write_group(
        &self,
        txns: Vec<Vec<WriteOp>>,
    ) -> Result<Vec<Result<WriteReceipt, EngineError>>, EngineError> {
        let permit = match self.shared.admission.admit(None) {
            Ok(p) => p,
            Err(e) => {
                if e.is_shutdown() {
                    let mut ab = self.shared.abandoned.lock().unwrap();
                    self.shared
                        .writes_abandoned
                        .fetch_add(txns.len() as u64, Ordering::Relaxed);
                    ab.extend(txns);
                }
                return Err(e);
            }
        };
        let slots: Vec<CommitSlot> = txns.iter().map(|_| Arc::new(Mutex::new(None))).collect();
        {
            let mut q = self.shared.commit_queue.lock().unwrap();
            for (ops, slot) in txns.into_iter().zip(&slots) {
                q.push_back(CommitReq {
                    ops,
                    slot: Arc::clone(slot),
                });
            }
        }
        let mut w = self.shared.writer.lock().unwrap();
        self.lead_commit(&mut w);
        drop(w);
        drop(permit);
        Ok(slots
            .iter()
            .map(|s| {
                let res = s.lock().unwrap().take();
                res.expect("commit leader fills every drained slot")
            })
            .collect())
    }

    /// Drain the commit queue and process it as one group, filling
    /// every drained slot. Runs with the writer slot held.
    fn lead_commit(&self, w: &mut WriterState) {
        let group: Vec<CommitReq> = self.shared.commit_queue.lock().unwrap().drain(..).collect();
        if group.is_empty() {
            return;
        }
        if group.len() > 1 {
            self.shared.group_commits.fetch_add(1, Ordering::Relaxed);
            self.shared
                .grouped_writes
                .fetch_add(group.len() as u64, Ordering::Relaxed);
        }
        if w.needs_rebuild {
            self.reset_writer(w);
            if w.needs_rebuild {
                let err = EngineError::new(
                    "write: durable writer rebuild failed and is still pending; \
                     this write was not attempted",
                );
                for req in &group {
                    *req.slot.lock().unwrap() = Some(Err(err.clone()));
                }
                return;
            }
        }
        let outcomes = self.process_group(w, &group);
        for (req, outcome) in group.iter().zip(outcomes) {
            *req.slot.lock().unwrap() = Some(outcome);
        }
    }

    /// Apply, reconcile, log and publish one commit group. Exactly one
    /// epoch is published if any transaction survives; none otherwise.
    fn process_group(
        &self,
        w: &mut WriterState,
        group: &[CommitReq],
    ) -> Vec<Result<WriteReceipt, EngineError>> {
        let n = group.len();
        let durable = w.durability.is_some();
        let mut results: Vec<Option<Result<WriteReceipt, EngineError>>> =
            (0..n).map(|_| None).collect();
        // Recorded effects of transactions applied in the current pass.
        let mut applied: Vec<Option<(Vec<WalOp>, Vec<TupleId>)>> = (0..n).map(|_| None).collect();
        let fail = |results: &mut Vec<Option<Result<WriteReceipt, EngineError>>>,
                    i: usize,
                    e: EngineError| {
            results[i] = Some(Err(e));
            self.shared
                .writer_recoveries
                .fetch_add(1, Ordering::Relaxed);
        };

        // Apply pass. A transaction that fails cleanly (validated
        // up-front, zero ops landed) just resolves to its error. A
        // partial failure or panic resolves the transaction AND resets
        // the writer: durable engines rebuild from the published epoch
        // and restart the pass — every already-applied groupmate is
        // re-applied so the live state holds exactly the surviving
        // transactions — while non-durable engines keep the PR 7
        // poison-and-ride-along semantics. Each restart permanently
        // resolves at least one transaction, so the loop is bounded.
        'apply: loop {
            for i in 0..n {
                if results[i].is_some() || applied[i].is_some() {
                    continue;
                }
                let ops = &group[i].ops;
                let mut walops: Vec<WalOp> = Vec::with_capacity(ops.len());
                let mut inserted: Vec<TupleId> = Vec::new();
                let mut ops_done = 0usize;
                let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<(), EngineError> {
                    for op in ops {
                        match op {
                            WriteOp::Insert { table, rows } => {
                                let tids = w.hippo.insert_tuples(table, rows.clone())?;
                                inserted.extend(tids.iter().copied());
                                walops.push(WalOp::Insert {
                                    table: table.clone(),
                                    rows: rows.clone(),
                                    tids,
                                });
                            }
                            WriteOp::Delete { table, tids } => {
                                // The engine skips unknown ids; the log
                                // must record only real deletions or
                                // replay would refuse the frame.
                                let live: Vec<TupleId> = w
                                    .hippo
                                    .db()
                                    .catalog()
                                    .table(table)
                                    .map(|t| {
                                        tids.iter()
                                            .copied()
                                            .filter(|&id| t.get(id).is_some())
                                            .collect()
                                    })
                                    .unwrap_or_default();
                                w.hippo.delete_tuples(table, tids)?;
                                walops.push(WalOp::Delete {
                                    table: table.clone(),
                                    tids: live,
                                });
                            }
                            WriteOp::Update { table, updates } => {
                                w.hippo.update_tuples(table, updates.clone())?;
                                walops.push(WalOp::Update {
                                    table: table.clone(),
                                    updates: updates.clone(),
                                });
                            }
                        }
                        ops_done += 1;
                    }
                    Ok(())
                }));
                match attempt {
                    Ok(Ok(())) => {
                        applied[i] = Some((walops, inserted));
                    }
                    Ok(Err(e)) => {
                        fail(&mut results, i, e);
                        if ops_done > 0 {
                            if durable {
                                self.reset_writer(w);
                                if w.needs_rebuild {
                                    return self.fail_unresolved(results, applied);
                                }
                                applied.iter_mut().for_each(|a| *a = None);
                                continue 'apply;
                            }
                            let _ = w.hippo.db_mut();
                        }
                    }
                    Err(payload) => {
                        fail(
                            &mut results,
                            i,
                            EngineError::worker_panic("write", 0, &panic_message(payload.as_ref())),
                        );
                        if durable {
                            self.reset_writer(w);
                            if w.needs_rebuild {
                                return self.fail_unresolved(results, applied);
                            }
                            applied.iter_mut().for_each(|a| *a = None);
                            continue 'apply;
                        }
                        // A panic may have interrupted op application,
                        // leaving recorded state out of sync with the
                        // catalog — poison so the next redetect rebuilds.
                        let _ = w.hippo.db_mut();
                    }
                }
            }
            break;
        }

        let survivors: Vec<usize> = (0..n).filter(|&i| applied[i].is_some()).collect();
        if survivors.is_empty() {
            return results.into_iter().map(Option::unwrap).collect();
        }

        // One reconciliation + freeze for the whole group.
        let finish = catch_unwind(AssertUnwindSafe(
            || -> Result<(DetectStats, FrozenHippo), EngineError> {
                let stats = w.hippo.redetect()?;
                let frozen = w.hippo.freeze()?;
                Ok((stats, frozen))
            },
        ));
        let (detect, frozen) = match finish {
            Ok(Ok(v)) => v,
            Ok(Err(e)) => {
                for &i in &survivors {
                    fail(&mut results, i, e.clone());
                }
                self.recover_writer(w, durable);
                return results.into_iter().map(Option::unwrap).collect();
            }
            Err(payload) => {
                let e = EngineError::worker_panic("write", 0, &panic_message(payload.as_ref()));
                for &i in &survivors {
                    fail(&mut results, i, e.clone());
                }
                self.recover_writer(w, durable);
                return results.into_iter().map(Option::unwrap).collect();
            }
        };

        // Group commit: every survivor's frame in one append, one
        // fsync — the commit point, strictly before the epoch swap.
        if w.durability.is_some() {
            let gov = w.hippo.options.governance();
            let dur = w.durability.as_mut().unwrap();
            let batch: Vec<(FrameKind, Vec<WalOp>)> = survivors
                .iter()
                .map(|&i| (FrameKind::Commit, applied[i].as_ref().unwrap().0.clone()))
                .collect();
            let appended = catch_unwind(AssertUnwindSafe(|| dur.wal.append(&batch, &gov)));
            match appended {
                Ok(Ok(lsns)) => {
                    dur.last_lsn = *lsns.last().unwrap();
                    dur.frames_since_checkpoint += lsns.len() as u64;
                    self.shared
                        .wal_frames
                        .fetch_add(lsns.len() as u64, Ordering::Relaxed);
                    self.shared.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
                    // Ship point: strictly after the fsync — replicas
                    // only ever see frames the primary is committed to.
                    // Shipping enqueues to per-replica feeds and never
                    // fails the commit.
                    let frames: Vec<Frame> = lsns
                        .iter()
                        .zip(batch)
                        .map(|(&lsn, (kind, ops))| Frame { lsn, kind, ops })
                        .collect();
                    self.shared.hub.ship(frames);
                }
                Ok(Err(e)) => {
                    for &i in &survivors {
                        fail(&mut results, i, e.clone());
                    }
                    self.recover_writer(w, true);
                    return results.into_iter().map(Option::unwrap).collect();
                }
                Err(payload) => {
                    let e = EngineError::worker_panic("write", 0, &panic_message(payload.as_ref()));
                    for &i in &survivors {
                        fail(&mut results, i, e.clone());
                    }
                    self.recover_writer(w, true);
                    return results.into_iter().map(Option::unwrap).collect();
                }
            }
        }

        // Publish: one epoch swap for the whole group.
        w.writes_applied += survivors.len() as u64;
        let epoch_id = {
            let mut cur = self.shared.epoch.write().unwrap();
            let id = cur.id + 1;
            *cur = Arc::new(Epoch {
                id,
                frozen,
                writes_applied: w.writes_applied,
                published_at: Instant::now(),
            });
            id
        };
        self.shared.epochs_published.fetch_add(1, Ordering::Relaxed);
        for &i in &survivors {
            let (_, inserted) = applied[i].take().unwrap();
            results[i] = Some(Ok(WriteReceipt {
                epoch: epoch_id,
                detect,
                inserted,
            }));
        }

        self.maybe_checkpoint(w);
        results.into_iter().map(Option::unwrap).collect()
    }

    /// Resolve every still-unresolved transaction with the pending-
    /// rebuild error (used when a mid-group rebuild fails).
    fn fail_unresolved(
        &self,
        mut results: Vec<Option<Result<WriteReceipt, EngineError>>>,
        _applied: Vec<Option<(Vec<WalOp>, Vec<TupleId>)>>,
    ) -> Vec<Result<WriteReceipt, EngineError>> {
        let err =
            EngineError::new("write: durable writer rebuild failed; transaction not committed");
        for r in results.iter_mut() {
            if r.is_none() {
                *r = Some(Err(err.clone()));
                self.shared
                    .writer_recoveries
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        results.into_iter().map(Option::unwrap).collect()
    }

    /// Post-failure writer recovery: durable engines rebuild the live
    /// state from the published epoch (failed writes must not ride
    /// along — the WAL never saw them); non-durable engines poison so
    /// the next reconciliation runs the full path (PR 7 semantics:
    /// partial ops become visible with the next success).
    fn recover_writer(&self, w: &mut WriterState, durable: bool) {
        if durable {
            self.reset_writer(w);
        } else {
            let _ = w.hippo.db_mut();
        }
    }

    /// Rebuild the writer's Hippo from the currently published epoch's
    /// catalog (full ungoverned re-detection, then the original options
    /// restored so unfired fault arms survive). On failure flags
    /// `needs_rebuild`; the next commit attempt retries.
    fn reset_writer(&self, w: &mut WriterState) {
        let epoch = self.current_epoch();
        let rebuilt = catch_unwind(AssertUnwindSafe(|| -> Result<Hippo, EngineError> {
            let db = Database::from_catalog(epoch.frozen().catalog().clone());
            let constraints = w.hippo.constraints().to_vec();
            let fks = w.hippo.foreign_keys().to_vec();
            let options = w.hippo.options.clone();
            let mut h = Hippo::with_foreign_keys(db, constraints, fks)?;
            h.options = options;
            Ok(h)
        }));
        match rebuilt {
            Ok(Ok(h)) => {
                w.hippo = h;
                w.needs_rebuild = false;
            }
            _ => {
                w.needs_rebuild = true;
            }
        }
    }

    /// Force a snapshot checkpoint now (durable engines only): write
    /// the catalog image, then truncate the absorbed log.
    pub fn checkpoint(&self) -> Result<(), EngineError> {
        let mut w = self.shared.writer.lock().unwrap();
        self.checkpoint_writer(&mut w)
    }

    /// Checkpoint if the cadence says so; failures are counted, not
    /// fatal (the log is still intact, so nothing is lost).
    fn maybe_checkpoint(&self, w: &mut WriterState) {
        let due = match &w.durability {
            Some(d) => d.checkpoint_every > 0 && d.frames_since_checkpoint >= d.checkpoint_every,
            None => false,
        };
        if due {
            let _ = self.checkpoint_writer(w);
        }
    }

    fn checkpoint_writer(&self, w: &mut WriterState) -> Result<(), EngineError> {
        let gov = w.hippo.options.governance();
        let hippo = &w.hippo;
        let Some(dur) = w.durability.as_mut() else {
            return Err(EngineError::new(
                "checkpoint: engine has no durability directory",
            ));
        };
        // The writer state equals the published state here (failures
        // always reset it), so its catalog is the correct image for
        // everything up to `last_lsn`.
        let catalog = hippo.db().catalog();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            write_checkpoint(&dur.dir, catalog, dur.last_lsn, &gov)
        }));
        match attempt {
            Ok(Ok(())) => {
                dur.wal.truncate_all()?;
                dur.frames_since_checkpoint = 0;
                self.shared.checkpoints.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Ok(Err(e)) => {
                self.shared
                    .checkpoint_failures
                    .fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
            Err(payload) => {
                self.shared
                    .checkpoint_failures
                    .fetch_add(1, Ordering::Relaxed);
                Err(EngineError::worker_panic(
                    "checkpoint",
                    0,
                    &panic_message(payload.as_ref()),
                ))
            }
        }
    }

    /// Replace the writer's governance/options (deadline, fault plan,
    /// thread count) for subsequent writes. This is how the chaos
    /// harness arms "writer panics mid-redetect".
    pub fn set_writer_options(&self, options: HippoOptions) {
        self.shared.writer.lock().unwrap().hippo.options = options;
    }

    /// Graceful shutdown: reject new requests with `Shutdown`, wake
    /// queued waiters into `Shutdown`, and block until every in-flight
    /// request has finished (or tripped its budget). Returns the total
    /// number of writes abandoned at the gate so far; on a durable
    /// engine their ops are logged as abandoned-**audit** frames
    /// (fsync'd, skipped by replay) before this returns — a lossy
    /// shutdown leaves evidence of what was lost. Idempotent; a second
    /// call flushes any straggler that lost the race between being
    /// refused and being recorded.
    pub fn drain(&self) -> u64 {
        self.shared.admission.drain();
        let pending: Vec<Vec<WriteOp>> =
            std::mem::take(&mut *self.shared.abandoned.lock().unwrap());
        if !pending.is_empty() {
            let mut w = self.shared.writer.lock().unwrap();
            let gov = w.hippo.options.governance();
            if let Some(dur) = w.durability.as_mut() {
                let batch: Vec<(FrameKind, Vec<WalOp>)> = pending
                    .iter()
                    .map(|ops| (FrameKind::Abandoned, audit_walops(ops)))
                    .collect();
                // Best-effort: the audit trail must never turn a clean
                // drain into a crash, so injected faults are absorbed.
                let appended = catch_unwind(AssertUnwindSafe(|| dur.wal.append(&batch, &gov)));
                if let Ok(Ok(lsns)) = appended {
                    dur.last_lsn = *lsns.last().unwrap();
                    self.shared
                        .wal_frames
                        .fetch_add(lsns.len() as u64, Ordering::Relaxed);
                    self.shared.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
                    // Abandoned-audit frames ship too: replicas keep
                    // the same evidence trail (replay skips them).
                    let frames: Vec<Frame> = lsns
                        .iter()
                        .zip(batch)
                        .map(|(&lsn, (kind, ops))| Frame { lsn, kind, ops })
                        .collect();
                    self.shared.hub.ship(frames);
                }
            }
        }
        self.shared.writes_abandoned.load(Ordering::Relaxed)
    }

    /// Has [`Engine::drain`] begun?
    pub fn is_draining(&self) -> bool {
        self.shared.admission.is_draining()
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let (active, queued) = self.shared.admission.occupancy();
        let epoch = self.current_epoch();
        ServiceStats {
            epochs_published: self.shared.epochs_published.load(Ordering::Relaxed),
            writes_applied: epoch.writes_applied,
            requests_admitted: self.shared.admission.admitted_count(),
            requests_shed: self.shared.admission.shed_count(),
            writer_recoveries: self.shared.writer_recoveries.load(Ordering::Relaxed),
            wal_frames: self.shared.wal_frames.load(Ordering::Relaxed),
            wal_fsyncs: self.shared.wal_fsyncs.load(Ordering::Relaxed),
            checkpoints: self.shared.checkpoints.load(Ordering::Relaxed),
            checkpoint_failures: self.shared.checkpoint_failures.load(Ordering::Relaxed),
            group_commits: self.shared.group_commits.load(Ordering::Relaxed),
            grouped_writes: self.shared.grouped_writes.load(Ordering::Relaxed),
            writes_abandoned: self.shared.writes_abandoned.load(Ordering::Relaxed),
            active,
            queued,
            epoch_age: epoch.age(),
            draining: self.is_draining(),
            durable: self.shared.durable,
        }
    }

    /// The fencing term this engine stamps on every replication
    /// message (1 for a freshly started primary; promoted engines
    /// carry their predecessor's term + 1).
    pub fn term(&self) -> u64 {
        self.shared.hub.term()
    }

    /// Start streaming committed WAL frames to one replica over
    /// `transport`. Spawns a feeder thread that waits for the
    /// replica's `Hello`, serves its initial sync (incremental frames
    /// when the log still holds the suffix, a full catalog snapshot
    /// otherwise), then relays every group commit, heartbeats when
    /// idle, and tracks the replica's acked LSN. The feeder holds only
    /// a weak reference: dropping the engine ends replication.
    ///
    /// Only durable engines can host replicas — the WAL is the
    /// shipping source.
    pub fn attach_replica(&self, transport: Box<dyn Transport>) -> Result<(), EngineError> {
        if !self.shared.durable {
            return Err(EngineError::new(
                "replication: only durable engines can host replicas \
                 (the WAL is the shipping source)",
            ));
        }
        let weak = Arc::downgrade(&self.shared);
        std::thread::Builder::new()
            .name("hippo-repl-feed".into())
            .spawn(move || replicate::feed_loop(weak, transport))
            .map_err(|e| EngineError::new(format!("replication: spawn feeder: {e}")))?;
        Ok(())
    }

    /// Accept replicas over TCP: each accepted connection becomes an
    /// [`Engine::attach_replica`]-style feeder. Returns a handle whose
    /// drop (or [`ReplicationServer::stop`]) shuts the acceptor down;
    /// already-attached feeders keep running until their transport or
    /// the engine goes away.
    pub fn serve_replication(
        &self,
        listener: std::net::TcpListener,
    ) -> Result<ReplicationServer, EngineError> {
        if !self.shared.durable {
            return Err(EngineError::new(
                "replication: only durable engines can host replicas \
                 (the WAL is the shipping source)",
            ));
        }
        let addr = listener
            .local_addr()
            .map_err(|e| EngineError::new(format!("replication: local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| EngineError::new(format!("replication: set_nonblocking: {e}")))?;
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let weak = Arc::downgrade(&self.shared);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("hippo-repl-accept".into())
            .spawn(move || loop {
                if thread_stop.load(Ordering::SeqCst) || weak.upgrade().is_none() {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        if let Ok(transport) = transport::TcpTransport::new(stream) {
                            let feeder = weak.clone();
                            let _ = std::thread::Builder::new()
                                .name("hippo-repl-feed".into())
                                .spawn(move || replicate::feed_loop(feeder, Box::new(transport)));
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            })
            .map_err(|e| EngineError::new(format!("replication: spawn acceptor: {e}")))?;
        Ok(ReplicationServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// Point-in-time primary-side replication counters.
    pub fn replication_stats(&self) -> ReplicationStats {
        let hub = &self.shared.hub;
        let (replicas, min_acked_lsn) = hub.ack_floor();
        ReplicationStats {
            term: hub.term(),
            last_lsn: hub.last_lsn(),
            replicas,
            min_acked_lsn,
            frames_shipped: hub.frames_shipped.load(Ordering::Relaxed),
            snapshots_shipped: hub.snapshots_shipped.load(Ordering::Relaxed),
            incremental_syncs: hub.incremental_syncs.load(Ordering::Relaxed),
            acks_received: hub.acks_received.load(Ordering::Relaxed),
            heartbeats_sent: hub.heartbeats_sent.load(Ordering::Relaxed),
            feeds_fenced: hub.feeds_fenced.load(Ordering::Relaxed),
            feeds_dropped: hub.feeds_dropped.load(Ordering::Relaxed),
        }
    }
}

/// Handle for a TCP replication acceptor (see
/// [`Engine::serve_replication`]). Dropping it stops accepting new
/// replicas.
pub struct ReplicationServer {
    addr: std::net::SocketAddr,
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ReplicationServer {
    /// The address replicas connect to (useful with port 0 listeners).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting new replicas (existing feeders keep running).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicationServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve a replica's `Hello` on the primary: under the writer lock
/// (so registration is atomic with the payload — no frame can commit
/// and ship between the two), register the feed if new, then build
/// either an incremental `Frames` response (the log still holds every
/// frame past the replica's position, same term, same history) or a
/// full catalog `Snapshot`. A `Hello` carrying a *newer* term means
/// this primary is a fenced zombie: the feeder gets an error and
/// stops.
pub(crate) fn serve_hello(
    shared: &Shared,
    hello_term: u64,
    hello_lsn: u64,
    needs_snapshot: bool,
    feed: &mut Option<(u64, std::sync::mpsc::Receiver<Vec<u8>>)>,
    acked: &Arc<AtomicU64>,
    alive: &Arc<std::sync::atomic::AtomicBool>,
) -> Result<Vec<u8>, EngineError> {
    let w = shared.writer.lock().unwrap();
    let term = shared.hub.term();
    if hello_term > term {
        shared.hub.feeds_fenced.fetch_add(1, Ordering::Relaxed);
        return Err(EngineError::not_primary(hello_term));
    }
    if feed.is_none() {
        *feed = Some(shared.hub.register(Arc::clone(acked), Arc::clone(alive)));
    }
    let dur = w
        .durability
        .as_ref()
        .expect("attach_replica requires a durable engine");
    let last_lsn = dur.last_lsn;
    shared.hub.note_lsn(last_lsn);
    // Incremental resync only within one history: a replica that last
    // followed an older term may share LSNs but not frames with us.
    if !needs_snapshot && hello_term == term && hello_lsn <= last_lsn {
        if let Ok(frames) = dur.wal.read_frames_since(hello_lsn) {
            shared.hub.incremental_syncs.fetch_add(1, Ordering::Relaxed);
            return Ok(replicate::ReplMsg::Frames { term, frames }.encode());
        }
        // A checkpoint absorbed part of the suffix; fall through.
    }
    // The published epoch is exactly "checkpoint + committed log" =
    // everything up to last_lsn (abandoned frames are no-ops).
    let catalog =
        hippo_engine::codec::encode_catalog(shared.epoch.read().unwrap().frozen.catalog());
    shared.hub.snapshots_shipped.fetch_add(1, Ordering::Relaxed);
    Ok(replicate::ReplMsg::Snapshot {
        term,
        last_lsn,
        catalog,
    }
    .encode())
}

/// Strip a refused transaction's ops down to loggable audit records
/// (inserts carry no tuple ids — none were ever assigned).
fn audit_walops(ops: &[WriteOp]) -> Vec<WalOp> {
    ops.iter()
        .map(|op| match op {
            WriteOp::Insert { table, rows } => WalOp::Insert {
                table: table.clone(),
                rows: rows.clone(),
                tids: Vec::new(),
            },
            WriteOp::Delete { table, tids } => WalOp::Delete {
                table: table.clone(),
                tids: tids.clone(),
            },
            WriteOp::Update { table, updates } => WalOp::Update {
                table: table.clone(),
                updates: updates.clone(),
            },
        })
        .collect()
}

/// A reader session: pinned to one epoch until [`Session::refresh`],
/// with its own deadline and (armable) cancellation handle. Cheap —
/// one per client thread, or one per request, as the caller prefers.
///
/// Every data call runs admission → deadline-budgeted execution
/// against the pinned epoch's [`FrozenHippo`]; the live writer is
/// never touched.
pub struct Session {
    shared: Arc<Shared>,
    epoch: Arc<Epoch>,
    options: HippoOptions,
    deadline: Option<Duration>,
    requests: u64,
}

impl Session {
    /// The epoch this session reads from.
    pub fn epoch(&self) -> &Arc<Epoch> {
        &self.epoch
    }

    /// Re-pin to the latest published epoch (keeping this session's
    /// deadline, mode flags and armed cancellation).
    pub fn refresh(&mut self) {
        self.epoch = self.shared.epoch.read().unwrap().clone();
    }

    /// Override the per-request deadline (`None` = ungoverned). The
    /// deadline covers queue wait and execution together.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// Mutable access to the session's answer-mode options (KG/core
    /// filter/threads/degraded). Governance deadlines still come from
    /// [`Session::set_deadline`].
    pub fn options_mut(&mut self) -> &mut HippoOptions {
        &mut self.options
    }

    /// A handle that cancels this session's in-flight (or next)
    /// request from another thread. Sticky until
    /// [`CancelHandle::reset`].
    pub fn cancel_handle(&mut self) -> CancelHandle {
        self.options.cancel_handle()
    }

    /// This session's view of its pinned epoch.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            pinned_epoch: self.epoch.id,
            pinned_writes: self.epoch.writes_applied,
            pinned_age: self.epoch.age(),
            requests: self.requests,
        }
    }

    /// Admission + remaining-deadline accounting shared by the data
    /// calls. Returns the request's effective options (deadline
    /// adjusted for time spent queueing).
    fn admit(
        &self,
        arrival: Instant,
    ) -> Result<(admission::Permit<'_>, HippoOptions), EngineError> {
        let absolute = self.deadline.map(|d| arrival + d);
        let permit = self.shared.admission.admit(absolute)?;
        let mut options = self.options.clone();
        options.governance.deadline = match self.deadline {
            None => None,
            Some(d) => {
                let remaining = d.saturating_sub(arrival.elapsed());
                if remaining.is_zero() {
                    return Err(EngineError::budget(
                        "admission",
                        arrival.elapsed().as_micros() as u64,
                        d.as_micros() as u64,
                    ));
                }
                Some(remaining)
            }
        };
        Ok((permit, options))
    }

    /// Run a plain (non-CQA) SQL `SELECT` against the pinned epoch.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult, EngineError> {
        let arrival = Instant::now();
        self.requests += 1;
        let (_permit, options) = self.admit(arrival)?;
        let gov = options.governance();
        self.epoch.frozen.query_governed(sql, gov.budget_ref())
    }

    /// Compute consistent answers on the pinned epoch (sorted rows).
    pub fn consistent_answers(&mut self, query: &SjudQuery) -> Result<Vec<Row>, EngineError> {
        Ok(self.consistent_answers_governed(query)?.rows)
    }

    /// The governed CQA entry point: admission, deadline propagation,
    /// then the epoch's full answer pipeline with this session's mode
    /// flags. Completeness semantics are exactly
    /// [`Hippo::consistent_answers_governed`]'s.
    pub fn consistent_answers_governed(
        &mut self,
        query: &SjudQuery,
    ) -> Result<ConsistentAnswer, EngineError> {
        let arrival = Instant::now();
        self.requests += 1;
        let (_permit, options) = self.admit(arrival)?;
        self.epoch.frozen.consistent_answers_with(query, &options)
    }
}
