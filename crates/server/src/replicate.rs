//! WAL-shipping replication: the primary streams committed frames to
//! replicas, which replay them into their own published epochs and
//! serve (staleness-surfaced) reads. See the state-machine diagram in
//! the crate root docs.
//!
//! # Protocol
//!
//! Five message shapes travel over a [`Transport`] (each inside the
//! transport's crc-checked envelope), every one carrying the sender's
//! **fencing term**:
//!
//! * `Hello { term, last_lsn, needs_snapshot }` — replica → primary:
//!   initial attach and every resync request.
//! * `Snapshot { term, last_lsn, catalog }` — a full catalog image (the
//!   same bytes a checkpoint holds) for a fresh or unrecoverably-behind
//!   replica.
//! * `Frames { term, frames }` — committed WAL frames in LSN order,
//!   shipped after each group-commit fsync (and on incremental resync).
//! * `Heartbeat { term, last_lsn }` — liveness + the primary's commit
//!   horizon, so an idle replica still knows how far behind it is.
//! * `Ack { term, applied_lsn }` — replica → primary after applying;
//!   the primary tracks per-replica acked LSNs.
//!
//! # Fencing
//!
//! Terms are monotonic. A replica rejects any message whose term is
//! below its own (counting it in `frames_fenced`) and adopts any higher
//! term. [`Replica::promote`] bumps the term, so after a failover the
//! old primary's frames — should the zombie come back — carry a stale
//! term and are refused; the zombie learns it is fenced from the higher
//! term in the `Ack`/`Hello` messages it receives back.
//!
//! # Replay = recovery
//!
//! A replica applies frames with exactly the crash-recovery discipline
//! ([`crate::recover`]): LSNs must be contiguous (a gap triggers a
//! resync `Hello`, never a silent skip), inserts must land on the tuple
//! ids the primary recorded (anything else is a loud divergence error
//! that marks the replica broken), and abandoned-audit frames advance
//! the LSN without touching data.

use crate::recover::diverged;
use crate::stats::{ReplicaStats, Staleness};
use crate::transport::Transport;
use crate::wal::{decode_frame_payload, encode_frame_payload, Frame, FrameKind, WalOp};
use crate::{DurabilityConfig, Engine, EngineConfig, Epoch, WriteOp, WriteReceipt};
use hippo_cqa::budget::ConsistentAnswer;
use hippo_cqa::constraint::DenialConstraint;
use hippo_cqa::hippo::{Hippo, HippoOptions};
use hippo_cqa::inclusion::ForeignKey;
use hippo_cqa::parallel::panic_message;
use hippo_cqa::query::SjudQuery;
use hippo_engine::codec::{self, Reader};
use hippo_engine::{Database, EngineError, QueryResult, Row};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// How often a primary's feeder thread emits a heartbeat when no
/// frames are flowing.
pub(crate) const HEARTBEAT_EVERY: Duration = Duration::from_millis(20);
/// How long a feeder/replica waits in one `recv` poll.
const POLL_EVERY: Duration = Duration::from_millis(2);

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

const TAG_HELLO: u8 = 1;
const TAG_SNAPSHOT: u8 = 2;
const TAG_FRAMES: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_ACK: u8 = 5;

/// One replication protocol message. Public mainly so chaos tests can
/// hand-craft zombie frames; normal callers never touch it.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplMsg {
    /// Replica → primary: attach / resync request.
    Hello {
        /// The replica's current fencing term (0 = never synced).
        term: u64,
        /// Highest LSN the replica has applied.
        last_lsn: u64,
        /// The replica has no state at all and needs a full snapshot.
        needs_snapshot: bool,
    },
    /// A full catalog image as of `last_lsn`.
    Snapshot {
        term: u64,
        last_lsn: u64,
        /// `codec::encode_catalog` bytes.
        catalog: Vec<u8>,
    },
    /// Committed WAL frames in ascending LSN order.
    Frames { term: u64, frames: Vec<Frame> },
    /// Liveness + commit horizon.
    Heartbeat { term: u64, last_lsn: u64 },
    /// Replica → primary: applied through `applied_lsn`.
    Ack { term: u64, applied_lsn: u64 },
}

impl ReplMsg {
    /// Encode to the byte payload a [`Transport`] carries.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ReplMsg::Hello {
                term,
                last_lsn,
                needs_snapshot,
            } => {
                out.push(TAG_HELLO);
                codec::put_u64(&mut out, *term);
                codec::put_u64(&mut out, *last_lsn);
                out.push(*needs_snapshot as u8);
            }
            ReplMsg::Snapshot {
                term,
                last_lsn,
                catalog,
            } => {
                out.push(TAG_SNAPSHOT);
                codec::put_u64(&mut out, *term);
                codec::put_u64(&mut out, *last_lsn);
                codec::put_u32(&mut out, catalog.len() as u32);
                out.extend_from_slice(catalog);
            }
            ReplMsg::Frames { term, frames } => {
                out.push(TAG_FRAMES);
                codec::put_u64(&mut out, *term);
                codec::put_u32(&mut out, frames.len() as u32);
                for frame in frames {
                    let payload = encode_frame_payload(frame);
                    codec::put_u32(&mut out, payload.len() as u32);
                    out.extend_from_slice(&payload);
                }
            }
            ReplMsg::Heartbeat { term, last_lsn } => {
                out.push(TAG_HEARTBEAT);
                codec::put_u64(&mut out, *term);
                codec::put_u64(&mut out, *last_lsn);
            }
            ReplMsg::Ack { term, applied_lsn } => {
                out.push(TAG_ACK);
                codec::put_u64(&mut out, *term);
                codec::put_u64(&mut out, *applied_lsn);
            }
        }
        out
    }

    /// Decode a payload; errors (never panics) on any malformed input.
    pub fn decode(payload: &[u8]) -> Result<ReplMsg, EngineError> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            TAG_HELLO => ReplMsg::Hello {
                term: r.u64()?,
                last_lsn: r.u64()?,
                needs_snapshot: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(EngineError::new("repl: bad needs_snapshot flag")),
                },
            },
            TAG_SNAPSHOT => {
                let term = r.u64()?;
                let last_lsn = r.u64()?;
                let len = r.count(1)?;
                ReplMsg::Snapshot {
                    term,
                    last_lsn,
                    catalog: r.take(len)?.to_vec(),
                }
            }
            TAG_FRAMES => {
                let term = r.u64()?;
                let n = r.count(4)?;
                let mut frames = Vec::with_capacity(n);
                let mut last = 0u64;
                for _ in 0..n {
                    let len = r.count(1)?;
                    let frame = decode_frame_payload(r.take(len)?)?;
                    if frame.lsn <= last {
                        return Err(EngineError::new("repl: frames out of LSN order"));
                    }
                    last = frame.lsn;
                    frames.push(frame);
                }
                ReplMsg::Frames { term, frames }
            }
            TAG_HEARTBEAT => ReplMsg::Heartbeat {
                term: r.u64()?,
                last_lsn: r.u64()?,
            },
            TAG_ACK => ReplMsg::Ack {
                term: r.u64()?,
                applied_lsn: r.u64()?,
            },
            _ => return Err(EngineError::new("repl: unknown message tag")),
        };
        if !r.is_empty() {
            return Err(EngineError::new("repl: trailing bytes in message"));
        }
        Ok(msg)
    }
}

// ---------------------------------------------------------------------------
// Primary side: the hub and its per-replica feeds
// ---------------------------------------------------------------------------

/// One attached replica, as the hub sees it: a channel of pre-encoded
/// outbound messages plus the flags its feeder thread shares.
struct Feed {
    id: u64,
    tx: mpsc::Sender<Vec<u8>>,
    acked: Arc<AtomicU64>,
    alive: Arc<AtomicBool>,
}

/// The primary's replication state, owned by [`crate::Engine`]'s shared
/// core: the fencing term, the commit horizon, and the live feeds.
pub(crate) struct ReplicationHub {
    term: AtomicU64,
    last_lsn: AtomicU64,
    feeds: Mutex<Vec<Feed>>,
    next_feed_id: AtomicU64,
    pub(crate) frames_shipped: AtomicU64,
    pub(crate) snapshots_shipped: AtomicU64,
    pub(crate) incremental_syncs: AtomicU64,
    pub(crate) acks_received: AtomicU64,
    pub(crate) heartbeats_sent: AtomicU64,
    pub(crate) feeds_fenced: AtomicU64,
    pub(crate) feeds_dropped: AtomicU64,
}

impl ReplicationHub {
    pub(crate) fn new() -> ReplicationHub {
        ReplicationHub {
            term: AtomicU64::new(1),
            last_lsn: AtomicU64::new(0),
            feeds: Mutex::new(Vec::new()),
            next_feed_id: AtomicU64::new(1),
            frames_shipped: AtomicU64::new(0),
            snapshots_shipped: AtomicU64::new(0),
            incremental_syncs: AtomicU64::new(0),
            acks_received: AtomicU64::new(0),
            heartbeats_sent: AtomicU64::new(0),
            feeds_fenced: AtomicU64::new(0),
            feeds_dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn term(&self) -> u64 {
        self.term.load(Ordering::SeqCst)
    }

    pub(crate) fn set_term(&self, term: u64) {
        self.term.store(term, Ordering::SeqCst);
    }

    pub(crate) fn last_lsn(&self) -> u64 {
        self.last_lsn.load(Ordering::SeqCst)
    }

    pub(crate) fn note_lsn(&self, lsn: u64) {
        self.last_lsn.fetch_max(lsn, Ordering::SeqCst);
    }

    /// Register a new feed; returns its id and the outbound channel the
    /// feeder drains. Called under the writer lock so registration is
    /// atomic with the sync payload built for it.
    pub(crate) fn register(
        &self,
        acked: Arc<AtomicU64>,
        alive: Arc<AtomicBool>,
    ) -> (u64, mpsc::Receiver<Vec<u8>>) {
        let (tx, rx) = mpsc::channel();
        let id = self.next_feed_id.fetch_add(1, Ordering::Relaxed);
        self.feeds.lock().unwrap().push(Feed {
            id,
            tx,
            acked,
            alive,
        });
        (id, rx)
    }

    fn unregister(&self, id: u64) {
        self.feeds.lock().unwrap().retain(|f| f.id != id);
    }

    /// Ship committed frames to every live feed: encode once, clone
    /// bytes per feed. A dead feed (feeder exited, channel closed) is
    /// pruned; shipping never fails the commit that triggered it.
    /// Called under the writer lock, strictly after the WAL fsync.
    pub(crate) fn ship(&self, frames: Vec<Frame>) {
        let Some(last) = frames.last().map(|f| f.lsn) else {
            return;
        };
        self.note_lsn(last);
        let n = frames.len() as u64;
        let mut feeds = self.feeds.lock().unwrap();
        if feeds.is_empty() {
            return;
        }
        let msg = ReplMsg::Frames {
            term: self.term(),
            frames,
        }
        .encode();
        let mut dropped = 0u64;
        feeds.retain(|f| {
            if !f.alive.load(Ordering::SeqCst) || f.tx.send(msg.clone()).is_err() {
                dropped += 1;
                return false;
            }
            true
        });
        self.feeds_dropped.fetch_add(dropped, Ordering::Relaxed);
        self.frames_shipped
            .fetch_add(n * feeds.len() as u64, Ordering::Relaxed);
    }

    /// (live replica count, minimum acked LSN across them).
    pub(crate) fn ack_floor(&self) -> (usize, u64) {
        let mut feeds = self.feeds.lock().unwrap();
        feeds.retain(|f| f.alive.load(Ordering::SeqCst));
        let min = feeds
            .iter()
            .map(|f| f.acked.load(Ordering::SeqCst))
            .min()
            .unwrap_or(0);
        (feeds.len(), min)
    }
}

/// The feeder thread servicing one attached replica on the primary:
/// waits for `Hello`, registers a feed, streams frames/heartbeats,
/// absorbs `Ack`s. Exits when the transport dies, the engine is
/// dropped, or an `Ack`/`Hello` reveals a higher term (this primary is
/// a fenced zombie).
pub(crate) fn feed_loop(shared: std::sync::Weak<crate::Shared>, mut transport: Box<dyn Transport>) {
    let acked = Arc::new(AtomicU64::new(0));
    let alive = Arc::new(AtomicBool::new(true));
    let mut feed: Option<(u64, mpsc::Receiver<Vec<u8>>)> = None;
    let mut last_beat = Instant::now();

    let exit = |shared: &std::sync::Weak<crate::Shared>,
                feed: &Option<(u64, mpsc::Receiver<Vec<u8>>)>| {
        alive.store(false, Ordering::SeqCst);
        if let (Some(s), Some((id, _))) = (shared.upgrade(), feed.as_ref()) {
            s.hub.unregister(*id);
        }
    };

    loop {
        let Some(strong) = shared.upgrade() else {
            return; // engine gone; transports just drop
        };

        // Drain queued outbound frames.
        if let Some((_, rx)) = feed.as_ref() {
            loop {
                match rx.try_recv() {
                    Ok(bytes) => {
                        if transport.send(&bytes).is_err() {
                            exit(&shared, &feed);
                            return;
                        }
                        last_beat = Instant::now();
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        exit(&shared, &feed);
                        return;
                    }
                }
            }
        }

        // Absorb one inbound message, if any.
        match transport.recv(POLL_EVERY) {
            Ok(Some(payload)) => match ReplMsg::decode(&payload) {
                Ok(ReplMsg::Hello {
                    term,
                    last_lsn,
                    needs_snapshot,
                }) => {
                    let response = crate::serve_hello(
                        &strong,
                        term,
                        last_lsn,
                        needs_snapshot,
                        &mut feed,
                        &acked,
                        &alive,
                    );
                    match response {
                        Ok(bytes) => {
                            if transport.send(&bytes).is_err() {
                                exit(&shared, &feed);
                                return;
                            }
                            last_beat = Instant::now();
                        }
                        Err(_fenced) => {
                            exit(&shared, &feed);
                            return;
                        }
                    }
                }
                Ok(ReplMsg::Ack { term, applied_lsn }) => {
                    strong.hub.acks_received.fetch_add(1, Ordering::Relaxed);
                    if term > strong.hub.term() {
                        // The cluster moved on without us: we are the
                        // zombie. Stop streaming to this (new-term)
                        // replica immediately.
                        strong.hub.feeds_fenced.fetch_add(1, Ordering::Relaxed);
                        exit(&shared, &feed);
                        return;
                    }
                    acked.fetch_max(applied_lsn, Ordering::SeqCst);
                }
                Ok(_) => {}  // primaries ignore primary-role messages
                Err(_) => {} // corrupt inbound message; replica will resync
            },
            Ok(None) => {}
            Err(_) => {
                exit(&shared, &feed);
                return;
            }
        }

        // Heartbeat when the stream is idle.
        if feed.is_some() && last_beat.elapsed() >= HEARTBEAT_EVERY {
            let beat = ReplMsg::Heartbeat {
                term: strong.hub.term(),
                last_lsn: strong.hub.last_lsn(),
            }
            .encode();
            drop(strong);
            if transport.send(&beat).is_err() {
                exit(&shared, &feed);
                return;
            }
            if let Some(s) = shared.upgrade() {
                s.hub.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
            }
            last_beat = Instant::now();
        }
    }
}

// ---------------------------------------------------------------------------
// Replica side
// ---------------------------------------------------------------------------

/// Configuration for a [`Replica`]: the schema-level inputs the WAL does
/// not carry (mirroring [`Engine::recover`]) plus replication tuning.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Denial constraints — must match the primary's.
    pub constraints: Vec<DenialConstraint>,
    /// Foreign keys — must match the primary's.
    pub foreign_keys: Vec<ForeignKey>,
    /// Answer-mode options replica sessions run with.
    pub options: HippoOptions,
    /// Behind the primary with no progress for this long → send a
    /// resync `Hello` (covers dropped frames the gap check alone would
    /// only catch on the *next* delivery).
    pub resync_after: Duration,
}

impl ReplicaConfig {
    /// A replica with the given constraints and default tuning.
    pub fn new(constraints: Vec<DenialConstraint>) -> ReplicaConfig {
        ReplicaConfig {
            constraints,
            foreign_keys: Vec::new(),
            options: HippoOptions::default(),
            resync_after: Duration::from_millis(100),
        }
    }
}

/// What [`Replica::promote`] did.
#[derive(Debug, Clone)]
pub struct PromotionReport {
    /// The new fencing term the promoted engine carries.
    pub term: u64,
    /// The committed prefix the promoted state holds.
    pub applied_lsn: u64,
    /// Frames the replica applied over its lifetime.
    pub frames_applied: u64,
}

struct Applier {
    hippo: Option<Hippo>,
    applied_lsn: u64,
}

pub(crate) struct ReplState {
    epoch: RwLock<Option<Arc<Epoch>>>,
    applier: Mutex<Applier>,
    /// Highest LSN whose effects are visible in the published epoch.
    /// Trails `Applier::applied_lsn` during the redetect+freeze window;
    /// staleness reports this one, because a session opened *now* sees
    /// exactly this much of the log.
    published_lsn: AtomicU64,
    term: AtomicU64,
    primary_lsn: AtomicU64,
    stop: AtomicBool,
    broken: Mutex<Option<EngineError>>,
    /// Last instant the replica knew it was caught up (applied ==
    /// primary horizon); `lag_time` is the age of this.
    caught_up_at: Mutex<Instant>,
    last_heard: Mutex<Option<Instant>>,
    epochs_published: AtomicU64,
    frames_applied: AtomicU64,
    ops_applied: AtomicU64,
    frames_fenced: AtomicU64,
    msgs_corrupt: AtomicU64,
    gaps_detected: AtomicU64,
    resync_requests: AtomicU64,
    snapshots_loaded: AtomicU64,
    disconnects: AtomicU64,
    sources: AtomicU64,
}

impl ReplState {
    fn term(&self) -> u64 {
        self.term.load(Ordering::SeqCst)
    }

    fn staleness(&self) -> Staleness {
        let applied = self.published_lsn.load(Ordering::SeqCst);
        let primary = self.primary_lsn.load(Ordering::SeqCst).max(applied);
        Staleness {
            term: self.term(),
            applied_lsn: applied,
            primary_lsn: primary,
            lsn_lag: primary - applied,
            lag_time: self.caught_up_at.lock().unwrap().elapsed(),
        }
    }

    fn mark_caught_up_if_current(&self) {
        let applied = self.published_lsn.load(Ordering::SeqCst);
        if applied >= self.primary_lsn.load(Ordering::SeqCst) {
            *self.caught_up_at.lock().unwrap() = Instant::now();
        }
    }
}

/// A read replica: replays the primary's committed WAL frames into its
/// own published epochs. Serves reads and CQA (with surfaced
/// [`Staleness`]), refuses writes with [`ErrorKind::NotPrimary`]
/// (hippo_engine::ErrorKind::NotPrimary), and can be promoted to a
/// fresh primary with a bumped fencing term.
pub struct Replica {
    state: Arc<ReplState>,
    attach_tx: mpsc::Sender<Box<dyn Transport>>,
    worker: Option<std::thread::JoinHandle<()>>,
    config: ReplicaConfig,
}

impl Replica {
    /// Start a replica with no transport attached yet (see
    /// [`Replica::attach`]).
    pub fn new(config: ReplicaConfig) -> Replica {
        let state = Arc::new(ReplState {
            epoch: RwLock::new(None),
            applier: Mutex::new(Applier {
                hippo: None,
                applied_lsn: 0,
            }),
            published_lsn: AtomicU64::new(0),
            term: AtomicU64::new(0),
            primary_lsn: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            broken: Mutex::new(None),
            caught_up_at: Mutex::new(Instant::now()),
            last_heard: Mutex::new(None),
            epochs_published: AtomicU64::new(0),
            frames_applied: AtomicU64::new(0),
            ops_applied: AtomicU64::new(0),
            frames_fenced: AtomicU64::new(0),
            msgs_corrupt: AtomicU64::new(0),
            gaps_detected: AtomicU64::new(0),
            resync_requests: AtomicU64::new(0),
            snapshots_loaded: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            sources: AtomicU64::new(0),
        });
        let (attach_tx, attach_rx) = mpsc::channel();
        let worker = {
            let state = Arc::clone(&state);
            let config = config.clone();
            std::thread::Builder::new()
                .name("hippo-replica".into())
                .spawn(move || replica_loop(state, config, attach_rx))
                .expect("spawn replica worker")
        };
        Replica {
            state,
            attach_tx,
            worker: Some(worker),
            config,
        }
    }

    /// Start a replica and attach its first transport.
    pub fn start(transport: Box<dyn Transport>, config: ReplicaConfig) -> Replica {
        let r = Replica::new(config);
        r.attach(transport);
        r
    }

    /// Attach a(nother) transport to a primary. The replica sends its
    /// `Hello` (resuming from its applied LSN, or requesting a snapshot
    /// if it has no state) and begins replaying. Multiple live sources
    /// are tolerated — fencing terms arbitrate, which is exactly the
    /// zombie-primary scenario.
    pub fn attach(&self, transport: Box<dyn Transport>) {
        // If the worker exited (only possible via stop/promote), the
        // send fails harmlessly.
        let _ = self.attach_tx.send(transport);
    }

    /// Open a read session pinned to the replica's current epoch.
    /// Errors until the first snapshot/frame batch has been applied.
    pub fn session(&self) -> Result<ReplicaSession, EngineError> {
        let epoch = self
            .state
            .epoch
            .read()
            .unwrap()
            .clone()
            .ok_or_else(|| EngineError::new("replica: no state replicated yet"))?;
        Ok(ReplicaSession {
            state: Arc::clone(&self.state),
            options: self.config.options.clone(),
            epoch,
        })
    }

    /// The replica's current published epoch, if any.
    pub fn current_epoch(&self) -> Option<Arc<Epoch>> {
        self.state.epoch.read().unwrap().clone()
    }

    /// The fencing term this replica follows (0 until first contact).
    pub fn term(&self) -> u64 {
        self.state.term()
    }

    /// Current staleness relative to the primary's last known horizon.
    pub fn staleness(&self) -> Staleness {
        self.state.staleness()
    }

    /// The divergence/apply error that broke this replica, if any. A
    /// broken replica keeps serving its last good epoch but refuses
    /// promotion.
    pub fn broken(&self) -> Option<EngineError> {
        self.state.broken.lock().unwrap().clone()
    }

    /// Point-in-time replica counters.
    pub fn stats(&self) -> ReplicaStats {
        let s = &self.state;
        let st = s.staleness();
        ReplicaStats {
            term: st.term,
            applied_lsn: st.applied_lsn,
            primary_lsn: st.primary_lsn,
            lsn_lag: st.lsn_lag,
            lag_time: st.lag_time,
            epochs_published: s.epochs_published.load(Ordering::Relaxed),
            frames_applied: s.frames_applied.load(Ordering::Relaxed),
            ops_applied: s.ops_applied.load(Ordering::Relaxed),
            frames_fenced: s.frames_fenced.load(Ordering::Relaxed),
            msgs_corrupt: s.msgs_corrupt.load(Ordering::Relaxed),
            gaps_detected: s.gaps_detected.load(Ordering::Relaxed),
            resync_requests: s.resync_requests.load(Ordering::Relaxed),
            snapshots_loaded: s.snapshots_loaded.load(Ordering::Relaxed),
            disconnects: s.disconnects.load(Ordering::Relaxed),
            sources: s.sources.load(Ordering::Relaxed) as usize,
            has_state: s.epoch.read().unwrap().is_some(),
            broken: s.broken.lock().unwrap().is_some(),
        }
    }

    /// Failover: finish replaying every received committed frame, bump
    /// the fencing term, and stand up a fresh [`Engine`] (durable under
    /// `durability` if given — its log starts a new LSN space; the new
    /// term is what disambiguates it). Frames the dead primary never
    /// transmitted are gone — the promoted state is exactly the
    /// committed prefix this replica applied, which the caller can (and
    /// the E15 harness does) verify bit-identical against an oracle.
    ///
    /// The old primary, should it come back, is fenced: its frames
    /// carry the previous term and every replica following the new
    /// primary rejects them.
    pub fn promote(
        mut self,
        config: EngineConfig,
        durability: Option<DurabilityConfig>,
    ) -> Result<(Engine, PromotionReport), EngineError> {
        // Stop the worker; it drains already-received messages first,
        // so the committed prefix is fully replayed before we take the
        // state.
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        if let Some(e) = self.state.broken.lock().unwrap().clone() {
            return Err(EngineError::new(format!(
                "promote: replica is broken and cannot be trusted: {}",
                e.message
            )));
        }
        let mut applier = self.state.applier.lock().unwrap();
        let hippo = applier.hippo.take().ok_or_else(|| {
            EngineError::new("promote: replica never received a snapshot; nothing to promote")
        })?;
        let report = PromotionReport {
            term: self.state.term() + 1,
            applied_lsn: applier.applied_lsn,
            frames_applied: self.state.frames_applied.load(Ordering::Relaxed),
        };
        drop(applier);
        let engine = match durability {
            Some(d) => Engine::new_durable(hippo, config, d)?,
            None => Engine::new(hippo, config)?,
        };
        engine.shared.hub.set_term(report.term);
        Ok((engine, report))
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

/// A reader session on a [`Replica`], pinned to one replayed epoch.
/// The lock-free data path of [`crate::Session`] without the admission
/// gate (replicas are read-scale fan-out; admission stays a primary
/// concern).
pub struct ReplicaSession {
    state: Arc<ReplState>,
    epoch: Arc<Epoch>,
    options: HippoOptions,
}

impl ReplicaSession {
    /// The epoch this session reads from.
    pub fn epoch(&self) -> &Arc<Epoch> {
        &self.epoch
    }

    /// Re-pin to the replica's latest replayed epoch.
    pub fn refresh(&mut self) {
        if let Some(e) = self.state.epoch.read().unwrap().clone() {
            self.epoch = e;
        }
    }

    /// Mutable access to the session's answer-mode options.
    pub fn options_mut(&mut self) -> &mut HippoOptions {
        &mut self.options
    }

    /// How stale this replica is right now (not the pinned epoch: the
    /// replica's live applied position vs the primary's last known
    /// horizon).
    pub fn staleness(&self) -> Staleness {
        self.state.staleness()
    }

    /// Run a plain SQL `SELECT` against the pinned epoch.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult, EngineError> {
        let gov = self.options.governance();
        self.epoch.frozen.query_governed(sql, gov.budget_ref())
    }

    /// Compute consistent answers on the pinned epoch (sorted rows).
    pub fn consistent_answers(&mut self, query: &SjudQuery) -> Result<Vec<Row>, EngineError> {
        Ok(self.consistent_answers_governed(query)?.rows)
    }

    /// The governed CQA entry point on the pinned epoch.
    pub fn consistent_answers_governed(
        &mut self,
        query: &SjudQuery,
    ) -> Result<ConsistentAnswer, EngineError> {
        self.epoch
            .frozen
            .consistent_answers_with(query, &self.options)
    }

    /// Replicas never accept writes: always
    /// [`EngineError::not_primary`] carrying the replica's current
    /// fencing term, so the client knows which primary generation to
    /// resubmit to.
    pub fn write(&self, _ops: Vec<WriteOp>) -> Result<WriteReceipt, EngineError> {
        Err(EngineError::not_primary(self.state.term()))
    }
}

// ---------------------------------------------------------------------------
// Replica worker
// ---------------------------------------------------------------------------

struct Source {
    transport: Box<dyn Transport>,
}

fn is_corrupt_transport_err(e: &EngineError) -> bool {
    e.message.contains("crc") || e.message.contains("corrupt")
}

fn hello_msg(state: &ReplState) -> Vec<u8> {
    let applier = state.applier.lock().unwrap();
    ReplMsg::Hello {
        term: state.term(),
        last_lsn: applier.applied_lsn,
        needs_snapshot: applier.hippo.is_none(),
    }
    .encode()
}

fn replica_loop(
    state: Arc<ReplState>,
    config: ReplicaConfig,
    attach_rx: mpsc::Receiver<Box<dyn Transport>>,
) {
    let mut sources: Vec<Source> = Vec::new();
    let mut last_progress = Instant::now();

    loop {
        let stopping = state.stop.load(Ordering::SeqCst);

        // Adopt newly attached transports (greet each immediately).
        while let Ok(transport) = attach_rx.try_recv() {
            let mut src = Source { transport };
            if src.transport.send(&hello_msg(&state)).is_ok() {
                sources.push(src);
            } else {
                state.disconnects.fetch_add(1, Ordering::Relaxed);
            }
        }
        state.sources.store(sources.len() as u64, Ordering::Relaxed);

        if stopping {
            // Final drain: apply whatever is already queued on each
            // source so promote() sees the full received prefix, then
            // exit.
            for src in sources.iter_mut() {
                while let Ok(Some(payload)) = src.transport.recv(Duration::from_millis(1)) {
                    handle_message(&state, &config, &mut src.transport, &payload);
                }
            }
            return;
        }

        if sources.is_empty() {
            std::thread::sleep(POLL_EVERY);
            continue;
        }

        let mut made_progress = false;
        let mut dead: Vec<usize> = Vec::new();
        for (i, src) in sources.iter_mut().enumerate() {
            match src.transport.recv(POLL_EVERY) {
                Ok(Some(payload)) => {
                    if handle_message(&state, &config, &mut src.transport, &payload) {
                        made_progress = true;
                    }
                }
                Ok(None) => {}
                Err(e) if is_corrupt_transport_err(&e) => {
                    // One mangled frame; the (message-oriented) link is
                    // still aligned. Count it and ask for a resync — the
                    // lost message may have carried frames.
                    state.msgs_corrupt.fetch_add(1, Ordering::Relaxed);
                    state.resync_requests.fetch_add(1, Ordering::Relaxed);
                    if src.transport.send(&hello_msg(&state)).is_err() {
                        dead.push(i);
                    }
                }
                Err(_) => dead.push(i),
            }
        }
        for &i in dead.iter().rev() {
            sources.remove(i);
            state.disconnects.fetch_add(1, Ordering::Relaxed);
        }

        if made_progress {
            last_progress = Instant::now();
        } else {
            // Behind with nothing arriving: dropped frames leave no gap
            // to detect until the *next* delivery, so a timer-driven
            // resync closes the hole.
            let st = state.staleness();
            if st.lsn_lag > 0 && last_progress.elapsed() >= config.resync_after {
                state.resync_requests.fetch_add(1, Ordering::Relaxed);
                let hello = hello_msg(&state);
                for src in sources.iter_mut() {
                    let _ = src.transport.send(&hello);
                }
                last_progress = Instant::now();
            }
        }
    }
}

/// Handle one inbound message. Returns whether replication state
/// advanced (frames applied or a snapshot loaded).
fn handle_message(
    state: &ReplState,
    config: &ReplicaConfig,
    transport: &mut Box<dyn Transport>,
    payload: &[u8],
) -> bool {
    let msg = match ReplMsg::decode(payload) {
        Ok(m) => m,
        Err(_) => {
            state.msgs_corrupt.fetch_add(1, Ordering::Relaxed);
            return false;
        }
    };
    *state.last_heard.lock().unwrap() = Some(Instant::now());

    let msg_term = match &msg {
        ReplMsg::Snapshot { term, .. }
        | ReplMsg::Frames { term, .. }
        | ReplMsg::Heartbeat { term, .. }
        | ReplMsg::Hello { term, .. }
        | ReplMsg::Ack { term, .. } => *term,
    };
    let cur = state.term();
    if msg_term < cur {
        // Fencing: a zombie ex-primary. Reject the content and tell the
        // sender which term the cluster is on now.
        state.frames_fenced.fetch_add(1, Ordering::Relaxed);
        let applied = state.applier.lock().unwrap().applied_lsn;
        let _ = transport.send(
            &ReplMsg::Ack {
                term: cur,
                applied_lsn: applied,
            }
            .encode(),
        );
        return false;
    }
    if msg_term > cur {
        state.term.store(msg_term, Ordering::SeqCst);
    }

    match msg {
        ReplMsg::Snapshot {
            last_lsn, catalog, ..
        } => {
            let loaded = load_snapshot(state, config, &catalog, last_lsn);
            state.primary_lsn.fetch_max(last_lsn, Ordering::SeqCst);
            ack(state, transport);
            state.mark_caught_up_if_current();
            loaded
        }
        ReplMsg::Frames { frames, .. } => {
            let advanced = apply_frames(state, &frames, transport);
            if let Some(last) = frames.last() {
                state.primary_lsn.fetch_max(last.lsn, Ordering::SeqCst);
            }
            ack(state, transport);
            state.mark_caught_up_if_current();
            advanced
        }
        ReplMsg::Heartbeat { last_lsn, .. } => {
            state.primary_lsn.fetch_max(last_lsn, Ordering::SeqCst);
            state.mark_caught_up_if_current();
            false
        }
        // Replicas ignore replica-role messages.
        ReplMsg::Hello { .. } | ReplMsg::Ack { .. } => false,
    }
}

fn ack(state: &ReplState, transport: &mut Box<dyn Transport>) {
    let applied = state.applier.lock().unwrap().applied_lsn;
    let _ = transport.send(
        &ReplMsg::Ack {
            term: state.term(),
            applied_lsn: applied,
        }
        .encode(),
    );
}

fn mark_broken(state: &ReplState, e: EngineError) {
    let mut broken = state.broken.lock().unwrap();
    if broken.is_none() {
        *broken = Some(e);
    }
}

/// Build a fresh Hippo from a shipped catalog image (full conflict
/// detection — the snapshot carries data, not derived state) and
/// publish it.
fn load_snapshot(state: &ReplState, config: &ReplicaConfig, catalog: &[u8], lsn: u64) -> bool {
    let built = catch_unwind(AssertUnwindSafe(|| -> Result<Hippo, EngineError> {
        let catalog = codec::decode_catalog(catalog)?;
        let db = Database::from_catalog(catalog);
        let mut hippo =
            Hippo::with_foreign_keys(db, config.constraints.clone(), config.foreign_keys.clone())?;
        hippo.options = config.options.clone();
        Ok(hippo)
    }));
    match built {
        Ok(Ok(hippo)) => {
            {
                let mut applier = state.applier.lock().unwrap();
                applier.hippo = Some(hippo);
                applier.applied_lsn = lsn;
            }
            state.snapshots_loaded.fetch_add(1, Ordering::Relaxed);
            publish(state)
        }
        Ok(Err(e)) => {
            mark_broken(state, e);
            false
        }
        Err(p) => {
            mark_broken(
                state,
                EngineError::worker_panic("replica", 0, &panic_message(p.as_ref())),
            );
            false
        }
    }
}

/// Apply one shipped batch with recovery's discipline: contiguous LSNs,
/// verified tuple ids, abandoned frames skipped. Returns whether any
/// frame landed.
fn apply_frames(state: &ReplState, frames: &[Frame], transport: &mut Box<dyn Transport>) -> bool {
    let mut applier = state.applier.lock().unwrap();
    if applier.hippo.is_none() {
        // Frames without a base image (the Hello/Snapshot raced): ask
        // for the snapshot again.
        drop(applier);
        state.gaps_detected.fetch_add(1, Ordering::Relaxed);
        state.resync_requests.fetch_add(1, Ordering::Relaxed);
        let _ = transport.send(&hello_msg(state));
        return false;
    }
    let mut landed = 0u64;
    let mut ops_landed = 0u64;
    for frame in frames {
        if frame.lsn <= applier.applied_lsn {
            continue; // duplicate (resync overlap): already applied
        }
        if frame.lsn != applier.applied_lsn + 1 {
            // A hole — frames were dropped. Never skip: resync from the
            // last applied position.
            state.gaps_detected.fetch_add(1, Ordering::Relaxed);
            state.resync_requests.fetch_add(1, Ordering::Relaxed);
            let hello = {
                ReplMsg::Hello {
                    term: state.term(),
                    last_lsn: applier.applied_lsn,
                    needs_snapshot: false,
                }
                .encode()
            };
            let _ = transport.send(&hello);
            break;
        }
        if frame.kind == FrameKind::Abandoned {
            // Audit record: advances the LSN, touches no data.
            applier.applied_lsn = frame.lsn;
            continue;
        }
        let hippo = applier.hippo.as_mut().expect("checked above");
        let applied = catch_unwind(AssertUnwindSafe(|| apply_frame(hippo, frame)));
        match applied {
            Ok(Ok(n)) => {
                applier.applied_lsn = frame.lsn;
                landed += 1;
                ops_landed += n;
            }
            Ok(Err(e)) => {
                mark_broken(state, e);
                break;
            }
            Err(p) => {
                mark_broken(
                    state,
                    EngineError::worker_panic("replica", 0, &panic_message(p.as_ref())),
                );
                break;
            }
        }
    }
    if landed == 0 {
        return false;
    }
    // One reconciliation + publish per shipped batch (the replica's
    // group commit).
    let hippo = applier.hippo.as_mut().expect("frames landed");
    let finish = catch_unwind(AssertUnwindSafe(|| -> Result<(), EngineError> {
        hippo.redetect()?;
        Ok(())
    }));
    drop(applier);
    match finish {
        Ok(Ok(())) => {
            state.frames_applied.fetch_add(landed, Ordering::Relaxed);
            state.ops_applied.fetch_add(ops_landed, Ordering::Relaxed);
            publish(state)
        }
        Ok(Err(e)) => {
            mark_broken(state, e);
            false
        }
        Err(p) => {
            mark_broken(
                state,
                EngineError::worker_panic("replica", 0, &panic_message(p.as_ref())),
            );
            false
        }
    }
}

fn apply_frame(hippo: &mut Hippo, frame: &Frame) -> Result<u64, EngineError> {
    let mut ops = 0u64;
    for op in &frame.ops {
        match op {
            WalOp::Insert { table, rows, tids } => {
                let got = hippo.insert_tuples(table, rows.clone())?;
                if got != *tids {
                    return Err(diverged(format!(
                        "replica frame {} insert into {table} assigned ids {:?} \
                         but the primary recorded {:?}",
                        frame.lsn,
                        got.iter().map(|t| t.0).collect::<Vec<_>>(),
                        tids.iter().map(|t| t.0).collect::<Vec<_>>(),
                    )));
                }
            }
            WalOp::Delete { table, tids } => {
                {
                    let t = hippo.db().catalog().table(table).map_err(|_| {
                        diverged(format!(
                            "replica frame {} deletes from missing table {table}",
                            frame.lsn
                        ))
                    })?;
                    for tid in tids {
                        if t.get(*tid).is_none() {
                            return Err(diverged(format!(
                                "replica frame {} deletes absent tuple {} from {table}",
                                frame.lsn, tid.0
                            )));
                        }
                    }
                }
                hippo.delete_tuples(table, tids)?;
            }
            WalOp::Update { table, updates } => {
                hippo.update_tuples(table, updates.clone())?;
            }
        }
        ops += 1;
    }
    Ok(ops)
}

/// Freeze the applier's state and publish it as the replica's next
/// epoch.
fn publish(state: &ReplState) -> bool {
    let mut applier = state.applier.lock().unwrap();
    let frozen_lsn = applier.applied_lsn;
    let Some(hippo) = applier.hippo.as_mut() else {
        return false;
    };
    let frozen = match catch_unwind(AssertUnwindSafe(|| hippo.freeze())) {
        Ok(Ok(f)) => f,
        Ok(Err(e)) => {
            mark_broken(state, e);
            return false;
        }
        Err(p) => {
            mark_broken(
                state,
                EngineError::worker_panic("replica", 0, &panic_message(p.as_ref())),
            );
            return false;
        }
    };
    drop(applier);
    let id = state.epochs_published.fetch_add(1, Ordering::Relaxed) + 1;
    let epoch = Arc::new(Epoch {
        id,
        frozen,
        writes_applied: state.frames_applied.load(Ordering::Relaxed),
        published_at: Instant::now(),
    });
    *state.epoch.write().unwrap() = Some(epoch);
    // Only now do readers see the frames: advertise the new horizon.
    state.published_lsn.fetch_max(frozen_lsn, Ordering::SeqCst);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hippo_engine::{TupleId, Value};

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame {
                lsn: 4,
                kind: FrameKind::Commit,
                ops: vec![WalOp::Insert {
                    table: "t".into(),
                    rows: vec![vec![Value::Int(1), Value::text("x")]],
                    tids: vec![TupleId(9)],
                }],
            },
            Frame {
                lsn: 5,
                kind: FrameKind::Abandoned,
                ops: vec![],
            },
        ]
    }

    #[test]
    fn messages_roundtrip() {
        for msg in [
            ReplMsg::Hello {
                term: 3,
                last_lsn: 41,
                needs_snapshot: true,
            },
            ReplMsg::Snapshot {
                term: 2,
                last_lsn: 10,
                catalog: vec![1, 2, 3],
            },
            ReplMsg::Frames {
                term: 7,
                frames: sample_frames(),
            },
            ReplMsg::Heartbeat {
                term: 1,
                last_lsn: 99,
            },
            ReplMsg::Ack {
                term: 4,
                applied_lsn: 17,
            },
        ] {
            let bytes = msg.encode();
            assert_eq!(ReplMsg::decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn corrupt_messages_error_never_panic() {
        let bytes = ReplMsg::Frames {
            term: 7,
            frames: sample_frames(),
        }
        .encode();
        for cut in 0..bytes.len() {
            let _ = ReplMsg::decode(&bytes[..cut]);
        }
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            let _ = ReplMsg::decode(&b);
        }
        assert!(ReplMsg::decode(&[]).is_err());
        assert!(ReplMsg::decode(&[99]).is_err());
    }

    #[test]
    fn out_of_order_frames_are_rejected_at_decode() {
        let mut frames = sample_frames();
        frames.reverse();
        let bytes = ReplMsg::Frames { term: 1, frames }.encode();
        let err = ReplMsg::decode(&bytes).unwrap_err();
        assert!(err.message.contains("LSN order"), "{err}");
    }
}
