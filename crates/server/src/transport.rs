//! The replication transport: length-prefixed, crc32-checked message
//! frames over an abstract byte channel.
//!
//! Every message travels in the same checked envelope the WAL uses
//! (`len u32 · crc32(payload) u32 · payload`, via
//! [`hippo_engine::codec::put_checked`] / [`codec::split_checked`]), so
//! a flipped bit anywhere on the wire is caught by the receiver before
//! any decoding happens. Two implementations ship:
//!
//! * [`ChannelTransport`] — an in-process `mpsc` pair carrying the
//!   *encoded* bytes (not the decoded messages), so byte-level
//!   corruption faults behave exactly as they would on a socket.
//!   Deterministic chaos tests live here.
//! * [`TcpTransport`] — `std::net::TcpStream`, blocking sends, timed
//!   receives with an internal reassembly buffer (a frame split across
//!   arbitrarily many segments is fine).
//!
//! # Fault injection
//!
//! A transport built `with_faults` consults the `repl:drop`,
//! `repl:corrupt`, `repl:delay` and `repl:disconnect` checkpoints — in
//! that order — on **every** frame send (see the catalog in
//! [`hippo_cqa::budget`]). The injected behavior follows the armed
//! [`FaultKind`]: `Drop` discards the frame while reporting success,
//! `Corrupt` flips a payload byte after the CRC was computed (the
//! receiver's checksum rejects it), `Delay` sleeps before sending, and
//! `Disconnect` poisons the transport so every later call fails — the
//! same shape as a peer vanishing mid-stream.

use hippo_cqa::budget::{FaultKind, Governance};
use hippo_engine::codec;
use hippo_engine::EngineError;
use std::io::{ErrorKind as IoKind, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A message payload larger than this is treated as a hostile or
/// desynced stream, not an allocation request. Matches the WAL's frame
/// bound.
pub const MAX_MESSAGE_LEN: u32 = 1 << 30;

fn transport_err(ctx: &str, detail: impl std::fmt::Display) -> EngineError {
    EngineError::new(format!("transport: {ctx}: {detail}"))
}

/// One end of a replication link. Messages are opaque byte payloads;
/// framing, checksums and fault injection live below this trait, so the
/// protocol layer ([`crate::replicate`]) is transport-agnostic.
pub trait Transport: Send {
    /// Send one message. `Ok(())` means the bytes were handed to the
    /// underlying channel — not that the peer processed them.
    fn send(&mut self, payload: &[u8]) -> Result<(), EngineError>;

    /// Receive one message, waiting up to `timeout`. `Ok(None)` means
    /// the wait elapsed with no complete frame; a checksum mismatch or
    /// a dead peer is an `Err` (the caller decides whether that is
    /// fatal or a resync trigger).
    fn recv(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, EngineError>;

    /// A human-readable peer label for diagnostics.
    fn peer(&self) -> String;
}

/// Per-send fault consultation shared by every transport impl: returns
/// what to do with the already-framed bytes.
enum SendAction {
    Send,
    DropSilently,
    Fail(EngineError),
}

fn apply_send_faults(faults: &Option<(Governance, usize)>, framed: &mut [u8]) -> SendAction {
    let Some((gov, shard)) = faults else {
        return SendAction::Send;
    };
    for point in ["repl:drop", "repl:corrupt", "repl:delay", "repl:disconnect"] {
        let Some(kind) = gov.take_fault(point, *shard) else {
            continue;
        };
        match kind {
            FaultKind::Drop => return SendAction::DropSilently,
            FaultKind::Corrupt => {
                // Flip a payload byte *after* the CRC was computed: the
                // receiver's checksum must catch it.
                if let Some(b) = framed.last_mut() {
                    *b ^= 0xFF;
                }
                return SendAction::Send;
            }
            FaultKind::Delay(d) => {
                std::thread::sleep(d);
                return SendAction::Send;
            }
            FaultKind::Disconnect => {
                return SendAction::Fail(transport_err(
                    "send",
                    format!("injected disconnect at {point}:{shard}"),
                ));
            }
            FaultKind::Panic => panic!("injected fault: panic at {point}:{shard}"),
            FaultKind::BudgetTrip => {
                return SendAction::Fail(EngineError::budget("repl", 0, 0));
            }
            FaultKind::ShortWrite => {
                // A channel message either arrives whole or not at all;
                // model the torn send as corruption the receiver sees.
                if let Some(b) = framed.last_mut() {
                    *b ^= 0xFF;
                }
                return SendAction::Send;
            }
        }
    }
    SendAction::Send
}

/// In-process transport: an `mpsc` pair per direction, carrying encoded
/// frame bytes. [`ChannelTransport::pair`] returns the two connected
/// ends.
pub struct ChannelTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    label: String,
    faults: Option<(Governance, usize)>,
    poisoned: bool,
}

impl ChannelTransport {
    /// A connected pair of in-process ends: what one `send`s the other
    /// `recv`s.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (atx, brx) = mpsc::channel();
        let (btx, arx) = mpsc::channel();
        (
            ChannelTransport {
                tx: atx,
                rx: arx,
                label: "chan:a".into(),
                faults: None,
                poisoned: false,
            },
            ChannelTransport {
                tx: btx,
                rx: brx,
                label: "chan:b".into(),
                faults: None,
                poisoned: false,
            },
        )
    }

    /// Arm fault injection on this end's send path (`gov` carries the
    /// plan; `shard` is the id the `repl:*` checkpoints fire with).
    pub fn with_faults(mut self, gov: Governance, shard: usize) -> ChannelTransport {
        self.faults = Some((gov, shard));
        self
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), EngineError> {
        if self.poisoned {
            return Err(transport_err("send", "transport disconnected"));
        }
        let mut framed = codec::encode_checked(payload);
        match apply_send_faults(&self.faults, &mut framed) {
            SendAction::Send => {}
            SendAction::DropSilently => return Ok(()),
            SendAction::Fail(e) => {
                self.poisoned = true;
                return Err(e);
            }
        }
        self.tx
            .send(framed)
            .map_err(|_| transport_err("send", "peer hung up"))
    }

    fn recv(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, EngineError> {
        if self.poisoned {
            return Err(transport_err("recv", "transport disconnected"));
        }
        let framed = match self.rx.recv_timeout(timeout) {
            Ok(bytes) => bytes,
            Err(mpsc::RecvTimeoutError::Timeout) => return Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(transport_err("recv", "peer hung up"));
            }
        };
        match codec::split_checked(&framed, MAX_MESSAGE_LEN) {
            Ok(Some((payload, consumed))) if consumed == framed.len() => Ok(Some(payload.to_vec())),
            // A channel message is exactly one frame; anything else —
            // short, trailing bytes, bad crc — is corruption.
            Ok(_) => Err(transport_err("recv", "corrupt frame (torn message)")),
            Err(e) => Err(transport_err("recv", e.message)),
        }
    }

    fn peer(&self) -> String {
        self.label.clone()
    }
}

/// TCP transport over one `std::net::TcpStream`: blocking sends, timed
/// receives. The receive side accumulates bytes until a whole checked
/// frame is present, so arbitrary segmentation on the wire is fine.
pub struct TcpTransport {
    stream: TcpStream,
    /// Bytes received but not yet assembled into a complete frame.
    inbox: Vec<u8>,
    faults: Option<(Governance, usize)>,
    poisoned: bool,
}

impl TcpTransport {
    /// Wrap an established stream. `TCP_NODELAY` is enabled so
    /// heartbeats and small frames are not coalesced behind Nagle.
    pub fn new(stream: TcpStream) -> Result<TcpTransport, EngineError> {
        stream
            .set_nodelay(true)
            .map_err(|e| transport_err("set_nodelay", e))?;
        Ok(TcpTransport {
            stream,
            inbox: Vec::new(),
            faults: None,
            poisoned: false,
        })
    }

    /// Connect to a listening peer.
    pub fn connect(addr: &str) -> Result<TcpTransport, EngineError> {
        let stream = TcpStream::connect(addr).map_err(|e| transport_err("connect", e))?;
        TcpTransport::new(stream)
    }

    /// Arm fault injection on this end's send path.
    pub fn with_faults(mut self, gov: Governance, shard: usize) -> TcpTransport {
        self.faults = Some((gov, shard));
        self
    }

    /// Try to pop one complete frame out of the inbox.
    fn take_frame(&mut self) -> Result<Option<Vec<u8>>, EngineError> {
        match codec::split_checked(&self.inbox, MAX_MESSAGE_LEN) {
            Ok(Some((payload, consumed))) => {
                let payload = payload.to_vec();
                self.inbox.drain(..consumed);
                Ok(Some(payload))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                // The stream is byte-oriented: after a bad envelope we
                // cannot find the next frame boundary, so the link is
                // unusable — unlike the message-oriented channel, where
                // one corrupt frame leaves the stream aligned.
                self.poisoned = true;
                Err(transport_err("recv", e.message))
            }
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), EngineError> {
        if self.poisoned {
            return Err(transport_err("send", "transport disconnected"));
        }
        let mut framed = codec::encode_checked(payload);
        match apply_send_faults(&self.faults, &mut framed) {
            SendAction::Send => {}
            SendAction::DropSilently => return Ok(()),
            SendAction::Fail(e) => {
                self.poisoned = true;
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                return Err(e);
            }
        }
        self.stream.write_all(&framed).map_err(|e| {
            self.poisoned = true;
            transport_err("send", e)
        })
    }

    fn recv(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, EngineError> {
        if self.poisoned {
            return Err(transport_err("recv", "transport disconnected"));
        }
        if let Some(frame) = self.take_frame()? {
            return Ok(Some(frame));
        }
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; 64 * 1024];
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            // A zero timeout would mean "block forever" to the OS.
            self.stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                .map_err(|e| transport_err("set_read_timeout", e))?;
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.poisoned = true;
                    return Err(transport_err("recv", "peer closed the connection"));
                }
                Ok(n) => {
                    self.inbox.extend_from_slice(&buf[..n]);
                    if let Some(frame) = self.take_frame()? {
                        return Ok(Some(frame));
                    }
                }
                Err(e) if e.kind() == IoKind::WouldBlock || e.kind() == IoKind::TimedOut => {
                    return Ok(None);
                }
                Err(e) if e.kind() == IoKind::Interrupted => {}
                Err(e) => {
                    self.poisoned = true;
                    return Err(transport_err("recv", e));
                }
            }
        }
    }

    fn peer(&self) -> String {
        self.stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp:disconnected".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hippo_cqa::budget::FaultPlan;
    use std::sync::Arc;

    fn gov_with(plan: FaultPlan) -> Governance {
        Governance {
            faults: Some(Arc::new(plan)),
            ..Governance::default()
        }
    }

    #[test]
    fn channel_roundtrip() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(b"hello").unwrap();
        a.send(b"world").unwrap();
        assert_eq!(
            b.recv(Duration::from_millis(50)).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(
            b.recv(Duration::from_millis(50)).unwrap().unwrap(),
            b"world"
        );
        assert!(b.recv(Duration::from_millis(5)).unwrap().is_none());
        b.send(b"ack").unwrap();
        assert_eq!(a.recv(Duration::from_millis(50)).unwrap().unwrap(), b"ack");
    }

    #[test]
    fn channel_hangup_is_structured() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert!(a.send(b"x").unwrap_err().message.contains("hung up"));
    }

    #[test]
    fn drop_fault_discards_silently() {
        let (a, mut b) = ChannelTransport::pair();
        let mut a = a.with_faults(
            gov_with(FaultPlan::new("repl:drop", None, FaultKind::Drop)),
            0,
        );
        a.send(b"lost").unwrap();
        a.send(b"kept").unwrap();
        assert_eq!(
            b.recv(Duration::from_millis(50)).unwrap().unwrap(),
            b"kept",
            "first frame dropped, second delivered (one-shot arm)"
        );
    }

    #[test]
    fn corrupt_fault_is_caught_by_receiver_crc() {
        let (a, mut b) = ChannelTransport::pair();
        let mut a = a.with_faults(
            gov_with(FaultPlan::new("repl", None, FaultKind::Corrupt)),
            0,
        );
        a.send(b"mangled").unwrap();
        let err = b.recv(Duration::from_millis(50)).unwrap_err();
        assert!(err.message.contains("crc"), "{err}");
        // The channel stays aligned: the next frame is fine.
        a.send(b"clean").unwrap();
        assert_eq!(
            b.recv(Duration::from_millis(50)).unwrap().unwrap(),
            b"clean"
        );
    }

    #[test]
    fn disconnect_fault_poisons_the_transport() {
        let (a, _b) = ChannelTransport::pair();
        let mut a = a.with_faults(
            gov_with(FaultPlan::new(
                "repl:disconnect",
                None,
                FaultKind::Disconnect,
            )),
            3,
        );
        let err = a.send(b"x").unwrap_err();
        assert!(err.message.contains("injected disconnect"), "{err}");
        assert!(a.send(b"y").is_err(), "poisoned for good");
        assert!(a.recv(Duration::from_millis(1)).is_err());
    }

    #[test]
    fn tcp_roundtrip_with_segmented_frames() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            let m = t.recv(Duration::from_secs(5)).unwrap().unwrap();
            t.send(&m).unwrap(); // echo
            let big = t.recv(Duration::from_secs(5)).unwrap().unwrap();
            t.send(&big).unwrap();
        });
        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        c.send(b"ping").unwrap();
        assert_eq!(c.recv(Duration::from_secs(5)).unwrap().unwrap(), b"ping");
        // A frame bigger than one read() buffer exercises reassembly.
        let big = vec![0xAB_u8; 200 * 1024];
        c.send(&big).unwrap();
        assert_eq!(c.recv(Duration::from_secs(5)).unwrap().unwrap(), big);
        server.join().unwrap();
    }

    #[test]
    fn tcp_peer_close_is_structured() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        drop(stream);
        let err = loop {
            match c.recv(Duration::from_millis(100)) {
                Ok(Some(_)) => panic!("no frame was ever sent"),
                Ok(None) => continue,
                Err(e) => break e,
            }
        };
        assert!(err.message.contains("closed"), "{err}");
    }
}
