//! The checksummed, length-prefixed write-ahead op log.
//!
//! One file (`wal.bin`) per durability directory:
//!
//! ```text
//! ┌────────────────────── header (12 bytes) ──────────────────────┐
//! │ magic "HIPPOWAL" · version u32                                │
//! ├──────────────────────── frame 0 ──────────────────────────────┤
//! │ len u32 · crc32(payload) u32 · payload (len bytes)            │
//! │   payload = lsn u64 · kind u8 · op count u32 · ops            │
//! ├──────────────────────── frame 1 … ────────────────────────────┤
//! ```
//!
//! A **frame** is one writer transaction's recorded ops plus the tuple
//! ids its inserts were assigned — written *after* the transaction has
//! fully applied and reconciled, fsync'd *before* the epoch publishes.
//! The fsync is the commit point: a frame on disk is a transaction the
//! recovered engine will replay; a transaction whose frame never
//! reached disk was never published, so losing it loses nothing a
//! reader could have seen. Group commit writes many frames with one
//! `write(2)` + one fsync.
//!
//! [`Wal::open`] scans the existing file on startup and **truncates a
//! torn or corrupt tail** (short frame, bad CRC, garbage length — all
//! the shapes a crash mid-write leaves behind) instead of failing:
//! everything before the first bad byte is intact by CRC, everything
//! after it was never acknowledged. Scanning never panics on any input.
//!
//! Fault points (see [`FaultPlan`](hippo_cqa::budget::FaultPlan)):
//! `wal:append` fires before bytes are written (`shortwrite` writes a
//! prefix of the batch, then fails — the torn frame a power loss
//! leaves); `wal:fsync` fires between write and sync, so a `panic`
//! there models dying with bytes in the page cache.

use hippo_cqa::budget::{FaultKind, Governance};
use hippo_engine::codec::{self, Reader};
use hippo_engine::{EngineError, Row, TupleId};
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// WAL file name inside a durability directory.
pub const WAL_FILE: &str = "wal.bin";

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"HIPPOWAL";
/// On-disk format version.
pub const WAL_VERSION: u32 = 1;
/// Header bytes before the first frame.
pub const HEADER_LEN: u64 = 12;
/// A frame payload larger than this is treated as tail corruption — no
/// legitimate transaction frames gigabytes.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

pub(crate) fn io_err(ctx: &str, e: std::io::Error) -> EngineError {
    EngineError::new(format!("wal: {ctx}: {e}"))
}

/// One logged mutation: the [`crate::WriteOp`] shape plus, for inserts,
/// the tuple ids the live engine assigned — replay asserts it gets the
/// same ids back, which catches any divergence between the recovered
/// slot structure and the one the log was written against.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Rows inserted, with their assigned ids (parallel to `rows`).
    Insert {
        table: String,
        rows: Vec<Row>,
        tids: Vec<TupleId>,
    },
    /// Tuples deleted by id.
    Delete { table: String, tids: Vec<TupleId> },
    /// Tuples updated in place.
    Update {
        table: String,
        updates: Vec<(TupleId, Row)>,
    },
}

/// What a frame records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A committed transaction: replayed on recovery.
    Commit,
    /// Ops a draining engine refused at admission — an audit record so
    /// a lossy shutdown leaves evidence of *what* was lost. Skipped by
    /// replay.
    Abandoned,
}

/// One decoded WAL frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Log sequence number: strictly increasing across the log's life,
    /// never reset by checkpoint truncation.
    pub lsn: u64,
    /// Commit (replayed) or abandoned-audit (skipped).
    pub kind: FrameKind,
    /// The transaction's ops in application order.
    pub ops: Vec<WalOp>,
}

fn encode_op(out: &mut Vec<u8>, op: &WalOp) {
    match op {
        WalOp::Insert { table, rows, tids } => {
            out.push(0);
            codec::put_u32(out, table.len() as u32);
            out.extend_from_slice(table.as_bytes());
            codec::put_u32(out, rows.len() as u32);
            for row in rows {
                codec::encode_row(out, row);
            }
            codec::put_u32(out, tids.len() as u32);
            for t in tids {
                codec::put_u32(out, t.0);
            }
        }
        WalOp::Delete { table, tids } => {
            out.push(1);
            codec::put_u32(out, table.len() as u32);
            out.extend_from_slice(table.as_bytes());
            codec::put_u32(out, tids.len() as u32);
            for t in tids {
                codec::put_u32(out, t.0);
            }
        }
        WalOp::Update { table, updates } => {
            out.push(2);
            codec::put_u32(out, table.len() as u32);
            out.extend_from_slice(table.as_bytes());
            codec::put_u32(out, updates.len() as u32);
            for (t, row) in updates {
                codec::put_u32(out, t.0);
                codec::encode_row(out, row);
            }
        }
    }
}

fn decode_str(r: &mut Reader<'_>) -> Result<String, EngineError> {
    let len = r.count(1)?;
    let bytes = r.take(len)?;
    std::str::from_utf8(bytes)
        .map(str::to_owned)
        .map_err(|_| EngineError::new("wal: invalid UTF-8 table name"))
}

fn decode_op(r: &mut Reader<'_>) -> Result<WalOp, EngineError> {
    match r.u8()? {
        0 => {
            let table = decode_str(r)?;
            let nrows = r.count(1)?;
            let rows = (0..nrows)
                .map(|_| codec::decode_row(r))
                .collect::<Result<Vec<Row>, _>>()?;
            let ntids = r.count(4)?;
            let tids = (0..ntids)
                .map(|_| Ok(TupleId(r.u32()?)))
                .collect::<Result<Vec<TupleId>, EngineError>>()?;
            // Abandoned-audit inserts carry no ids (none were ever
            // assigned); committed frames always record one per row.
            if !tids.is_empty() && tids.len() != rows.len() {
                return Err(EngineError::new("wal: insert tid/row count mismatch"));
            }
            Ok(WalOp::Insert { table, rows, tids })
        }
        1 => {
            let table = decode_str(r)?;
            let n = r.count(4)?;
            let tids = (0..n)
                .map(|_| Ok(TupleId(r.u32()?)))
                .collect::<Result<Vec<TupleId>, EngineError>>()?;
            Ok(WalOp::Delete { table, tids })
        }
        2 => {
            let table = decode_str(r)?;
            let n = r.count(5)?;
            let updates = (0..n)
                .map(|_| {
                    let t = TupleId(r.u32()?);
                    let row = codec::decode_row(r)?;
                    Ok((t, row))
                })
                .collect::<Result<Vec<(TupleId, Row)>, EngineError>>()?;
            Ok(WalOp::Update { table, updates })
        }
        _ => Err(EngineError::new("wal: unknown op tag")),
    }
}

/// Encode one frame's payload (everything the CRC covers). Public so
/// property tests can round-trip the codec without touching a file.
pub fn encode_frame_payload(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u64(&mut out, frame.lsn);
    out.push(match frame.kind {
        FrameKind::Commit => 1,
        FrameKind::Abandoned => 2,
    });
    codec::put_u32(&mut out, frame.ops.len() as u32);
    for op in &frame.ops {
        encode_op(&mut out, op);
    }
    out
}

/// Decode one frame payload; errors (never panics) on any malformed
/// input.
pub fn decode_frame_payload(payload: &[u8]) -> Result<Frame, EngineError> {
    let mut r = Reader::new(payload);
    let lsn = r.u64()?;
    let kind = match r.u8()? {
        1 => FrameKind::Commit,
        2 => FrameKind::Abandoned,
        _ => return Err(EngineError::new("wal: unknown frame kind")),
    };
    let nops = r.count(1)?;
    let ops = (0..nops)
        .map(|_| decode_op(&mut r))
        .collect::<Result<Vec<WalOp>, _>>()?;
    if !r.is_empty() {
        return Err(EngineError::new("wal: trailing bytes in frame"));
    }
    Ok(Frame { lsn, kind, ops })
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalScan {
    /// Every intact frame, in log order.
    pub frames: Vec<Frame>,
    /// Whether a torn/corrupt tail was found (and truncated).
    pub torn_tail: bool,
    /// Bytes discarded with the tail.
    pub truncated_bytes: u64,
}

/// Scan the committed-frame region of a WAL image (everything after the
/// header): every intact frame in order, plus the byte offset where the
/// intact prefix ends. Never panics on any input — a torn envelope, a
/// crc mismatch, an undecodable payload or a non-ascending LSN all just
/// end the scan.
fn scan_frames(body: &[u8]) -> (Vec<Frame>, usize) {
    let mut frames: Vec<Frame> = Vec::new();
    let mut pos = 0usize;
    let mut last_lsn = 0u64;
    // (torn, short, absurd length, or bit rot all just end the scan)
    while let Ok(Some((payload, consumed))) = codec::split_checked(&body[pos..], MAX_FRAME_LEN) {
        let Ok(frame) = decode_frame_payload(payload) else {
            break; // CRC matched but structure didn't decode: treat as tail
        };
        if frame.lsn <= last_lsn {
            break; // LSNs must ascend; a repeat means garbage
        }
        last_lsn = frame.lsn;
        pos += consumed;
        frames.push(frame);
    }
    (frames, pos)
}

/// The open write-ahead log: an append handle plus the bookkeeping to
/// keep appends atomic-per-batch (a failed append is truncated away
/// before the next one lands).
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// End of the last durably committed frame; everything past this
    /// offset is garbage from a failed append.
    len: u64,
    /// Next LSN to assign.
    next_lsn: u64,
    /// Highest LSN *not* present in the file (absorbed by a checkpoint
    /// or never written here). Frames with `lsn > floor_lsn` can be
    /// re-read for replication resync; older history is gone.
    floor_lsn: u64,
    /// Set while bytes past `len` may exist (mid-append, or after an
    /// append failed); cleared once the file is known clean again.
    dirty: bool,
}

impl Wal {
    /// Open (or create) the log in `dir`, scan every intact frame, and
    /// truncate any torn/corrupt tail so the next append lands on a
    /// clean boundary. Never panics on any file contents.
    pub fn open(dir: &Path) -> Result<(Wal, WalScan), EngineError> {
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err("read", e))?;

        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        codec::put_u32(&mut header, WAL_VERSION);

        if bytes.len() < HEADER_LEN as usize {
            // Empty, or a header torn by a crash during the very first
            // open. A strict prefix of the canonical header is that
            // torn case (nothing was ever committed); anything else is
            // a foreign file we refuse to clobber.
            if !header.starts_with(&bytes) {
                return Err(EngineError::new(format!(
                    "wal: {} is not a Hippo WAL (bad magic/version)",
                    path.display()
                )));
            }
            let truncated_bytes = bytes.len() as u64;
            file.set_len(0)
                .map_err(|e| io_err("reset torn header", e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| io_err("seek", e))?;
            file.write_all(&header)
                .map_err(|e| io_err("write header", e))?;
            file.sync_data().map_err(|e| io_err("fsync header", e))?;
            return Ok((
                Wal {
                    file,
                    path,
                    len: HEADER_LEN,
                    next_lsn: 1,
                    floor_lsn: 0,
                    dirty: false,
                },
                WalScan {
                    frames: Vec::new(),
                    torn_tail: truncated_bytes > 0,
                    truncated_bytes,
                },
            ));
        }
        if bytes[..HEADER_LEN as usize] != header[..] {
            // A full header that doesn't match is a foreign or
            // incompatible file — refuse loudly rather than silently
            // treating it as an empty log.
            return Err(EngineError::new(format!(
                "wal: {} is not a Hippo WAL (bad magic/version)",
                path.display()
            )));
        }

        let (frames, body_len) = scan_frames(&bytes[HEADER_LEN as usize..]);
        let valid_len = HEADER_LEN as usize + body_len;
        let floor_lsn = frames.first().map_or(0, |f| f.lsn - 1);
        let last_lsn = frames.last().map_or(0, |f| f.lsn);
        let torn = valid_len < bytes.len();
        let truncated_bytes = (bytes.len() - valid_len) as u64;
        if torn {
            file.set_len(valid_len as u64)
                .map_err(|e| io_err("truncate torn tail", e))?;
            file.sync_data().map_err(|e| io_err("fsync truncate", e))?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))
            .map_err(|e| io_err("seek", e))?;
        Ok((
            Wal {
                file,
                path,
                len: valid_len as u64,
                next_lsn: last_lsn + 1,
                floor_lsn,
                dirty: false,
            },
            WalScan {
                frames,
                torn_tail: torn,
                truncated_bytes,
            },
        ))
    }

    /// The LSN the next appended frame will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Highest LSN *not* present in this file (absorbed by a checkpoint
    /// before it, or never written here). Frames with `lsn > floor_lsn`
    /// up to `next_lsn - 1` can be re-read via
    /// [`Wal::read_frames_since`].
    pub fn floor_lsn(&self) -> u64 {
        self.floor_lsn
    }

    /// Tell a freshly opened log that everything up to `lsn` was already
    /// absorbed by a checkpoint, so the LSN counter must continue past
    /// it even when the file itself is empty. Without this, a log
    /// truncated by a checkpoint and then reopened would hand out LSNs
    /// the checkpoint already covers — and replay would silently skip
    /// those committed frames. [`crate::recover::recover_dir`] calls it
    /// with the checkpoint's `last_lsn`.
    pub fn set_floor(&mut self, lsn: u64) {
        self.floor_lsn = self.floor_lsn.max(lsn);
        self.next_lsn = self.next_lsn.max(lsn + 1);
    }

    /// Committed log length in bytes (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Is the log empty (no committed frames)?
    pub fn is_empty(&self) -> bool {
        self.len == HEADER_LEN
    }

    /// Drop any garbage a previous failed append may have left past the
    /// committed end.
    fn make_clean(&mut self) -> Result<(), EngineError> {
        if self.dirty {
            self.file
                .set_len(self.len)
                .map_err(|e| io_err("truncate failed append", e))?;
            self.file
                .seek(SeekFrom::Start(self.len))
                .map_err(|e| io_err("seek", e))?;
            self.file
                .sync_data()
                .map_err(|e| io_err("fsync truncate", e))?;
            self.dirty = false;
        }
        Ok(())
    }

    /// Append one batch of transactions — one frame each, consecutive
    /// LSNs — with **one** write and **one** fsync (group commit), and
    /// return the assigned LSNs. On any failure nothing is committed:
    /// the partial bytes are truncated away before the next append.
    ///
    /// `gov` drives the `wal:append` / `wal:fsync` fault points.
    pub fn append(
        &mut self,
        batch: &[(FrameKind, Vec<WalOp>)],
        gov: &Governance,
    ) -> Result<Vec<u64>, EngineError> {
        self.make_clean()?;
        let mut buf = Vec::new();
        let mut lsns = Vec::with_capacity(batch.len());
        for (i, (kind, ops)) in batch.iter().enumerate() {
            let frame = Frame {
                lsn: self.next_lsn + i as u64,
                kind: *kind,
                ops: ops.clone(),
            };
            lsns.push(frame.lsn);
            let payload = encode_frame_payload(&frame);
            codec::put_checked(&mut buf, &payload);
        }

        match gov.take_fault("wal:append", 0) {
            Some(FaultKind::Panic) => panic!("injected fault: panic at wal:append"),
            Some(FaultKind::Delay(d)) => std::thread::sleep(d),
            Some(FaultKind::BudgetTrip) => return Err(EngineError::budget("wal:append", 0, 0)),
            Some(FaultKind::ShortWrite) => {
                // The torn frame a power loss mid-write leaves behind:
                // half the batch's bytes land, then the append fails.
                self.dirty = true;
                let half = &buf[..buf.len() / 2];
                let _ = self.file.write_all(half);
                return Err(EngineError::new(
                    "wal: injected short write at wal:append (frame torn)",
                ));
            }
            Some(k @ (FaultKind::Drop | FaultKind::Corrupt | FaultKind::Disconnect)) => {
                // Transport-only kinds armed at a file stage: loud, so
                // a misaimed fault plan never passes silently.
                return Err(EngineError::new(format!(
                    "wal: injected fault: {k:?} at wal:append \
                     (transport-only kind; arm it at a repl stage)"
                )));
            }
            None => {}
        }

        self.dirty = true;
        self.file.write_all(&buf).map_err(|e| io_err("append", e))?;

        match gov.take_fault("wal:fsync", 0) {
            Some(FaultKind::Panic) => panic!("injected fault: panic at wal:fsync"),
            Some(FaultKind::Delay(d)) => std::thread::sleep(d),
            Some(
                FaultKind::BudgetTrip
                | FaultKind::ShortWrite
                | FaultKind::Drop
                | FaultKind::Corrupt
                | FaultKind::Disconnect,
            ) => {
                // Bytes written but never synced: not committed.
                return Err(EngineError::budget("wal:fsync", 0, 0));
            }
            None => {}
        }

        self.file.sync_data().map_err(|e| io_err("fsync", e))?;
        self.len += buf.len() as u64;
        self.next_lsn += batch.len() as u64;
        self.dirty = false;
        Ok(lsns)
    }

    /// Discard every frame (after a checkpoint has absorbed them): the
    /// file shrinks back to its header. LSNs keep ascending across
    /// truncations so a frame's LSN is unique for the log's lifetime.
    pub fn truncate_all(&mut self) -> Result<(), EngineError> {
        self.file
            .set_len(HEADER_LEN)
            .map_err(|e| io_err("truncate", e))?;
        self.file
            .seek(SeekFrom::Start(HEADER_LEN))
            .map_err(|e| io_err("seek", e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("fsync truncate", e))?;
        self.len = HEADER_LEN;
        self.floor_lsn = self.next_lsn - 1;
        self.dirty = false;
        Ok(())
    }

    /// Re-read every committed frame with `lsn > since` from the file —
    /// the replication resync path, serving a replica that fell behind
    /// the live stream. Errors if `since < floor_lsn`: the missing
    /// history was absorbed by a checkpoint, so the caller must ship a
    /// full snapshot instead.
    pub fn read_frames_since(&self, since: u64) -> Result<Vec<Frame>, EngineError> {
        if since < self.floor_lsn {
            return Err(EngineError::new(format!(
                "wal: frames after lsn {since} are not all on disk \
                 (floor is {}); a checkpoint absorbed them",
                self.floor_lsn
            )));
        }
        let bytes = std::fs::read(&self.path).map_err(|e| io_err("read", e))?;
        let body = bytes
            .get(HEADER_LEN as usize..self.len as usize)
            .ok_or_else(|| EngineError::new("wal: file shorter than its committed length"))?;
        let (frames, _) = scan_frames(body);
        Ok(frames.into_iter().filter(|f| f.lsn > since).collect())
    }

    /// The log file's path (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// An exclusive advisory lock on a durability directory, held for the
/// life of the owning [`crate::Engine`] (all clones share it through an
/// `Arc`). Acquired with `flock`-style `File::try_lock`, so the kernel
/// releases it if the process dies — a SIGKILL'd engine never wedges
/// its directory — while a *live* second open in the same or another
/// process is refused immediately with a structured
/// [`ErrorKind::Locked`](hippo_engine::ErrorKind) error (no deadlock,
/// no blocking).
#[derive(Debug)]
pub struct DirLock {
    _file: File,
}

/// Lock file name inside a durability directory.
pub const LOCK_FILE: &str = "lock";

impl DirLock {
    /// Acquire the directory's exclusive lock, or fail with
    /// `ErrorKind::Locked` if another engine holds it.
    pub fn acquire(dir: &Path) -> Result<DirLock, EngineError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create dir", e))?;
        let path = dir.join(LOCK_FILE);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open lock", e))?;
        match file.try_lock() {
            Ok(()) => Ok(DirLock { _file: file }),
            Err(std::fs::TryLockError::WouldBlock) => Err(EngineError::locked(dir.display())),
            Err(std::fs::TryLockError::Error(e)) => Err(io_err("lock", e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hippo_cqa::budget::FaultPlan;
    use hippo_engine::Value;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "hippo-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_ops(k: i64) -> Vec<WalOp> {
        vec![
            WalOp::Insert {
                table: "t".into(),
                rows: vec![vec![Value::Int(k), Value::text("x"), Value::Null]],
                tids: vec![TupleId(7)],
            },
            WalOp::Delete {
                table: "t".into(),
                tids: vec![TupleId(1), TupleId(2)],
            },
            WalOp::Update {
                table: "u".into(),
                updates: vec![(TupleId(0), vec![Value::Float(1.5)])],
            },
        ]
    }

    #[test]
    fn append_scan_roundtrip_with_group() {
        let dir = tmp_dir("roundtrip");
        let gov = Governance::default();
        {
            let (mut wal, scan) = Wal::open(&dir).unwrap();
            assert!(scan.frames.is_empty() && !scan.torn_tail);
            let lsns = wal
                .append(
                    &[
                        (FrameKind::Commit, sample_ops(1)),
                        (FrameKind::Commit, sample_ops(2)),
                        (FrameKind::Abandoned, sample_ops(3)),
                    ],
                    &gov,
                )
                .unwrap();
            assert_eq!(lsns, vec![1, 2, 3]);
        }
        let (wal, scan) = Wal::open(&dir).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.frames[0].ops, sample_ops(1));
        assert_eq!(scan.frames[2].kind, FrameKind::Abandoned);
        assert_eq!(wal.next_lsn(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp_dir("torn");
        let gov = Governance::default();
        let full_len = {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(&[(FrameKind::Commit, sample_ops(1))], &gov)
                .unwrap();
            wal.append(&[(FrameKind::Commit, sample_ops(2))], &gov)
                .unwrap();
            wal.len()
        };
        // Tear the last frame: chop 3 bytes off.
        let path = dir.join(WAL_FILE);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full_len - 3).unwrap();
        drop(f);
        let (mut wal, scan) = Wal::open(&dir).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.frames.len(), 1, "committed prefix only");
        assert_eq!(scan.frames[0].lsn, 1);
        // The log is usable again and LSNs continue past the lost frame.
        let lsns = wal
            .append(&[(FrameKind::Commit, sample_ops(9))], &gov)
            .unwrap();
        assert_eq!(
            lsns,
            vec![2],
            "lsn of the torn frame is reused — it was never committed"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_fault_tears_frame_and_recovery_drops_it() {
        let dir = tmp_dir("shortwrite");
        let gov = Governance::default();
        let faulted = Governance {
            faults: Some(Arc::new(FaultPlan::new(
                "wal:append",
                Some(0),
                FaultKind::ShortWrite,
            ))),
            ..Governance::default()
        };
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.append(&[(FrameKind::Commit, sample_ops(1))], &gov)
            .unwrap();
        let err = wal
            .append(&[(FrameKind::Commit, sample_ops(2))], &faulted)
            .unwrap_err();
        assert!(err.message.contains("short write"), "{err}");
        // The same handle self-heals on the next append.
        wal.append(&[(FrameKind::Commit, sample_ops(3))], &gov)
            .unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&dir).unwrap();
        let keys: Vec<u64> = scan.frames.iter().map(|f| f.lsn).collect();
        assert_eq!(keys, vec![1, 2], "torn frame gone, later frame committed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_file_is_refused_loudly() {
        let dir = tmp_dir("foreign");
        std::fs::write(dir.join(WAL_FILE), b"definitely not a wal").unwrap();
        let err = Wal::open(&dir).unwrap_err();
        assert!(err.message.contains("bad magic"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_all_keeps_lsns_monotonic() {
        let dir = tmp_dir("truncate");
        let gov = Governance::default();
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.append(&[(FrameKind::Commit, sample_ops(1))], &gov)
            .unwrap();
        wal.truncate_all().unwrap();
        assert!(wal.is_empty());
        let lsns = wal
            .append(&[(FrameKind::Commit, sample_ops(2))], &gov)
            .unwrap();
        assert_eq!(lsns, vec![2], "lsn survives truncation");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn set_floor_continues_lsns_past_an_absorbed_log() {
        let dir = tmp_dir("floor");
        let gov = Governance::default();
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(&[(FrameKind::Commit, sample_ops(1))], &gov)
                .unwrap();
            wal.truncate_all().unwrap();
            assert_eq!(wal.floor_lsn(), 1);
        }
        // A fresh handle has no memory of the truncated frame — the
        // checkpoint's last_lsn must re-teach it (recover_dir does).
        let (mut wal, scan) = Wal::open(&dir).unwrap();
        assert!(scan.frames.is_empty());
        assert_eq!(wal.next_lsn(), 1, "reopen alone forgets");
        wal.set_floor(1);
        assert_eq!(wal.floor_lsn(), 1);
        let lsns = wal
            .append(&[(FrameKind::Commit, sample_ops(2))], &gov)
            .unwrap();
        assert_eq!(lsns, vec![2], "lsn continues past the checkpoint");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_frames_since_serves_the_suffix_or_refuses() {
        let dir = tmp_dir("since");
        let gov = Governance::default();
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.append(
            &[
                (FrameKind::Commit, sample_ops(1)),
                (FrameKind::Commit, sample_ops(2)),
                (FrameKind::Commit, sample_ops(3)),
            ],
            &gov,
        )
        .unwrap();
        let suffix = wal.read_frames_since(1).unwrap();
        assert_eq!(suffix.iter().map(|f| f.lsn).collect::<Vec<_>>(), vec![2, 3]);
        assert!(wal.read_frames_since(3).unwrap().is_empty());
        wal.truncate_all().unwrap();
        let err = wal.read_frames_since(1).unwrap_err();
        assert!(err.message.contains("checkpoint absorbed"), "{err}");
        assert!(wal.read_frames_since(3).unwrap().is_empty(), "at the floor");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_lock_excludes_second_open_and_releases_on_drop() {
        let dir = tmp_dir("lock");
        let l1 = DirLock::acquire(&dir).unwrap();
        let err = DirLock::acquire(&dir).unwrap_err();
        assert!(err.is_locked(), "{err}");
        drop(l1);
        let _l2 = DirLock::acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
