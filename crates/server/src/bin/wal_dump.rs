//! `wal-dump`: read-only inspector for a durability directory.
//!
//! ```text
//! wal-dump <dir>            # pretty-print checkpoint.bin and wal.bin
//! wal-dump <dir>/wal.bin    # just the log
//! ```
//!
//! Prints one line per WAL frame — lsn, kind, crc status, op counts —
//! and a summary of the checkpoint (covered LSN, tables, live rows).
//! Works on damaged files: a torn or corrupt tail is reported, never a
//! panic, and the exit code is 0 as long as the files could be read at
//! all (this is a debugging tool; "corrupt" is an *answer*, not an
//! error). Nothing is locked and nothing is written, so it is safe to
//! point at a directory a live engine holds.

use hippo_engine::codec;
use hippo_server::checkpoint::{read_checkpoint, CHECKPOINT_FILE};
use hippo_server::wal::{
    decode_frame_payload, WalOp, HEADER_LEN, MAX_FRAME_LEN, WAL_FILE, WAL_MAGIC, WAL_VERSION,
};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(target) = args.first() else {
        eprintln!("usage: wal-dump <durability-dir | wal.bin | checkpoint.bin>");
        std::process::exit(2);
    };
    let target = PathBuf::from(target);
    if target.is_dir() {
        dump_checkpoint(&target);
        println!();
        dump_wal(&target.join(WAL_FILE));
    } else if target.file_name().is_some_and(|f| f == CHECKPOINT_FILE) {
        dump_checkpoint(target.parent().unwrap_or(Path::new(".")));
    } else {
        dump_wal(&target);
    }
}

fn dump_checkpoint(dir: &Path) {
    println!("== {} ==", dir.join(CHECKPOINT_FILE).display());
    match read_checkpoint(dir) {
        Ok(None) => println!("  (no checkpoint)"),
        Ok(Some(ck)) => {
            println!(
                "  last_lsn={} (frames at or below are absorbed)",
                ck.last_lsn
            );
            for (name, table) in ck.catalog.iter() {
                println!("  table {name}: {} live rows", table.len());
            }
        }
        Err(e) => println!("  CORRUPT: {}", e.message),
    }
}

fn dump_wal(path: &Path) {
    println!("== {} ==", path.display());
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            println!("  unreadable: {e}");
            return;
        }
    };
    if bytes.len() < HEADER_LEN as usize {
        println!(
            "  TORN HEADER: {} bytes (need {HEADER_LEN}) — a log died at birth",
            bytes.len()
        );
        return;
    }
    if &bytes[..8] != WAL_MAGIC {
        println!("  BAD MAGIC: {:02x?} — not a Hippo WAL", &bytes[..8]);
        return;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let vnote = if version == WAL_VERSION {
        ""
    } else {
        " (UNKNOWN)"
    };
    println!(
        "  magic=HIPPOWAL version={version}{vnote} file_bytes={}",
        bytes.len()
    );

    let mut pos = HEADER_LEN as usize;
    let mut frames = 0u64;
    let mut last_lsn = 0u64;
    while pos < bytes.len() {
        // The same envelope walk recovery uses, but reporting instead
        // of truncating.
        match codec::split_checked(&bytes[pos..], MAX_FRAME_LEN) {
            Ok(Some((payload, consumed))) => match decode_frame_payload(payload) {
                Ok(frame) => {
                    let order = if frame.lsn <= last_lsn && frames > 0 {
                        "  LSN-ORDER-VIOLATION"
                    } else {
                        ""
                    };
                    println!(
                        "  frame lsn={} kind={:?} crc=ok bytes={} {}{order}",
                        frame.lsn,
                        frame.kind,
                        consumed,
                        summarize_ops(&frame.ops),
                    );
                    last_lsn = frame.lsn;
                    frames += 1;
                    pos += consumed;
                }
                Err(e) => {
                    println!(
                        "  frame @{pos}: crc=ok but payload undecodable ({}) — \
                         {} trailing bytes would be truncated by recovery",
                        e.message,
                        bytes.len() - pos
                    );
                    return;
                }
            },
            Ok(None) => {
                println!(
                    "  torn tail @{pos}: {} bytes of incomplete frame \
                     (power loss mid-append; recovery truncates this)",
                    bytes.len() - pos
                );
                return;
            }
            Err(e) => {
                println!(
                    "  corrupt @{pos}: {} — {} trailing bytes unreachable",
                    e.message,
                    bytes.len() - pos
                );
                return;
            }
        }
    }
    println!("  {frames} intact frames, clean tail");
}

fn summarize_ops(ops: &[WalOp]) -> String {
    let (mut ins, mut del, mut upd, mut rows) = (0usize, 0usize, 0usize, 0usize);
    for op in ops {
        match op {
            WalOp::Insert { rows: r, .. } => {
                ins += 1;
                rows += r.len();
            }
            WalOp::Delete { tids, .. } => {
                del += 1;
                rows += tids.len();
            }
            WalOp::Update { updates, .. } => {
                upd += 1;
                rows += updates.len();
            }
        }
    }
    format!(
        "ops={} (ins={ins} del={del} upd={upd}) tuples={rows}",
        ops.len()
    )
}
