//! Crash recovery: checkpoint + committed log suffix → the exact
//! pre-crash published state.
//!
//! ```text
//! recover(dir):
//!   1. read checkpoint.bin        → catalog image, last_lsn
//!   2. scan wal.bin               → committed frames, torn tail gone
//!   3. replay frames lsn > last_lsn onto the catalog, in LSN order
//!   4. (caller) rebuild Hippo     → full conflict re-detection
//!   5. (caller) publish epoch 1
//! ```
//!
//! Replay is **self-verifying**: each logged insert carries the tuple
//! ids the live engine assigned, and the replayed insert must be
//! assigned the same ids. Because the checkpoint preserves slot
//! structure exactly (tombstones included) and inserts always append,
//! any mismatch means the checkpoint and log disagree about history —
//! a corruption we refuse to paper over. Abandoned-audit frames are
//! counted but never replayed.
//!
//! Conflict state is *not* logged: the hypergraph is derived data, so
//! step 4 recomputes it from scratch — recovery can never resurrect a
//! stale conflict verdict.

use crate::checkpoint::read_checkpoint;
use crate::wal::{FrameKind, Wal, WalOp};
use hippo_engine::{Catalog, EngineError};
use std::path::Path;

/// What a recovery pass found and did (exposed via
/// [`crate::Engine::recovery_report`]).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// The WAL position the checkpoint already covered.
    pub checkpoint_lsn: u64,
    /// Committed frames replayed on top of it.
    pub frames_replayed: u64,
    /// Individual ops inside those frames.
    pub ops_replayed: u64,
    /// Abandoned-audit frames seen (and skipped).
    pub abandoned_skipped: u64,
    /// Whether a torn/corrupt log tail was truncated.
    pub torn_tail_truncated: bool,
    /// Bytes discarded with that tail.
    pub truncated_bytes: u64,
    /// Committed log size after the scan.
    pub wal_bytes: u64,
}

impl std::fmt::Display for RecoveryReport {
    /// One-line report in the `DetectStats`/`ServiceStats` family
    /// style: counters first, sizes after, flags last.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint_lsn={} frames_replayed={} ops_replayed={} \
             abandoned_skipped={} wal_bytes={}",
            self.checkpoint_lsn,
            self.frames_replayed,
            self.ops_replayed,
            self.abandoned_skipped,
            self.wal_bytes,
        )?;
        if self.torn_tail_truncated {
            write!(f, " torn_tail_truncated={}B", self.truncated_bytes)?;
        }
        Ok(())
    }
}

pub(crate) fn diverged(what: impl std::fmt::Display) -> EngineError {
    EngineError::new(format!(
        "recover: replay diverged from the log ({what}) — checkpoint and WAL \
         disagree about history; the durability directory is corrupt"
    ))
}

pub(crate) fn apply_op(catalog: &mut Catalog, lsn: u64, op: &WalOp) -> Result<(), EngineError> {
    match op {
        WalOp::Insert { table, rows, tids } => {
            let t = catalog
                .table_mut(table)
                .map_err(|_| diverged(format!("frame {lsn} inserts into missing table {table}")))?;
            for (row, want) in rows.iter().zip(tids) {
                let got = t
                    .insert(row.clone())
                    .map_err(|e| diverged(format!("frame {lsn} insert rejected: {e}")))?;
                if got != *want {
                    return Err(diverged(format!(
                        "frame {lsn} insert into {table} got tid {} but the log recorded {}",
                        got.0, want.0
                    )));
                }
            }
        }
        WalOp::Delete { table, tids } => {
            let t = catalog
                .table_mut(table)
                .map_err(|_| diverged(format!("frame {lsn} deletes from missing table {table}")))?;
            for tid in tids {
                if !t.delete(*tid) {
                    return Err(diverged(format!(
                        "frame {lsn} deletes absent tuple {} from {table}",
                        tid.0
                    )));
                }
            }
        }
        WalOp::Update { table, updates } => {
            let t = catalog
                .table_mut(table)
                .map_err(|_| diverged(format!("frame {lsn} updates missing table {table}")))?;
            for (tid, row) in updates {
                t.update(*tid, row.clone())
                    .map_err(|e| diverged(format!("frame {lsn} update rejected: {e}")))?;
            }
        }
    }
    Ok(())
}

/// Load the directory's checkpoint, scan its log, and replay the
/// committed suffix. Returns the recovered catalog, the open log
/// (positioned for further appends), and a report. The caller owns
/// re-running conflict detection and publishing.
///
/// Errors if no checkpoint exists — a durability directory is always
/// born with one (see [`crate::Engine::new_durable`]), so its absence
/// means this was never a durability directory.
pub fn recover_dir(dir: &Path) -> Result<(Catalog, Wal, RecoveryReport), EngineError> {
    let ck = read_checkpoint(dir)?.ok_or_else(|| {
        EngineError::new(format!(
            "recover: no checkpoint in {} — not a durability directory \
             (Engine::new_durable creates one at birth)",
            dir.display()
        ))
    })?;
    let (mut wal, scan) = Wal::open(dir)?;
    // Re-teach the log the checkpoint's position: an empty (truncated)
    // log must keep assigning LSNs *past* the checkpoint, or the next
    // recovery would skip the new frames as already-covered.
    wal.set_floor(ck.last_lsn);
    let mut report = RecoveryReport {
        checkpoint_lsn: ck.last_lsn,
        torn_tail_truncated: scan.torn_tail,
        truncated_bytes: scan.truncated_bytes,
        wal_bytes: wal.len(),
        ..RecoveryReport::default()
    };
    let mut catalog = ck.catalog;
    for frame in &scan.frames {
        if frame.kind == FrameKind::Abandoned {
            report.abandoned_skipped += 1;
            continue;
        }
        if frame.lsn <= ck.last_lsn {
            // Already folded into the checkpoint (crash landed between
            // the checkpoint rename and the log truncation).
            continue;
        }
        for op in &frame.ops {
            apply_op(&mut catalog, frame.lsn, op)?;
            report.ops_replayed += 1;
        }
        report.frames_replayed += 1;
    }
    Ok((catalog, wal, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::write_checkpoint;
    use hippo_cqa::budget::Governance;
    use hippo_engine::{Database, TupleId, Value};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "hippo-rec-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn seed_catalog() -> Catalog {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        db.catalog().clone()
    }

    #[test]
    fn replays_committed_suffix_and_skips_covered_and_abandoned() {
        let dir = tmp_dir("replay");
        let gov = Governance::default();
        write_checkpoint(&dir, &seed_catalog(), 0, &gov).unwrap();
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(
                &[
                    (
                        FrameKind::Commit,
                        vec![WalOp::Insert {
                            table: "t".into(),
                            rows: vec![vec![Value::Int(3), Value::text("z")]],
                            tids: vec![TupleId(2)],
                        }],
                    ),
                    (
                        FrameKind::Abandoned,
                        vec![WalOp::Delete {
                            table: "t".into(),
                            tids: vec![TupleId(0)],
                        }],
                    ),
                    (
                        FrameKind::Commit,
                        vec![WalOp::Delete {
                            table: "t".into(),
                            tids: vec![TupleId(1)],
                        }],
                    ),
                ],
                &gov,
            )
            .unwrap();
        }
        let (catalog, _wal, report) = recover_dir(&dir).unwrap();
        assert_eq!(report.frames_replayed, 2);
        assert_eq!(report.abandoned_skipped, 1);
        assert_eq!(report.ops_replayed, 2);
        let t = catalog.table("t").unwrap();
        assert!(t.get(TupleId(0)).is_some(), "abandoned delete not applied");
        assert!(t.get(TupleId(1)).is_none(), "committed delete applied");
        assert_eq!(
            t.get(TupleId(2)).unwrap()[0],
            Value::Int(3),
            "insert replayed at the recorded tid"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tid_mismatch_is_a_loud_corruption_error() {
        let dir = tmp_dir("tidmismatch");
        let gov = Governance::default();
        write_checkpoint(&dir, &seed_catalog(), 0, &gov).unwrap();
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            // The live engine would have assigned tid 2; the log lies.
            wal.append(
                &[(
                    FrameKind::Commit,
                    vec![WalOp::Insert {
                        table: "t".into(),
                        rows: vec![vec![Value::Int(3), Value::text("z")]],
                        tids: vec![TupleId(9)],
                    }],
                )],
                &gov,
            )
            .unwrap();
        }
        let err = recover_dir(&dir).unwrap_err();
        assert!(err.message.contains("diverged"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_display_is_one_line() {
        let r = RecoveryReport {
            checkpoint_lsn: 5,
            frames_replayed: 3,
            ops_replayed: 7,
            abandoned_skipped: 1,
            torn_tail_truncated: false,
            truncated_bytes: 0,
            wal_bytes: 480,
        };
        let line = r.to_string();
        assert!(line.contains("checkpoint_lsn=5"), "{line}");
        assert!(line.contains("frames_replayed=3"), "{line}");
        assert!(!line.contains("torn_tail"), "{line}");
        let torn = RecoveryReport {
            torn_tail_truncated: true,
            truncated_bytes: 12,
            ..r
        };
        assert!(torn.to_string().ends_with("torn_tail_truncated=12B"));
    }

    #[test]
    fn recovered_wal_continues_lsns_past_the_checkpoint() {
        let dir = tmp_dir("lsncont");
        let gov = Governance::default();
        // A checkpoint at lsn 40 whose log was already truncated.
        write_checkpoint(&dir, &seed_catalog(), 40, &gov).unwrap();
        let (_, wal, report) = recover_dir(&dir).unwrap();
        assert_eq!(report.checkpoint_lsn, 40);
        assert_eq!(
            wal.next_lsn(),
            41,
            "an empty recovered log must not reuse checkpointed LSNs"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_checkpoint_is_refused() {
        let dir = tmp_dir("nockp");
        let err = recover_dir(&dir).unwrap_err();
        assert!(err.message.contains("no checkpoint"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
