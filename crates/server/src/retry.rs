//! Client-side retry with jittered exponential backoff.
//!
//! Only **transient** service errors are retried —
//! [`EngineError::is_retryable`] is `Overloaded` (shed at admission)
//! or `Cancelled` — because retrying a `Budget` trip would trip the
//! same budget again and a `WorkerPanic` needs investigation, not a
//! resend. The backoff doubles per attempt, is capped, and is
//! multiplied by a seeded random factor in `[0.5, 1.0]` so a herd of
//! shed clients does not re-arrive in lockstep; an explicit
//! `retry_after` hint from the server acts as a floor.

use hippo_engine::EngineError;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Duration;

/// Retry policy for one logical request. Deterministic for a given
/// seed — the chaos harness replays identical schedules.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Jitter seed (vendored xoshiro256++; same seed → same jitter).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(50),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based: the sleep after
    /// the first failure is `backoff(0)`), pre-jitter.
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        exp.min(self.cap)
    }

    /// Run `op` until it succeeds, fails non-retryably, or exhausts
    /// `max_attempts`. The closure receives the 0-based attempt
    /// number. Returns the last error on exhaustion.
    pub fn run<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, EngineError>,
    ) -> Result<T, EngineError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt + 1 < self.max_attempts => {
                    // Jitter in [0.5, 1.0]: late enough to back off,
                    // spread enough to break up retry herds.
                    let jitter_permille = rng.gen_range(500u64..=1000);
                    let mut sleep = self
                        .backoff(attempt)
                        .mul_f64(jitter_permille as f64 / 1000.0);
                    if let Some(hint) = e.retry_after() {
                        // The server told us when capacity might free
                        // up; don't come back sooner.
                        sleep = sleep.max(hint);
                    }
                    std::thread::sleep(sleep);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hippo_engine::EngineError as E;
    use std::time::Instant;

    #[test]
    fn retries_overloaded_until_success() {
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let out = policy.run(|attempt| {
            calls += 1;
            if attempt < 2 {
                Err(E::overloaded(Duration::from_millis(1)))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls, 3);
    }

    #[test]
    fn does_not_retry_budget_or_panic_errors() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let err = policy
            .run::<()>(|_| {
                calls += 1;
                Err(E::budget("prover", 1, 1))
            })
            .unwrap_err();
        assert!(err.is_budget());
        assert_eq!(calls, 1, "budget trips are not transient");

        let mut calls = 0;
        let err = policy
            .run::<()>(|_| {
                calls += 1;
                Err(E::worker_panic("prover", 3, "boom"))
            })
            .unwrap_err();
        assert!(err.is_worker_panic());
        assert_eq!(calls, 1);
    }

    #[test]
    fn exhaustion_returns_the_last_error() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(100),
            cap: Duration::from_micros(200),
            seed: 9,
        };
        let mut calls = 0;
        let err = policy
            .run::<()>(|_| {
                calls += 1;
                Err(E::cancelled("prover"))
            })
            .unwrap_err();
        assert!(err.is_cancelled());
        assert_eq!(calls, 3);
    }

    #[test]
    fn honors_the_retry_after_floor() {
        let policy = RetryPolicy {
            max_attempts: 2,
            base: Duration::from_micros(1),
            cap: Duration::from_micros(2),
            seed: 1,
        };
        let t0 = Instant::now();
        let _ = policy.run::<()>(|attempt| {
            if attempt == 0 {
                Err(E::overloaded(Duration::from_millis(20)))
            } else {
                Err(E::cancelled("prover"))
            }
        });
        assert!(
            t0.elapsed() >= Duration::from_millis(20),
            "slept at least the hint: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn same_seed_same_schedule() {
        let p = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(p.seed);
        let mut b = StdRng::seed_from_u64(p.seed);
        for _ in 0..16 {
            assert_eq!(a.gen_range(500u64..=1000), b.gen_range(500u64..=1000));
        }
    }
}
