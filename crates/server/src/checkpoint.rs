//! Snapshot checkpoints: the full catalog (schemas, rows, tombstoned
//! slots, indexes) serialized to one file, so recovery replays only the
//! log suffix written after it.
//!
//! ```text
//! checkpoint.bin = magic "HIPPOCKP" · version u32 · last_lsn u64
//!                  · catalog bytes · crc32(everything before) u32
//! ```
//!
//! `last_lsn` is the newest WAL frame the snapshot already contains;
//! replay skips frames at or below it, which also makes the
//! crash-between-rename-and-truncate window safe (the stale frames are
//! filtered, not double-applied).
//!
//! Writes are crash-atomic: serialize to `checkpoint.tmp`, fsync it,
//! rename over `checkpoint.bin`, fsync the directory. A reader
//! therefore sees either the old complete checkpoint or the new
//! complete one, never a partial — which is why a checkpoint that
//! *exists* but fails its CRC is a hard error, not something to skip.
//!
//! Fault points: `checkpoint:write` fires before the tmp file's bytes
//! land (`shortwrite` leaves a torn tmp, which is harmless — it is
//! simply overwritten next time); `checkpoint:swap` fires between tmp
//! fsync and rename.

use crate::wal::io_err;
use hippo_cqa::budget::{FaultKind, Governance};
use hippo_engine::codec::{self, Reader};
use hippo_engine::{Catalog, EngineError};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

/// Checkpoint file name inside a durability directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";
const TMP_FILE: &str = "checkpoint.tmp";

const CKP_MAGIC: &[u8; 8] = b"HIPPOCKP";
const CKP_VERSION: u32 = 1;

/// A decoded checkpoint: the catalog image plus the WAL position it
/// covers.
#[derive(Debug)]
pub struct Checkpoint {
    /// Newest WAL LSN already folded into `catalog` (0 = none).
    pub last_lsn: u64,
    /// The full database image at that point.
    pub catalog: Catalog,
}

fn encode_checkpoint(catalog: &Catalog, last_lsn: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CKP_MAGIC);
    codec::put_u32(&mut out, CKP_VERSION);
    codec::put_u64(&mut out, last_lsn);
    out.extend_from_slice(&codec::encode_catalog(catalog));
    let crc = codec::crc32(&out);
    codec::put_u32(&mut out, crc);
    out
}

fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, EngineError> {
    let corrupt = |what: &str| {
        EngineError::new(format!(
            "checkpoint: corrupt file ({what}) — the atomic write protocol should \
             prevent this; the durability directory has been damaged externally"
        ))
    };
    if bytes.len() < 8 + 4 + 8 + 4 {
        return Err(corrupt("too short"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if codec::crc32(body) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = Reader::new(body);
    let magic = r.take(8)?;
    if magic != CKP_MAGIC {
        return Err(corrupt("bad magic"));
    }
    if r.u32()? != CKP_VERSION {
        return Err(corrupt("unknown version"));
    }
    let last_lsn = r.u64()?;
    let catalog = codec::decode_catalog(r.take(r.remaining())?)?;
    Ok(Checkpoint { last_lsn, catalog })
}

/// Read the directory's checkpoint. `Ok(None)` if none has ever been
/// written; a present-but-corrupt file is a hard error (see module doc).
pub fn read_checkpoint(dir: &Path) -> Result<Option<Checkpoint>, EngineError> {
    let path = dir.join(CHECKPOINT_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read checkpoint", e)),
    };
    decode_checkpoint(&bytes).map(Some)
}

/// Atomically replace the directory's checkpoint with a snapshot of
/// `catalog` covering WAL frames up to and including `last_lsn`.
/// `gov` drives the `checkpoint:write` / `checkpoint:swap` fault
/// points. On any failure the previous checkpoint is untouched.
pub fn write_checkpoint(
    dir: &Path,
    catalog: &Catalog,
    last_lsn: u64,
    gov: &Governance,
) -> Result<(), EngineError> {
    let bytes = encode_checkpoint(catalog, last_lsn);
    let tmp = dir.join(TMP_FILE);
    let dst = dir.join(CHECKPOINT_FILE);

    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| io_err("open checkpoint.tmp", e))?;

    match gov.take_fault("checkpoint:write", 0) {
        Some(FaultKind::Panic) => panic!("injected fault: panic at checkpoint:write"),
        Some(FaultKind::Delay(d)) => std::thread::sleep(d),
        Some(FaultKind::BudgetTrip) => {
            return Err(EngineError::budget("checkpoint:write", 0, 0));
        }
        Some(FaultKind::ShortWrite) => {
            // A torn tmp file: harmless, never renamed into place.
            let _ = file.write_all(&bytes[..bytes.len() / 2]);
            return Err(EngineError::new(
                "checkpoint: injected short write at checkpoint:write (tmp torn)",
            ));
        }
        Some(k @ (FaultKind::Drop | FaultKind::Corrupt | FaultKind::Disconnect)) => {
            // Transport-only kinds armed at a file stage: loud, so a
            // misaimed fault plan never passes silently.
            return Err(EngineError::new(format!(
                "checkpoint: injected fault: {k:?} at checkpoint:write \
                 (transport-only kind; arm it at a repl stage)"
            )));
        }
        None => {}
    }

    file.write_all(&bytes)
        .map_err(|e| io_err("write checkpoint.tmp", e))?;
    file.sync_data()
        .map_err(|e| io_err("fsync checkpoint.tmp", e))?;
    drop(file);

    match gov.take_fault("checkpoint:swap", 0) {
        Some(FaultKind::Panic) => panic!("injected fault: panic at checkpoint:swap"),
        Some(FaultKind::Delay(d)) => std::thread::sleep(d),
        Some(
            FaultKind::BudgetTrip
            | FaultKind::ShortWrite
            | FaultKind::Drop
            | FaultKind::Corrupt
            | FaultKind::Disconnect,
        ) => {
            // The rename is a single syscall — it cannot be torn, only
            // skipped.
            return Err(EngineError::budget("checkpoint:swap", 0, 0));
        }
        None => {}
    }

    std::fs::rename(&tmp, &dst).map_err(|e| io_err("rename checkpoint", e))?;
    // Make the rename itself durable.
    File::open(dir)
        .and_then(|d| d.sync_data())
        .map_err(|e| io_err("fsync dir", e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hippo_cqa::budget::FaultPlan;
    use hippo_engine::Database;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "hippo-ckp-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_catalog() -> Catalog {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        db.catalog().clone()
    }

    #[test]
    fn roundtrip_and_replace() {
        let dir = tmp_dir("roundtrip");
        let gov = Governance::default();
        assert!(read_checkpoint(&dir).unwrap().is_none());
        write_checkpoint(&dir, &sample_catalog(), 7, &gov).unwrap();
        let ck = read_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(ck.last_lsn, 7);
        assert!(ck.catalog.table("t").is_ok());
        // Replacement wins.
        write_checkpoint(&dir, &sample_catalog(), 9, &gov).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap().unwrap().last_lsn, 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_leaves_previous_checkpoint_intact() {
        let dir = tmp_dir("faults");
        let gov = Governance::default();
        write_checkpoint(&dir, &sample_catalog(), 3, &gov).unwrap();
        for kind in [FaultKind::ShortWrite, FaultKind::BudgetTrip] {
            for stage in ["checkpoint:write", "checkpoint:swap"] {
                let faulted = Governance {
                    faults: Some(Arc::new(FaultPlan::new(stage, Some(0), kind))),
                    ..Governance::default()
                };
                write_checkpoint(&dir, &sample_catalog(), 8, &faulted).unwrap_err();
                let ck = read_checkpoint(&dir).unwrap().unwrap();
                assert_eq!(ck.last_lsn, 3, "old checkpoint survives {stage}/{kind:?}");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_existing_checkpoint_is_hard_error() {
        let dir = tmp_dir("corrupt");
        write_checkpoint(&dir, &sample_catalog(), 1, &Governance::default()).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_checkpoint(&dir).unwrap_err();
        assert!(err.message.contains("corrupt"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
